//! # fabric-power-netlist
//!
//! A gate-level netlist substrate and power-characterization engine: the
//! from-scratch replacement for the Synopsys Power Compiler flow the DAC 2002
//! paper uses to pre-compute its node-switch bit-energy look-up tables
//! (Table 1).
//!
//! The crate is organized bottom-up:
//!
//! * [`cells`] / [`library`] — a minimal 0.18 µm standard-cell set with
//!   calibrated switching energies;
//! * [`netlist`] — the netlist graph and structural validation;
//! * [`sim`] — cycle-driven logic simulation with per-toggle energy
//!   accounting;
//! * [`packed`] — 64-lane bit-parallel simulation: one `u64` per net, lane
//!   toggles counted with popcounts, energies bit-identical to per-lane
//!   scalar runs;
//! * [`passes`] — energy-exact netlist optimization passes (constant
//!   folding, dead-net pruning, structural hashing) plus levelization into a
//!   precomputed evaluation schedule both simulators can execute directly;
//! * [`circuits`] — generators for the four node-switch circuits the paper
//!   characterizes (crossbar crosspoint, Banyan 2×2 binary switch, Batcher
//!   2×2 sorting switch, N-input MUX);
//! * [`characterize`] — drives random payload through the generated circuits
//!   and produces [`lut::SwitchEnergyLut`] tables;
//! * [`lut`] — the input-vector-indexed bit-energy tables, including the
//!   paper's published Table 1 values as a reference dataset.
//!
//! # Examples
//!
//! Characterize the Banyan binary switch and compare it with the paper's
//! published value:
//!
//! ```
//! use fabric_power_netlist::characterize::{characterize_class, CharacterizationConfig};
//! use fabric_power_netlist::circuits::SwitchClass;
//! use fabric_power_netlist::library::CellLibrary;
//! use fabric_power_netlist::lut::SwitchEnergyLut;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = CellLibrary::calibrated_018um();
//! let config = CharacterizationConfig::quick();
//! let ours = characterize_class(SwitchClass::BanyanBinary, 16, 4, &library, &config)?;
//! let paper = SwitchEnergyLut::paper_banyan_binary();
//! // Both agree that a busy switch costs more than an idle one.
//! assert!(ours.single_active() > ours.energy_for_active_count(0));
//! assert!(paper.single_active() > paper.energy_for_active_count(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cells;
pub mod characterize;
pub mod circuits;
pub mod library;
pub mod lut;
pub mod netlist;
pub mod packed;
pub mod passes;
pub mod sim;

pub use cells::CellKind;
pub use characterize::{characterize_class, characterize_switch, CharacterizationConfig, Table1};
pub use circuits::{SwitchCircuit, SwitchClass};
pub use library::{CellLibrary, CellParameters};
pub use lut::{InputVector, LutSource, SwitchEnergyLut};
pub use netlist::{CellId, NetId, Netlist, NetlistError};
pub use packed::PackedSimulator;
pub use passes::{
    EvalSchedule, NetFate, OptimizedNetlist, PassPipeline, PipelineMode, PipelineReport,
};
pub use sim::{ActivityReport, EnergyBreakdown, EnergyTables, Simulator};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Netlist>();
        assert_send_sync::<CellLibrary>();
        assert_send_sync::<SwitchEnergyLut>();
        assert_send_sync::<ActivityReport>();
    }
}
