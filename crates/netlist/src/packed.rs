//! Bit-parallel (bit-sliced) gate-level simulation: 64 lanes per `u64`.
//!
//! [`PackedSimulator`] evaluates up to 64 *independent* simulations of the
//! same netlist at once by packing one lane per bit of a `u64` word per net.
//! Every [`CellKind`] evaluates as word-wide boolean operations
//! ([`CellKind::evaluate_word`]), tri-state and flip-flop state are held as
//! per-lane words, and toggle activity is accumulated per net with
//! `(prev ^ new).count_ones()`.
//!
//! Energy accounting goes through the same [`EnergyTables`] as the scalar
//! [`crate::sim::Simulator`]: integer per-net toggle counts are converted to
//! energies in one deterministic pass, so a packed run and the sum of the
//! equivalent per-lane scalar runs produce **bit-identical** energy numbers.
//!
//! Lanes are numbered from bit 0: lane `L` of net `n` is
//! `(word(n) >> L) & 1`. A *lane-cycle* is one lane advancing one clock
//! cycle; a full-mask [`PackedSimulator::step`] with `lanes` active lanes
//! contributes `lanes` lane-cycles. Per-cycle clock and leakage energy are
//! charged per lane-cycle, which keeps totals comparable with a scalar run
//! of the same number of (scalar) cycles.

use crate::library::CellLibrary;
use crate::netlist::{CellId, Driver, Netlist, NetlistError};
use crate::passes::{NetFate, OptimizedNetlist};
use crate::sim::{ActivityReport, EnergyTables};

/// Bit-parallel simulator holding one `u64` of lane values per net.
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::library::CellLibrary;
/// use fabric_power_netlist::netlist::Netlist;
/// use fabric_power_netlist::packed::PackedSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("inv");
/// let a = n.add_input("a");
/// let y = n.add_net("y");
/// n.add_cell("u_inv", CellKind::Inv, &[a], y)?;
/// n.mark_output(y)?;
///
/// let library = CellLibrary::calibrated_018um();
/// let mut sim = PackedSimulator::new(&n, &library, 64)?;
/// // Lane 0 drives a=1, lane 1 drives a=0.
/// sim.step(&[0b01]);
/// assert_eq!(sim.output_words(), vec![!0b01_u64 & sim.lane_mask()]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    netlist: &'a Netlist,
    /// Combinational evaluation order (walk mode; empty in scheduled mode).
    order: Vec<CellId>,
    /// Current lane values of every net, one bit per lane (nets of the
    /// optimized netlist when running in scheduled mode).
    net_words: Vec<u64>,
    /// Stored per-lane state of sequential cells: indexed by cell id in walk
    /// mode, by schedule state slot in scheduled mode.
    state: Vec<u64>,
    /// Number of active lanes (1..=64).
    lanes: u32,
    /// Mask selecting the active lanes: low `lanes` bits set.
    lane_mask: u64,
    /// Measured lane-cycles since the last counter reset.
    lane_cycles: u64,
    /// Toggles observed per net (summed over counted lanes) since the last
    /// counter reset, always in *original* net-id space.
    net_toggles: Vec<u64>,
    /// Per-net energy tables shared with the scalar engine, built over the
    /// original netlist.
    tables: EnergyTables,
    /// Level-scheduled execution state when driving an [`OptimizedNetlist`].
    scheduled: Option<ScheduledState<'a>>,
}

/// Execution state of the level-scheduled engine.
#[derive(Debug, Clone)]
struct ScheduledState<'a> {
    opt: &'a OptimizedNetlist,
    /// Scheduled cells that have ever seen an input change (in any lane),
    /// sorted by index (index order is level order).  The steady-state
    /// sweep evaluates exactly these; cells of cones that never toggled
    /// cost nothing.
    active_cells: Vec<u32>,
    /// Membership flags for `active_cells` / `newly`.
    is_active: Vec<bool>,
    /// Cells activated since the last merge into `active_cells`.  Non-empty
    /// only on the rare steps when a previously quiet net first toggles.
    newly: Vec<u32>,
    /// Per net: all of the net's consumer cells are already active, so a
    /// flip needs no activation walk (set the first time the net flips,
    /// which activates every consumer).
    fanout_active: Vec<bool>,
    /// Whether the pipeline left every net in place (1:1 alias map, nothing
    /// folded) — enables the direct toggle-crediting fast path.
    identity: bool,
    /// Whether the first full-evaluation step has run.  Not reset by
    /// [`PackedSimulator::reset_counters`]: the circuit stays settled.
    settled: bool,
}

/// Writes `word` to optimized net `net`, crediting counted-lane toggles to
/// every aliased original net and activating the net's consumer cells.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scheduled_write(
    opt: &OptimizedNetlist,
    net_words: &mut [u64],
    net_toggles: &mut [u64],
    is_active: &mut [bool],
    newly: &mut Vec<u32>,
    fanout_active: &mut [bool],
    identity: bool,
    lane_mask: u64,
    count_mask: u64,
    net: u32,
    word: u64,
) {
    let idx = net as usize;
    let word = word & lane_mask;
    let flipped = net_words[idx] ^ word;
    if flipped == 0 {
        return;
    }
    net_words[idx] = word;
    let counted = u64::from((flipped & count_mask).count_ones());
    if counted != 0 {
        if identity {
            net_toggles[idx] += counted;
        } else {
            for &original in opt.alias_targets_of(idx) {
                net_toggles[original as usize] += counted;
            }
        }
    }
    if !fanout_active[idx] {
        fanout_active[idx] = true;
        for &cell in opt.schedule().load_cells(idx) {
            let c = cell as usize;
            if !is_active[c] {
                is_active[c] = true;
                newly.push(cell);
            }
        }
    }
}

impl<'a> PackedSimulator<'a> {
    /// Creates a packed simulator with `lanes` independent lanes.
    ///
    /// All nets start at logic `0` in every lane, all flip-flops start
    /// cleared.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn new(
        netlist: &'a Netlist,
        library: &CellLibrary,
        lanes: u32,
    ) -> Result<Self, NetlistError> {
        assert!(
            (1..=64).contains(&lanes),
            "lane count must be in 1..=64, got {lanes}"
        );
        let order = netlist.validate()?;
        let lane_mask = if lanes == 64 { !0 } else { (1 << lanes) - 1 };
        Ok(Self {
            netlist,
            order,
            net_words: vec![0; netlist.net_count()],
            state: vec![0; netlist.cell_count()],
            lanes,
            lane_mask,
            lane_cycles: 0,
            net_toggles: vec![0; netlist.net_count()],
            tables: EnergyTables::new(netlist, library),
            scheduled: None,
        })
    }

    /// Creates a packed simulator that executes `optimized`'s level schedule
    /// while reporting activity and energy in `netlist`'s (the original's)
    /// net-id space — bit-identical to [`PackedSimulator::new`] over
    /// `netlist` (see the [`crate::passes`] docs for the exactness
    /// argument).
    ///
    /// # Errors
    ///
    /// Propagates any structural [`NetlistError`] (undriven nets,
    /// inconsistent load lists).  Acyclicity needs no re-check: `optimized`
    /// carries a compiled level schedule, which only exists for acyclic
    /// logic.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64` or if `optimized` was not
    /// produced from `netlist`.
    pub fn with_passes(
        netlist: &'a Netlist,
        optimized: &'a OptimizedNetlist,
        library: &CellLibrary,
        lanes: u32,
    ) -> Result<Self, NetlistError> {
        assert!(
            (1..=64).contains(&lanes),
            "lane count must be in 1..=64, got {lanes}"
        );
        assert_eq!(
            optimized.original_net_count(),
            netlist.net_count(),
            "optimized netlist was built from a different original"
        );
        assert_eq!(
            optimized.primary_input_count(),
            netlist.primary_inputs().len(),
            "optimized netlist must preserve primary inputs"
        );
        netlist.check_structure()?;
        let lane_mask = if lanes == 64 { !0 } else { (1 << lanes) - 1 };
        let schedule = optimized.schedule();
        Ok(Self {
            netlist,
            order: Vec::new(),
            net_words: vec![0; optimized.net_count()],
            state: vec![0; schedule.state_slots()],
            lanes,
            lane_mask,
            lane_cycles: 0,
            net_toggles: vec![0; netlist.net_count()],
            tables: EnergyTables::new(netlist, library),
            scheduled: Some(ScheduledState {
                opt: optimized,
                active_cells: Vec::new(),
                is_active: vec![false; schedule.cell_count()],
                newly: Vec::new(),
                fanout_active: vec![false; optimized.net_count()],
                identity: optimized.identity_aliases(),
                settled: false,
            }),
        })
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Mask with one bit set per active lane (bits `0..lanes`).
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// Measured lane-cycles since the last counter reset (the sum over
    /// steps of the number of counted lanes in that step).
    #[must_use]
    pub fn lane_cycles(&self) -> u64 {
        self.lane_cycles
    }

    /// Simulates one clock cycle in every active lane, counting activity in
    /// all of them.
    ///
    /// The order of `inputs` matches [`Netlist::primary_inputs`]; bit `L` of
    /// `inputs[i]` is the value of primary input `i` in lane `L`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[u64]) {
        self.step_masked(inputs, self.lane_mask);
    }

    /// Simulates one clock cycle in every active lane, but only counts
    /// toggles, lane-cycles, clock and leakage for lanes selected by
    /// `count_mask`.
    ///
    /// All lanes still *evolve* (state advances) regardless of the mask;
    /// masking only excludes lanes from the measurement. This is how a
    /// measurement total that is not a multiple of the lane count is
    /// realised: a final partial step counts only the remainder lanes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step_masked(&mut self, inputs: &[u64], count_mask: u64) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "expected {} primary-input words, got {}",
            self.netlist.primary_inputs().len(),
            inputs.len()
        );
        let count_mask = count_mask & self.lane_mask;
        self.lane_cycles += u64::from(count_mask.count_ones());
        if self.scheduled.is_some() {
            self.step_scheduled(inputs, count_mask);
            return;
        }

        let netlist = self.netlist;

        // 1. Drive primary inputs, constants and sequential outputs.
        for (net_id, net) in netlist.nets() {
            match net.driver() {
                Some(Driver::PrimaryInput(pi)) => {
                    self.write_net(net_id.index(), inputs[pi], count_mask);
                }
                Some(Driver::Constant(value)) => {
                    let word = if value { self.lane_mask } else { 0 };
                    self.write_net(net_id.index(), word, count_mask);
                }
                Some(Driver::Cell(cell_id)) if netlist.cell(cell_id).kind().is_sequential() => {
                    let q = self.state[cell_id.index()];
                    self.write_net(net_id.index(), q, count_mask);
                }
                _ => {}
            }
        }

        // 2. Evaluate combinational logic in topological order, word-wide.
        let mut scratch_inputs = [0_u64; 4];
        for idx in 0..self.order.len() {
            let cell_id = self.order[idx];
            let cell = netlist.cell(cell_id);
            let arity = cell.inputs().len();
            for (slot, net) in scratch_inputs.iter_mut().zip(cell.inputs()) {
                *slot = self.net_words[net.index()];
            }
            let previous = self.net_words[cell.output().index()];
            let value = cell
                .kind()
                .evaluate_word(&scratch_inputs[..arity], previous);
            self.write_net(cell.output().index(), value, count_mask);
        }

        // 3. Capture the next state of sequential cells (D sampled at the
        //    end of the cycle, visible on Q at the start of the next cycle).
        for (cell_id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                self.state[cell_id.index()] = self.net_words[cell.inputs()[0].index()];
            }
        }
    }

    /// One cycle of the level-scheduled engine.
    ///
    /// The first step ever evaluates every cell unconditionally (the
    /// all-zero reset words are not yet consistent with the cell functions)
    /// and credits the one-shot toggles of nets folded to `true`, once per
    /// counted lane.  Subsequent steps sweep only the *active* cells —
    /// those that have ever seen an input change in any lane — in level
    /// order; quiet cones are never visited.  On the rare step that
    /// activates a new cell, the engine falls back to one full
    /// level-ordered walk, which is idempotent for every cell already
    /// evaluated this step (unchanged inputs reproduce the same word, so no
    /// toggle is double-counted).
    fn step_scheduled(&mut self, inputs: &[u64], count_mask: u64) {
        let mut st = self.scheduled.take().expect("scheduled mode");
        let opt = st.opt;
        let schedule = opt.schedule();
        let first = !st.settled;
        if first {
            st.settled = true;
            let counted = u64::from(count_mask.count_ones());
            if counted != 0 {
                for &net in opt.one_shot_toggles() {
                    self.net_toggles[net as usize] += counted;
                }
            }
        }

        // 1. Drive primary inputs, constants and sequential outputs.
        for &(net, pi) in &schedule.input_drives {
            scheduled_write(
                opt,
                &mut self.net_words,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                self.lane_mask,
                count_mask,
                net,
                inputs[pi as usize],
            );
        }
        for &(net, value) in &schedule.constant_drives {
            scheduled_write(
                opt,
                &mut self.net_words,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                self.lane_mask,
                count_mask,
                net,
                if value { self.lane_mask } else { 0 },
            );
        }
        for &(net, slot) in &schedule.seq_drives {
            scheduled_write(
                opt,
                &mut self.net_words,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                self.lane_mask,
                count_mask,
                net,
                self.state[slot as usize],
            );
        }

        // 2. Evaluate combinational logic word-wide, in level order.
        let mut full_walk = first || !st.newly.is_empty();
        if !full_walk {
            for i in 0..st.active_cells.len() {
                let cell = schedule.cells[st.active_cells[i] as usize];
                let arity = cell.arity as usize;
                let mut words = [0_u64; 3];
                for (slot, &net) in words.iter_mut().zip(&cell.inputs[..arity]) {
                    *slot = self.net_words[net as usize];
                }
                let previous = self.net_words[cell.output as usize];
                let value = cell.kind.evaluate_word(&words[..arity], previous);
                scheduled_write(
                    opt,
                    &mut self.net_words,
                    &mut self.net_toggles,
                    &mut st.is_active,
                    &mut st.newly,
                    &mut st.fanout_active,
                    st.identity,
                    self.lane_mask,
                    count_mask,
                    cell.output,
                    value,
                );
                // A quiet net toggled for the first time: its newly
                // activated consumers sit at strictly higher levels than
                // everything swept so far, so every evaluation up to here
                // used correct inputs.  Stop and catch up with a full walk
                // (idempotent for the already-evaluated prefix, and it
                // evaluates the activated cells in correct level order).
                if !st.newly.is_empty() {
                    break;
                }
            }
            full_walk = !st.newly.is_empty();
        }
        if full_walk {
            for ci in 0..schedule.cells.len() {
                let cell = schedule.cells[ci];
                let arity = cell.arity as usize;
                let mut words = [0_u64; 3];
                for (slot, &net) in words.iter_mut().zip(&cell.inputs[..arity]) {
                    *slot = self.net_words[net as usize];
                }
                let previous = self.net_words[cell.output as usize];
                let value = cell.kind.evaluate_word(&words[..arity], previous);
                scheduled_write(
                    opt,
                    &mut self.net_words,
                    &mut self.net_toggles,
                    &mut st.is_active,
                    &mut st.newly,
                    &mut st.fanout_active,
                    st.identity,
                    self.lane_mask,
                    count_mask,
                    cell.output,
                    value,
                );
            }
        }
        if !st.newly.is_empty() {
            st.active_cells.append(&mut st.newly);
            st.active_cells.sort_unstable();
        }

        // 3. Capture the next state of sequential cells.
        for &(slot, d) in &schedule.seq_captures {
            self.state[slot as usize] = self.net_words[d as usize];
        }
        self.scheduled = Some(st);
    }

    fn write_net(&mut self, net_index: usize, word: u64, count_mask: u64) {
        let word = word & self.lane_mask;
        let flipped = self.net_words[net_index] ^ word;
        if flipped == 0 {
            return;
        }
        self.net_words[net_index] = word;
        self.net_toggles[net_index] += u64::from((flipped & count_mask).count_ones());
    }

    /// Current lane words of the primary outputs, in declaration order
    /// (always the *original* netlist's outputs, also in scheduled mode).
    #[must_use]
    pub fn output_words(&self) -> Vec<u64> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|&n| self.net_word(n))
            .collect()
    }

    /// Current lane word of an arbitrary net of the original netlist.
    #[must_use]
    pub fn net_word(&self, net: crate::netlist::NetId) -> u64 {
        match &self.scheduled {
            None => self.net_words[net.index()],
            Some(st) => match st.opt.fate(net) {
                NetFate::Kept(kept) => self.net_words[kept.index()],
                NetFate::Folded { settles_to } => {
                    if st.settled && settles_to {
                        self.lane_mask
                    } else {
                        0
                    }
                }
            },
        }
    }

    /// Toggle counts per net (summed over counted lanes) since the last
    /// counter reset, indexed by net.
    #[must_use]
    pub fn net_toggle_counts(&self) -> &[u64] {
        &self.net_toggles
    }

    /// Snapshot of the accumulated activity and energy.
    ///
    /// `cycles` in the returned report is the number of measured
    /// *lane-cycles*, so per-cycle clock/leakage totals line up with a
    /// scalar run of the same total cycle count.
    #[must_use]
    pub fn report(&self) -> ActivityReport {
        self.tables
            .report_from_counts(&self.net_toggles, self.lane_cycles)
    }

    /// Resets activity counters (but keeps the current logic state), so a
    /// warm-up phase can be excluded from measurements.
    pub fn reset_counters(&mut self) {
        self.lane_cycles = 0;
        self.net_toggles.fill(0);
    }

    /// Resets the simulator to its freshly-constructed state: all lane words
    /// and sequential state back to zero, counters cleared.
    ///
    /// A reset simulator is observably identical to a newly constructed one
    /// — the first step after a reset re-settles constants and re-credits
    /// the pass pipeline's one-shot toggles, exactly like a fresh instance.
    /// The scheduled engine's activation sets are deliberately *kept*:
    /// activity skipping is monotone-safe (evaluating an already-active cell
    /// whose inputs did not change reproduces its word and counts nothing),
    /// so a warm active set only affects speed, never results.  This makes
    /// one simulator reusable across independent measurements without paying
    /// construction cost per run.
    pub fn reset(&mut self) {
        self.net_words.fill(0);
        self.state.fill(0);
        self.reset_counters();
        if let Some(st) = self.scheduled.as_mut() {
            st.settled = false;
        }
    }
}

/// Transposes a 64×64 bit matrix in place: bit `c` of `a[r]` moves to bit
/// `r` of `a[c]`.
///
/// This is the bridge between lane-major data (one word per lane, e.g. a
/// random payload drawn per lane) and the net-major layout the packed
/// simulator wants (one word per net, one bit per lane): transposing a
/// block of 64 lane payload words yields, for each payload bit position,
/// the `u64` to drive into that bit's input net.  Recursive block-swap
/// (Hacker's Delight §7-3), ~6·64 word operations instead of 64×64
/// single-bit moves.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32_usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::sim::Simulator;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn transpose64_matches_naive_definition() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x7A05);
        for _ in 0..16 {
            let mut a = [0_u64; 64];
            for word in &mut a {
                *word = rng.gen::<u64>();
            }
            let mut expected = [0_u64; 64];
            for (r, &row) in a.iter().enumerate() {
                for (c, out) in expected.iter_mut().enumerate() {
                    *out |= ((row >> c) & 1) << r;
                }
            }
            let mut actual = a;
            transpose64(&mut actual);
            assert_eq!(actual, expected);
        }
    }

    #[test]
    fn transpose64_is_an_involution() {
        let mut a = [0_u64; 64];
        for (i, word) in a.iter_mut().enumerate() {
            *word = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        let original = a;
        transpose64(&mut a);
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell("u_xor", CellKind::Xor2, &[a, b], y).unwrap();
        n.mark_output(y).unwrap();
        n
    }

    #[test]
    fn packed_xor_matches_scalar_lanes() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let lanes = 8_u32;
        let mut packed = PackedSimulator::new(&n, &lib, lanes).unwrap();
        let vectors: Vec<[u64; 2]> = vec![[0b1010_1010, 0b0110_0110], [0b0011_1100, 0b1111_0000]];
        for v in &vectors {
            packed.step(v);
        }

        let mut summed = vec![0_u64; n.net_count()];
        let mut scalar_cycles = 0_u64;
        for lane in 0..lanes {
            let mut scalar = Simulator::new(&n, &lib).unwrap();
            for v in &vectors {
                let bits: Vec<bool> = v.iter().map(|word| (word >> lane) & 1 == 1).collect();
                scalar.step(&bits);
            }
            for (acc, &c) in summed.iter_mut().zip(scalar.net_toggle_counts()) {
                *acc += c;
            }
            scalar_cycles += scalar.report().cycles;
        }

        assert_eq!(packed.net_toggle_counts(), &summed[..]);
        assert_eq!(packed.lane_cycles(), scalar_cycles);
        // Identical counts ⇒ bit-identical energies through the shared tables.
        let oracle = packed.tables.report_from_counts(&summed, scalar_cycles);
        assert_eq!(packed.report(), oracle);
    }

    #[test]
    fn dff_state_is_per_lane() {
        let mut n = Netlist::new("pipe");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let mut sim = PackedSimulator::new(&n, &lib, 4).unwrap();
        sim.step(&[0b0101]);
        // Q still shows the reset value during the first cycle.
        assert_eq!(sim.output_words(), vec![0]);
        sim.step(&[0b0000]);
        // Now Q shows the per-lane values captured at the end of cycle 1.
        assert_eq!(sim.output_words(), vec![0b0101]);
        sim.step(&[0b0000]);
        assert_eq!(sim.output_words(), vec![0]);
    }

    #[test]
    fn tri_state_holds_per_lane() {
        let mut n = Netlist::new("bus");
        let a = n.add_input("a");
        let en = n.add_input("en");
        let y = n.add_net("y");
        n.add_cell("u_tri", CellKind::TriBuf, &[a, en], y).unwrap();
        n.mark_output(y).unwrap();
        let lib = CellLibrary::default();
        let mut sim = PackedSimulator::new(&n, &lib, 2).unwrap();
        // Lane 0: enabled with a=1. Lane 1: enabled with a=0.
        sim.step(&[0b01, 0b11]);
        assert_eq!(sim.output_words(), vec![0b01]);
        // Both lanes disabled with a flipped: outputs hold.
        sim.step(&[0b10, 0b00]);
        assert_eq!(sim.output_words(), vec![0b01]);
    }

    #[test]
    fn masked_lanes_evolve_but_do_not_count() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = PackedSimulator::new(&n, &lib, 2).unwrap();
        // Count only lane 0; lane 1 toggles a and y but must not be counted.
        sim.step_masked(&[0b10, 0b00], 0b01);
        assert_eq!(sim.lane_cycles(), 1);
        let toggles: u64 = sim.net_toggle_counts().iter().sum();
        assert_eq!(toggles, 0, "lane 1 activity leaked into the counts");
        // Lane 1's state did evolve: its output is high.
        assert_eq!(sim.output_words(), vec![0b10]);
        // A fully counted step that returns lane 1 to 0 counts those toggles.
        sim.step(&[0b00, 0b00]);
        assert_eq!(sim.lane_cycles(), 3);
        let toggles: u64 = sim.net_toggle_counts().iter().sum();
        assert_eq!(toggles, 2, "a and y fall in lane 1");
    }

    #[test]
    fn lanes_above_the_mask_are_ignored() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = PackedSimulator::new(&n, &lib, 2).unwrap();
        // Garbage bits above the lane mask must not reach state or counts.
        sim.step(&[!0b01, 0b00]);
        assert_eq!(sim.output_words(), vec![0b10]);
        assert_eq!(sim.lane_cycles(), 2);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_panics() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let _ = PackedSimulator::new(&n, &lib, 0);
    }

    #[test]
    fn reset_counters_keeps_state() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = PackedSimulator::new(&n, &lib, 64).unwrap();
        sim.step(&[!0_u64, 0]);
        sim.reset_counters();
        assert_eq!(sim.lane_cycles(), 0);
        assert_eq!(sim.report().toggles, 0);
        // State preserved: same vector again causes no toggles.
        sim.step(&[!0_u64, 0]);
        assert_eq!(sim.report().toggles, 0);
    }

    /// Same mixed circuit as the scalar scheduled-engine tests: a
    /// folded-low cone, a folded-high primary output, duplicate gates and a
    /// flip-flop.
    fn mixed_netlist() -> Netlist {
        let mut n = Netlist::new("mix");
        let tie1 = n.add_constant("tie1", true);
        let a = n.add_input("a");
        let b = n.add_input("b");
        let inv = n.add_net("inv");
        let high = n.add_net("high");
        let x1 = n.add_net("x1");
        let x2 = n.add_net("x2");
        let y = n.add_net("y");
        let q = n.add_net("q");
        n.add_cell("u_inv", CellKind::Inv, &[tie1], inv).unwrap();
        n.add_cell("u_buf", CellKind::Buf, &[tie1], high).unwrap();
        n.add_cell("u1", CellKind::And2, &[a, b], x1).unwrap();
        n.add_cell("u2", CellKind::And2, &[a, b], x2).unwrap();
        n.add_cell("u_or", CellKind::Or2, &[x1, inv], y).unwrap();
        n.add_cell("u_ff", CellKind::Dff, &[x2], q).unwrap();
        n.mark_output(y).unwrap();
        n.mark_output(q).unwrap();
        n.mark_output(high).unwrap();
        n
    }

    #[test]
    fn scheduled_packed_matches_walk_packed_bit_exactly() {
        let n = mixed_netlist();
        let lib = CellLibrary::default();
        let optimized = crate::passes::PassPipeline::standard().run(&n).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0xDAC_2002);
        let lanes = 11_u32;
        let mut raw = PackedSimulator::new(&n, &lib, lanes).unwrap();
        let mut opt = PackedSimulator::with_passes(&n, &optimized, &lib, lanes).unwrap();
        for cycle in 0..24 {
            let vector = [rng.gen::<u64>(), rng.gen::<u64>()];
            // Exercise a masked step mid-run, including as the first step.
            let mask = if cycle % 5 == 0 {
                0b101
            } else {
                raw.lane_mask()
            };
            raw.step_masked(&vector, mask);
            opt.step_masked(&vector, mask);
            assert_eq!(raw.output_words(), opt.output_words());
        }
        assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        assert_eq!(raw.lane_cycles(), opt.lane_cycles());
        assert_eq!(raw.report(), opt.report());
    }
}
