//! Input-vector power characterization of node-switch circuits.
//!
//! This is the programmatic replacement for the paper's Synopsys Power
//! Compiler flow (§5.1): each generated switch circuit is simulated at the
//! gate level under every packet-occupancy state, with random payload words
//! driven into the active ports, and the average energy per bit slot is
//! recorded into a [`SwitchEnergyLut`].

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use fabric_power_tech::units::Energy;

use crate::circuits::{
    banyan_binary_switch, batcher_sorting_switch, crossbar_crosspoint, n_input_mux, SwitchCircuit,
    SwitchClass,
};
use crate::library::CellLibrary;
use crate::lut::{LutSource, SwitchEnergyLut};
use crate::netlist::NetlistError;
use crate::sim::Simulator;

/// Parameters of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Cycles simulated (and discarded) before measurement starts, so the
    /// result is not skewed by the all-zero reset state.
    pub warmup_cycles: u64,
    /// Cycles over which energy is averaged.
    pub measure_cycles: u64,
    /// Seed of the payload random number generator (reproducible runs).
    pub seed: u64,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 16,
            measure_cycles: 512,
            seed: 0xDAC_2002,
        }
    }
}

impl CharacterizationConfig {
    /// A faster, coarser configuration for unit tests and examples.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_cycles: 4,
            measure_cycles: 64,
            seed: 0xDAC_2002,
        }
    }
}

/// Characterizes one already-built switch circuit into a [`SwitchEnergyLut`].
///
/// For each active-port count `k` the first `k` ports are driven with fresh
/// random payload words every cycle (the routing control is set up so that
/// the packets do not collide inside the switch); the remaining ports are held
/// idle.  The LUT entry is the measured energy divided by
/// `measure_cycles × bus_width`, i.e. the energy per bit slot.
///
/// # Errors
///
/// Propagates [`NetlistError`] if the generated circuit fails validation.
pub fn characterize_switch(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    let mut by_active_count = Vec::with_capacity(circuit.ports + 1);
    for active in 0..=circuit.ports {
        by_active_count.push(measure_occupancy(circuit, library, config, active)?);
    }
    Ok(SwitchEnergyLut::from_active_counts(
        circuit.class,
        circuit.ports,
        by_active_count,
        LutSource::Characterized,
    ))
}

/// Builds and characterizes the standard circuit for a [`SwitchClass`].
///
/// `bus_width` is the payload bus width; `address_bits` is only used by the
/// Batcher sorting switch (the paper compares 6-bit addresses for 32×32
/// fabrics — pass `log2(N)` of the fabric you are modelling).
///
/// # Errors
///
/// Propagates [`NetlistError`] from circuit generation or validation.
pub fn characterize_class(
    class: SwitchClass,
    bus_width: usize,
    address_bits: usize,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    let circuit = match class {
        SwitchClass::CrossbarCrosspoint => crossbar_crosspoint(bus_width)?,
        SwitchClass::BanyanBinary => banyan_binary_switch(bus_width)?,
        SwitchClass::BatcherSorting => batcher_sorting_switch(bus_width, address_bits.max(1))?,
        SwitchClass::Mux { inputs } => n_input_mux(inputs, bus_width)?,
    };
    characterize_switch(&circuit, library, config)
}

fn measure_occupancy(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> Result<Energy, NetlistError> {
    let mut sim = Simulator::new(&circuit.netlist, library)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ active_ports as u64);

    let drive = |sim: &mut Simulator<'_>, rng: &mut ChaCha8Rng| {
        let mut vector = circuit.blank_input_vector();
        // Presence flags for the first `active_ports` ports.
        for port in 0..circuit.ports {
            circuit.set_input(
                &mut vector,
                circuit.presence_inputs[port],
                port < active_ports,
            );
        }
        // Routing control: a fresh non-conflicting header every cycle (the
        // header data path of a switch is exercised once per packet; we use
        // back-to-back minimum packets, the worst case).
        set_routing_controls(circuit, &mut vector, rng, active_ports);
        // Fresh random payload on every active port; idle ports stay at zero.
        for port in 0..active_ports {
            circuit.set_bus(&mut vector, port, rng.gen::<u64>());
        }
        sim.step(&vector);
    };

    for _ in 0..config.warmup_cycles {
        drive(&mut sim, &mut rng);
    }
    sim.reset_counters();
    for _ in 0..config.measure_cycles {
        drive(&mut sim, &mut rng);
    }

    let report = sim.report();
    let bit_slots = config.measure_cycles as f64 * circuit.bus_width as f64;
    Ok(report.total_energy() / bit_slots)
}

/// Sets the routing-control inputs for one characterization cycle:
///
/// * crosspoint: the configuration bit is asserted;
/// * binary switch: non-conflicting destination bits, alternated randomly
///   between the straight and the crossed configuration (each packet carries a
///   fresh header);
/// * sorting switch: a fresh random destination address per port and cycle
///   (the compare-exchange logic is exercised exactly once per packet);
/// * MUX: input 0 is selected (the select lines change at packet rate in a
///   real fabric; keeping them stable isolates the datapath cost, which the
///   paper observes is nearly vector-independent).
fn set_routing_controls(
    circuit: &SwitchCircuit,
    vector: &mut [bool],
    rng: &mut ChaCha8Rng,
    active_ports: usize,
) {
    match circuit.class {
        SwitchClass::CrossbarCrosspoint => {
            circuit.set_input(vector, circuit.control_inputs[0], true);
        }
        SwitchClass::BanyanBinary => {
            // Straight (0→0, 1→1) or crossed (0→1, 1→0): never conflicting.
            let crossed = rng.gen::<bool>();
            circuit.set_input(vector, circuit.control_inputs[0], crossed);
            circuit.set_input(vector, circuit.control_inputs[1], !crossed);
        }
        SwitchClass::BatcherSorting => {
            let address_bits = circuit.control_inputs.len() / 2;
            for port in 0..2 {
                let address = if port < active_ports {
                    rng.gen::<u64>()
                } else {
                    0
                };
                for bit in 0..address_bits {
                    circuit.set_input(
                        vector,
                        circuit.control_inputs[port * address_bits + bit],
                        (address >> bit) & 1 == 1,
                    );
                }
            }
        }
        SwitchClass::Mux { .. } => {
            for &net in &circuit.control_inputs {
                circuit.set_input(vector, net, false);
            }
        }
    }
}

/// The result of characterizing the full standard switch set at one bus width
/// (the programmatic equivalent of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Crossbar crosspoint LUT.
    pub crosspoint: SwitchEnergyLut,
    /// Banyan 2×2 binary switch LUT.
    pub banyan_binary: SwitchEnergyLut,
    /// Batcher 2×2 sorting switch LUT.
    pub batcher_sorting: SwitchEnergyLut,
    /// N-input MUX LUTs for N = 4, 8, 16, 32.
    pub muxes: Vec<SwitchEnergyLut>,
}

impl Table1 {
    /// Characterizes every switch of the paper's Table 1 with the generated
    /// circuits and the given cell library.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from circuit generation.
    pub fn characterize(
        bus_width: usize,
        address_bits: usize,
        library: &CellLibrary,
        config: &CharacterizationConfig,
    ) -> Result<Self, NetlistError> {
        Ok(Self {
            crosspoint: characterize_class(
                SwitchClass::CrossbarCrosspoint,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            banyan_binary: characterize_class(
                SwitchClass::BanyanBinary,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            batcher_sorting: characterize_class(
                SwitchClass::BatcherSorting,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            muxes: [4, 8, 16, 32]
                .into_iter()
                .map(|inputs| {
                    characterize_class(
                        SwitchClass::Mux { inputs },
                        bus_width,
                        address_bits,
                        library,
                        config,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// The paper's published Table 1 packaged in the same structure.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            crosspoint: SwitchEnergyLut::paper_crossbar_crosspoint(),
            banyan_binary: SwitchEnergyLut::paper_banyan_binary(),
            batcher_sorting: SwitchEnergyLut::paper_batcher_sorting(),
            muxes: vec![
                SwitchEnergyLut::paper_mux(4),
                SwitchEnergyLut::paper_mux(8),
                SwitchEnergyLut::paper_mux(16),
                SwitchEnergyLut::paper_mux(32),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CharacterizationConfig {
        CharacterizationConfig::quick()
    }

    #[test]
    fn crosspoint_characterization_orders_by_occupancy() {
        let circuit = crossbar_crosspoint(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(lut.ports(), 1);
        assert_eq!(lut.source(), LutSource::Characterized);
        // An active crosspoint costs far more than an idle one.
        assert!(lut.single_active() > lut.energy_for_active_count(0) * 5.0);
    }

    #[test]
    fn binary_switch_shows_economy_of_scale() {
        let circuit = banyan_binary_switch(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let one = lut.energy_for_active_count(1);
        let two = lut.energy_for_active_count(2);
        // Two packets cost more than one, but less than twice as much
        // (the paper's observation about input-state dependence).
        assert!(two > one);
        assert!(two < one * 2.0);
    }

    #[test]
    fn sorting_switch_costs_more_than_binary_switch_when_loaded() {
        let lib = CellLibrary::calibrated_018um();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        let sorting =
            characterize_class(SwitchClass::BatcherSorting, 16, 4, &lib, &quick()).unwrap();
        // Table 1's [1,1] ordering (2025 fJ > 1821 fJ): with both inputs busy
        // the compare-exchange and header-forwarding logic make the sorting
        // switch strictly costlier.
        assert!(
            sorting.energy_for_active_count(2) > binary.energy_for_active_count(2),
            "sorting {} !> binary {}",
            sorting.energy_for_active_count(2),
            binary.energy_for_active_count(2)
        );
        // With a single packet the two implementations are within the same
        // band (the paper's 1253 fJ vs 1080 fJ gap is ~16 %); we only require
        // that ours does not invert the relation by more than 25 %.
        assert!(sorting.single_active() > binary.single_active() * 0.75);
    }

    #[test]
    fn crosspoint_is_the_cheapest_switch() {
        let lib = CellLibrary::calibrated_018um();
        let crosspoint =
            characterize_class(SwitchClass::CrossbarCrosspoint, 16, 4, &lib, &quick()).unwrap();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        assert!(crosspoint.single_active() < binary.single_active());
    }

    #[test]
    fn mux_energy_grows_with_input_count() {
        let lib = CellLibrary::calibrated_018um();
        let m4 = characterize_class(SwitchClass::Mux { inputs: 4 }, 8, 2, &lib, &quick())
            .unwrap()
            .energy_for_active_count(4);
        let m8 = characterize_class(SwitchClass::Mux { inputs: 8 }, 8, 3, &lib, &quick())
            .unwrap()
            .energy_for_active_count(8);
        assert!(m8 > m4, "{m8} !> {m4}");
    }

    #[test]
    fn characterization_is_deterministic_for_a_fixed_seed() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let a = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let b = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn characterized_energies_are_in_the_paper_order_of_magnitude() {
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_class(SwitchClass::BanyanBinary, 32, 5, &lib, &quick()).unwrap();
        let fj = lut.single_active().as_femtojoules();
        // Paper: 1080 fJ. Accept a generous band — the point is the scale.
        assert!(
            fj > 100.0,
            "binary switch energy {fj} fJ is implausibly low"
        );
        assert!(
            fj < 10_000.0,
            "binary switch energy {fj} fJ is implausibly high"
        );
    }

    #[test]
    fn paper_table1_structure_is_complete() {
        let table = Table1::paper();
        assert_eq!(table.muxes.len(), 4);
        assert!(table.batcher_sorting.single_active() > table.banyan_binary.single_active());
    }
}
