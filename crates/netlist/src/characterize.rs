//! Input-vector power characterization of node-switch circuits.
//!
//! This is the programmatic replacement for the paper's Synopsys Power
//! Compiler flow (§5.1): each generated switch circuit is simulated at the
//! gate level under every packet-occupancy state, with random payload words
//! driven into the active ports, and the average energy per bit slot is
//! recorded into a [`SwitchEnergyLut`].
//!
//! # Bit-parallel measurement
//!
//! With `lanes > 1` (the default is 64) the measurement runs on the
//! bit-parallel [`PackedSimulator`]: `lanes` independent Monte-Carlo streams
//! advance simultaneously, one bit per lane in a `u64` word per net.  Lane
//! `L` draws its vectors from a [`ChaCha8Rng`] seeded with
//! `seed ^ active_ports ^ lane_salt(L)`, and the `measure_cycles` budget is
//! split across lanes: each lane measures `measure_cycles / lanes` cycles
//! and the first `measure_cycles % lanes` lanes measure one more in a final
//! partially-masked step, so exactly `measure_cycles` lane-cycles are
//! counted.  The packed result is the [`LutSource::Characterized`]
//! reference; running the scalar [`Simulator`] per lane with the same
//! per-lane seeds reproduces the packed energies bit-exactly (both engines
//! reduce integer per-net toggle counts through the same
//! [`crate::sim::EnergyTables`]).

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use fabric_power_obs as obs;
use fabric_power_tech::units::Energy;

use crate::circuits::{
    banyan_binary_switch, batcher_sorting_switch, crossbar_crosspoint, n_input_mux, SwitchCircuit,
    SwitchClass,
};
use crate::library::CellLibrary;
use crate::lut::{LutSource, SwitchEnergyLut};
use crate::netlist::{NetId, NetlistError};
use crate::packed::{transpose64, PackedSimulator};
use crate::sim::{ActivityReport, Simulator};

/// Parameters of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Cycles simulated (and discarded) before measurement starts, so the
    /// result is not skewed by the all-zero reset state.  Every lane warms
    /// up for this many cycles.
    pub warmup_cycles: u64,
    /// Total measured lane-cycles over which energy is averaged (split
    /// across lanes when `lanes > 1`).
    pub measure_cycles: u64,
    /// Seed of the payload random number generator (reproducible runs).
    pub seed: u64,
    /// Independent simulation lanes driven at once (1..=64).  `1` selects
    /// the scalar engine; anything else the bit-parallel engine.  Part of
    /// the model-cache key: changing it re-derives models.
    pub lanes: u32,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 16,
            measure_cycles: 512,
            seed: 0xDAC_2002,
            lanes: 64,
        }
    }
}

impl CharacterizationConfig {
    /// A faster, coarser configuration for unit tests and examples.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_cycles: 4,
            measure_cycles: 64,
            seed: 0xDAC_2002,
            lanes: 64,
        }
    }

    /// Returns the same configuration with a different lane count.
    #[must_use]
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }
}

/// Per-lane seed diffusion: lane `L` of a measurement with base seed `s` and
/// `k` active ports is seeded with `s ^ k ^ lane_salt(L)`.
///
/// `lane_salt(0) == 0`, so lane 0 (and any single-lane run) reproduces the
/// historical scalar seeding exactly.  Distinct lanes get well-separated
/// seeds via the SplitMix64/golden-ratio multiplier.
#[must_use]
pub fn lane_salt(lane: u32) -> u64 {
    u64::from(lane).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Characterizes one already-built switch circuit into a [`SwitchEnergyLut`].
///
/// For each active-port count `k` the first `k` ports are driven with fresh
/// random payload words every cycle (the routing control is set up so that
/// the packets do not collide inside the switch); the remaining ports are held
/// idle.  The LUT entry is the measured energy divided by
/// `measure_cycles × bus_width`, i.e. the energy per bit slot.
///
/// # Errors
///
/// Propagates [`NetlistError`] if the generated circuit fails validation.
pub fn characterize_switch(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    obs::metrics::gauge(obs::metrics::names::CHARACTERIZE_LANES).set(i64::from(config.lanes));
    let mut by_active_count = Vec::with_capacity(circuit.ports + 1);
    for active in 0..=circuit.ports {
        by_active_count.push(measure_occupancy(circuit, library, config, active)?);
    }
    Ok(SwitchEnergyLut::from_active_counts(
        circuit.class,
        circuit.ports,
        by_active_count,
        LutSource::Characterized,
    ))
}

/// Builds and characterizes the standard circuit for a [`SwitchClass`].
///
/// `bus_width` is the payload bus width; `address_bits` is only used by the
/// Batcher sorting switch (the paper compares 6-bit addresses for 32×32
/// fabrics — pass `log2(N)` of the fabric you are modelling).
///
/// # Errors
///
/// Propagates [`NetlistError`] from circuit generation or validation.
pub fn characterize_class(
    class: SwitchClass,
    bus_width: usize,
    address_bits: usize,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    let circuit = match class {
        SwitchClass::CrossbarCrosspoint => crossbar_crosspoint(bus_width)?,
        SwitchClass::BanyanBinary => banyan_binary_switch(bus_width)?,
        SwitchClass::BatcherSorting => batcher_sorting_switch(bus_width, address_bits.max(1))?,
        SwitchClass::Mux { inputs } => n_input_mux(inputs, bus_width)?,
    };
    characterize_switch(&circuit, library, config)
}

fn measure_occupancy(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> Result<Energy, NetlistError> {
    let timer = Instant::now();
    let report = if config.lanes == 1 {
        measure_scalar(circuit, library, config, active_ports)?
    } else {
        measure_packed(circuit, library, config, active_ports)?
    };
    let elapsed = timer.elapsed().as_secs_f64();
    obs::metrics::counter(obs::metrics::names::CHARACTERIZE_LANE_CYCLES).add(config.measure_cycles);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    obs::metrics::histogram(obs::metrics::names::CHARACTERIZE_LANE_CYCLES_PER_SEC)
        .observe((config.measure_cycles as f64 / elapsed.max(1e-9)) as u64);

    let bit_slots = config.measure_cycles as f64 * circuit.bus_width as f64;
    Ok(report.total_energy() / bit_slots)
}

/// Single-lane measurement on the scalar [`Simulator`].
fn measure_scalar(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> Result<ActivityReport, NetlistError> {
    let mut sim = Simulator::new(&circuit.netlist, library)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ active_ports as u64 ^ lane_salt(0));
    // The input vector and everything in it that does not change per cycle
    // (presence flags, static routing control) are written exactly once.
    let mut vector = circuit.blank_input_vector();
    write_static_inputs(circuit, active_ports, &mut |pos, value| {
        vector[pos] = value;
    });
    for _ in 0..config.warmup_cycles {
        drive_lane_cycle(circuit, &mut rng, active_ports, &mut |pos, value| {
            vector[pos] = value;
        });
        sim.step(&vector);
    }
    sim.reset_counters();
    for _ in 0..config.measure_cycles {
        drive_lane_cycle(circuit, &mut rng, active_ports, &mut |pos, value| {
            vector[pos] = value;
        });
        sim.step(&vector);
    }
    Ok(sim.report())
}

/// Multi-lane measurement on the bit-parallel [`PackedSimulator`].
///
/// Lane `L` consumes exactly the vector stream that a scalar run seeded with
/// `seed ^ active_ports ^ lane_salt(L)` would, so summing per-lane scalar
/// toggle counts reproduces this measurement bit-exactly.  Each lane warms
/// up for `warmup_cycles`; the measured budget is `measure_cycles / lanes`
/// full-mask steps plus, when it does not divide evenly, one final step
/// counting only the first `measure_cycles % lanes` lanes — masked lanes
/// still evolve, they are just not measured.
fn measure_packed(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> Result<ActivityReport, NetlistError> {
    let lanes = config.lanes;
    let mut sim = PackedSimulator::new(&circuit.netlist, library, lanes)?;
    let mut rngs: Vec<ChaCha8Rng> = (0..lanes)
        .map(|lane| ChaCha8Rng::seed_from_u64(config.seed ^ active_ports as u64 ^ lane_salt(lane)))
        .collect();

    let mut words = vec![0_u64; circuit.netlist.primary_inputs().len()];
    write_static_inputs(circuit, active_ports, &mut |pos, value| {
        words[pos] = if value { !0 } else { 0 };
    });
    // Input positions resolved once; the per-cycle loops below touch only
    // plain indices.
    let control_positions: Vec<usize> = circuit
        .control_inputs
        .iter()
        .map(|&net| pi_position(circuit, net))
        .collect();
    let data_positions: Vec<Vec<usize>> = circuit
        .data_inputs
        .iter()
        .take(active_ports)
        .map(|bus| bus.iter().map(|&net| pi_position(circuit, net)).collect())
        .collect();

    // Drives every lane for one cycle.  Each lane's RNG is consumed in
    // exactly the order of `drive_lane_cycle` (routing control first, then
    // one payload word per active port), so per-lane streams match the
    // scalar oracle; across lanes the order is free because every lane owns
    // its RNG.  Payloads are drawn lane-major (one `u64` per lane) and
    // flipped to net-major words with a 64×64 bit transpose instead of
    // 64 × bus_width single-bit writes.
    let drive_all = |words: &mut [u64], rngs: &mut [ChaCha8Rng]| {
        match circuit.class {
            SwitchClass::BanyanBinary => {
                let mut crossed_word = 0_u64;
                for (lane, rng) in rngs.iter_mut().enumerate() {
                    crossed_word |= u64::from(rng.gen::<bool>()) << lane;
                }
                words[control_positions[0]] = crossed_word;
                words[control_positions[1]] = !crossed_word;
            }
            SwitchClass::BatcherSorting => {
                let address_bits = control_positions.len() / 2;
                for port in 0..2 {
                    let mut block = [0_u64; 64];
                    for (lane, rng) in rngs.iter_mut().enumerate() {
                        block[lane] = if port < active_ports {
                            rng.gen::<u64>()
                        } else {
                            0
                        };
                    }
                    transpose64(&mut block);
                    for bit in 0..address_bits {
                        words[control_positions[port * address_bits + bit]] = block[bit];
                    }
                }
            }
            SwitchClass::CrossbarCrosspoint | SwitchClass::Mux { .. } => {}
        }
        for positions in &data_positions {
            let mut block = [0_u64; 64];
            for (lane, rng) in rngs.iter_mut().enumerate() {
                block[lane] = rng.gen::<u64>();
            }
            transpose64(&mut block);
            for (bit, &pos) in positions.iter().enumerate() {
                words[pos] = block[bit];
            }
        }
    };

    for _ in 0..config.warmup_cycles {
        drive_all(&mut words, &mut rngs);
        sim.step(&words);
    }
    sim.reset_counters();
    let full_steps = config.measure_cycles / u64::from(lanes);
    #[allow(clippy::cast_possible_truncation)]
    let remainder_lanes = (config.measure_cycles % u64::from(lanes)) as u32;
    for _ in 0..full_steps {
        drive_all(&mut words, &mut rngs);
        sim.step(&words);
    }
    if remainder_lanes > 0 {
        drive_all(&mut words, &mut rngs);
        sim.step_masked(&words, (1_u64 << remainder_lanes) - 1);
    }
    Ok(sim.report())
}

fn pi_position(circuit: &SwitchCircuit, net: NetId) -> usize {
    circuit
        .netlist
        .primary_input_position(net)
        .expect("switch circuit interface net must be a primary input")
}

/// Writes the inputs that stay constant for a whole measurement through
/// `set(primary-input position, value)`:
///
/// * presence flags for the first `active_ports` ports;
/// * crosspoint: the configuration bit is asserted;
/// * MUX: input 0 is selected (the select lines change at packet rate in a
///   real fabric; keeping them stable isolates the datapath cost, which the
///   paper observes is nearly vector-independent).
fn write_static_inputs(
    circuit: &SwitchCircuit,
    active_ports: usize,
    set: &mut impl FnMut(usize, bool),
) {
    for port in 0..circuit.ports {
        set(
            pi_position(circuit, circuit.presence_inputs[port]),
            port < active_ports,
        );
    }
    match circuit.class {
        SwitchClass::CrossbarCrosspoint => {
            set(pi_position(circuit, circuit.control_inputs[0]), true);
        }
        SwitchClass::Mux { .. } => {
            for &net in &circuit.control_inputs {
                set(pi_position(circuit, net), false);
            }
        }
        SwitchClass::BanyanBinary | SwitchClass::BatcherSorting => {}
    }
}

/// Drives one lane for one cycle through `set(primary-input position,
/// value)`: the per-cycle routing control and a fresh random payload word on
/// every active port (idle ports stay at zero).
///
/// * binary switch: non-conflicting destination bits, alternated randomly
///   between the straight and the crossed configuration (each packet carries
///   a fresh header);
/// * sorting switch: a fresh random destination address per active port and
///   cycle (the compare-exchange logic is exercised exactly once per packet).
///
/// The lane's RNG is consumed in a fixed order; the packed engine and the
/// scalar oracle call this with identical RNG states, which is what makes
/// their vector streams — and therefore their toggle counts — identical.
fn drive_lane_cycle(
    circuit: &SwitchCircuit,
    rng: &mut ChaCha8Rng,
    active_ports: usize,
    set: &mut impl FnMut(usize, bool),
) {
    match circuit.class {
        SwitchClass::BanyanBinary => {
            // Straight (0→0, 1→1) or crossed (0→1, 1→0): never conflicting.
            let crossed = rng.gen::<bool>();
            set(pi_position(circuit, circuit.control_inputs[0]), crossed);
            set(pi_position(circuit, circuit.control_inputs[1]), !crossed);
        }
        SwitchClass::BatcherSorting => {
            let address_bits = circuit.control_inputs.len() / 2;
            for port in 0..2 {
                let address = if port < active_ports {
                    rng.gen::<u64>()
                } else {
                    0
                };
                for bit in 0..address_bits {
                    set(
                        pi_position(circuit, circuit.control_inputs[port * address_bits + bit]),
                        (address >> bit) & 1 == 1,
                    );
                }
            }
        }
        SwitchClass::CrossbarCrosspoint | SwitchClass::Mux { .. } => {}
    }
    for port in 0..active_ports {
        let word = rng.gen::<u64>();
        for (bit, &net) in circuit.data_inputs[port].iter().enumerate() {
            set(pi_position(circuit, net), (word >> bit) & 1 == 1);
        }
    }
}

/// The result of characterizing the full standard switch set at one bus width
/// (the programmatic equivalent of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Crossbar crosspoint LUT.
    pub crosspoint: SwitchEnergyLut,
    /// Banyan 2×2 binary switch LUT.
    pub banyan_binary: SwitchEnergyLut,
    /// Batcher 2×2 sorting switch LUT.
    pub batcher_sorting: SwitchEnergyLut,
    /// N-input MUX LUTs for N = 4, 8, 16, 32.
    pub muxes: Vec<SwitchEnergyLut>,
}

impl Table1 {
    /// Characterizes every switch of the paper's Table 1 with the generated
    /// circuits and the given cell library.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from circuit generation.
    pub fn characterize(
        bus_width: usize,
        address_bits: usize,
        library: &CellLibrary,
        config: &CharacterizationConfig,
    ) -> Result<Self, NetlistError> {
        Ok(Self {
            crosspoint: characterize_class(
                SwitchClass::CrossbarCrosspoint,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            banyan_binary: characterize_class(
                SwitchClass::BanyanBinary,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            batcher_sorting: characterize_class(
                SwitchClass::BatcherSorting,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            muxes: [4, 8, 16, 32]
                .into_iter()
                .map(|inputs| {
                    characterize_class(
                        SwitchClass::Mux { inputs },
                        bus_width,
                        address_bits,
                        library,
                        config,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// The paper's published Table 1 packaged in the same structure.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            crosspoint: SwitchEnergyLut::paper_crossbar_crosspoint(),
            banyan_binary: SwitchEnergyLut::paper_banyan_binary(),
            batcher_sorting: SwitchEnergyLut::paper_batcher_sorting(),
            muxes: vec![
                SwitchEnergyLut::paper_mux(4),
                SwitchEnergyLut::paper_mux(8),
                SwitchEnergyLut::paper_mux(16),
                SwitchEnergyLut::paper_mux(32),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CharacterizationConfig {
        CharacterizationConfig::quick()
    }

    #[test]
    fn crosspoint_characterization_orders_by_occupancy() {
        let circuit = crossbar_crosspoint(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(lut.ports(), 1);
        assert_eq!(lut.source(), LutSource::Characterized);
        // An active crosspoint costs far more than an idle one.
        assert!(lut.single_active() > lut.energy_for_active_count(0) * 5.0);
    }

    #[test]
    fn binary_switch_shows_economy_of_scale() {
        let circuit = banyan_binary_switch(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let one = lut.energy_for_active_count(1);
        let two = lut.energy_for_active_count(2);
        // Two packets cost more than one, but less than twice as much
        // (the paper's observation about input-state dependence).
        assert!(two > one);
        assert!(two < one * 2.0);
    }

    #[test]
    fn sorting_switch_costs_more_than_binary_switch_when_loaded() {
        let lib = CellLibrary::calibrated_018um();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        let sorting =
            characterize_class(SwitchClass::BatcherSorting, 16, 4, &lib, &quick()).unwrap();
        // Table 1's [1,1] ordering (2025 fJ > 1821 fJ): with both inputs busy
        // the compare-exchange and header-forwarding logic make the sorting
        // switch strictly costlier.
        assert!(
            sorting.energy_for_active_count(2) > binary.energy_for_active_count(2),
            "sorting {} !> binary {}",
            sorting.energy_for_active_count(2),
            binary.energy_for_active_count(2)
        );
        // With a single packet the two implementations are within the same
        // band (the paper's 1253 fJ vs 1080 fJ gap is ~16 %); we only require
        // that ours does not invert the relation by more than 25 %.
        assert!(sorting.single_active() > binary.single_active() * 0.75);
    }

    #[test]
    fn crosspoint_is_the_cheapest_switch() {
        let lib = CellLibrary::calibrated_018um();
        let crosspoint =
            characterize_class(SwitchClass::CrossbarCrosspoint, 16, 4, &lib, &quick()).unwrap();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        assert!(crosspoint.single_active() < binary.single_active());
    }

    #[test]
    fn mux_energy_grows_with_input_count() {
        let lib = CellLibrary::calibrated_018um();
        let m4 = characterize_class(SwitchClass::Mux { inputs: 4 }, 8, 2, &lib, &quick())
            .unwrap()
            .energy_for_active_count(4);
        let m8 = characterize_class(SwitchClass::Mux { inputs: 8 }, 8, 3, &lib, &quick())
            .unwrap()
            .energy_for_active_count(8);
        assert!(m8 > m4, "{m8} !> {m4}");
    }

    #[test]
    fn packed_measurement_matches_scalar_per_lane_oracle_bit_exactly() {
        // lanes = 5 with measure_cycles = 17 exercises the remainder mask:
        // three full-mask steps plus one final step counting only lanes 0–1.
        let config = CharacterizationConfig {
            warmup_cycles: 3,
            measure_cycles: 17,
            seed: 0xDAC_2002,
            lanes: 5,
        };
        let lib = CellLibrary::calibrated_018um();
        let circuits = [
            crossbar_crosspoint(8).unwrap(),
            banyan_binary_switch(8).unwrap(),
            batcher_sorting_switch(4, 3).unwrap(),
            n_input_mux(4, 4).unwrap(),
        ];
        for circuit in &circuits {
            for active in 0..=circuit.ports {
                let packed = measure_packed(circuit, &lib, &config, active).unwrap();

                let tables = Simulator::new(&circuit.netlist, &lib)
                    .unwrap()
                    .energy_tables()
                    .clone();
                let mut summed = vec![0_u64; circuit.netlist.net_count()];
                let mut total_cycles = 0_u64;
                for lane in 0..config.lanes {
                    let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(config.seed ^ active as u64 ^ lane_salt(lane));
                    let mut vector = circuit.blank_input_vector();
                    write_static_inputs(circuit, active, &mut |pos, v| vector[pos] = v);
                    for _ in 0..config.warmup_cycles {
                        drive_lane_cycle(circuit, &mut rng, active, &mut |pos, v| {
                            vector[pos] = v;
                        });
                        sim.step(&vector);
                    }
                    sim.reset_counters();
                    let lane_cycles = config.measure_cycles / u64::from(config.lanes)
                        + u64::from(
                            u64::from(lane) < config.measure_cycles % u64::from(config.lanes),
                        );
                    for _ in 0..lane_cycles {
                        drive_lane_cycle(circuit, &mut rng, active, &mut |pos, v| {
                            vector[pos] = v;
                        });
                        sim.step(&vector);
                    }
                    for (acc, &count) in summed.iter_mut().zip(sim.net_toggle_counts()) {
                        *acc += count;
                    }
                    total_cycles += lane_cycles;
                }
                assert_eq!(total_cycles, config.measure_cycles);
                let oracle = tables.report_from_counts(&summed, total_cycles);
                assert_eq!(
                    packed, oracle,
                    "packed vs scalar-oracle mismatch for {} with {active} active port(s)",
                    circuit.class
                );
            }
        }
    }

    #[test]
    fn single_lane_config_reproduces_the_scalar_engine() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let config = quick().with_lanes(1);
        for active in 0..=circuit.ports {
            let via_dispatch = measure_occupancy(&circuit, &lib, &config, active).unwrap();
            let scalar = measure_scalar(&circuit, &lib, &config, active).unwrap();
            let bit_slots = config.measure_cycles as f64 * circuit.bus_width as f64;
            assert_eq!(via_dispatch, scalar.total_energy() / bit_slots);
        }
    }

    #[test]
    fn lane_salt_is_zero_for_lane_zero_and_distinct_elsewhere() {
        assert_eq!(lane_salt(0), 0);
        let mut seen: Vec<u64> = (0..64).map(lane_salt).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn characterization_is_deterministic_for_a_fixed_seed() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let a = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let b = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn characterized_energies_are_in_the_paper_order_of_magnitude() {
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_class(SwitchClass::BanyanBinary, 32, 5, &lib, &quick()).unwrap();
        let fj = lut.single_active().as_femtojoules();
        // Paper: 1080 fJ. Accept a generous band — the point is the scale.
        assert!(
            fj > 100.0,
            "binary switch energy {fj} fJ is implausibly low"
        );
        assert!(
            fj < 10_000.0,
            "binary switch energy {fj} fJ is implausibly high"
        );
    }

    #[test]
    fn paper_table1_structure_is_complete() {
        let table = Table1::paper();
        assert_eq!(table.muxes.len(), 4);
        assert!(table.batcher_sorting.single_active() > table.banyan_binary.single_active());
    }
}
