//! Input-vector power characterization of node-switch circuits.
//!
//! This is the programmatic replacement for the paper's Synopsys Power
//! Compiler flow (§5.1): each generated switch circuit is simulated at the
//! gate level under every packet-occupancy state, with random payload words
//! driven into the active ports, and the average energy per bit slot is
//! recorded into a [`SwitchEnergyLut`].
//!
//! # Bit-parallel measurement
//!
//! With `lanes > 1` (the default is 64) the measurement runs on the
//! bit-parallel [`PackedSimulator`]: `lanes` independent Monte-Carlo streams
//! advance simultaneously, one bit per lane in a `u64` word per net.  The
//! stimulus is drawn *net-major* from one [`StimulusRng`] stream per
//! measurement, seeded with `seed ^ active_ports`: every bus cycle consumes
//! one `u64` word per driven input net, in a fixed order (routing control
//! first, then each active port's payload bits low-to-high), and bit `L` of
//! every drawn word belongs to lane `L`.  The packed engine writes the draws
//! verbatim; a scalar run of lane `L` reads bit `L` of the very same draws —
//! that shared-draw decomposition is what makes the packed measurement equal
//! the sum of `lanes` scalar measurements bit-exactly (both engines reduce
//! integer per-net toggle counts through the same
//! [`crate::sim::EnergyTables`]).  The `measure_cycles` budget is split
//! across lanes: each lane measures `measure_cycles / lanes` cycles and the
//! first `measure_cycles % lanes` lanes measure one more in a final
//! partially-masked step, so exactly `measure_cycles` lane-cycles are
//! counted.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use fabric_power_obs as obs;
use fabric_power_tech::units::Energy;

use crate::circuits::{
    banyan_binary_switch, batcher_sorting_switch, crossbar_crosspoint, n_input_mux, SwitchCircuit,
    SwitchClass,
};
use crate::library::CellLibrary;
use crate::lut::{LutSource, SwitchEnergyLut};
use crate::netlist::{NetId, NetlistError};
use crate::packed::PackedSimulator;
use crate::passes::{PassPipeline, PipelineMode};
use crate::sim::{ActivityReport, Simulator};

/// Parameters of a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Cycles simulated (and discarded) before measurement starts, so the
    /// result is not skewed by the all-zero reset state.  Every lane warms
    /// up for this many cycles.
    pub warmup_cycles: u64,
    /// Total measured lane-cycles over which energy is averaged (split
    /// across lanes when `lanes > 1`).
    pub measure_cycles: u64,
    /// Seed of the payload random number generator (reproducible runs).
    pub seed: u64,
    /// Independent simulation lanes driven at once (1..=64).  `1` selects
    /// the scalar engine; anything else the bit-parallel engine.  Part of
    /// the model-cache key: changing it re-derives models.
    pub lanes: u32,
    /// Whether the simulated netlist is first run through the optimization
    /// pass pipeline ([`PipelineMode::Optimized`], the default) or simulated
    /// raw.  Both modes produce bit-identical energies (see
    /// [`crate::passes`]); the mode is still part of the model-cache key so
    /// the two derivations never alias.
    #[serde(default)]
    pub pipeline: PipelineMode,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 16,
            measure_cycles: 512,
            seed: 0xDAC_2002,
            lanes: 64,
            pipeline: PipelineMode::Optimized,
        }
    }
}

impl CharacterizationConfig {
    /// A faster, coarser configuration for unit tests and examples.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_cycles: 4,
            measure_cycles: 64,
            seed: 0xDAC_2002,
            lanes: 64,
            pipeline: PipelineMode::Optimized,
        }
    }

    /// Returns the same configuration with a different lane count.
    #[must_use]
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Returns the same configuration with a different pipeline mode.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }
}

/// The SplitMix64 finalizer: a 64-bit mixing bijection.
#[inline]
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The payload stimulus generator: SplitMix64, one shared net-major stream
/// per measurement.
///
/// Characterization needs reproducible, statistically well-distributed
/// Monte-Carlo payload words at gate-evaluation speed — nothing adversarial
/// ever sees these streams, so a cryptographic generator would spend more
/// time keying blocks than the simulator spends evaluating the cells it
/// feeds.  SplitMix64 passes BigCrush, costs a handful of ALU ops per word,
/// and its outputs are equidistributed bit-position by bit-position, which
/// is what the net-major protocol leans on: each drawn word feeds one input
/// net across all 64 lanes at once, so lane `L`'s per-net bit stream is bit
/// `L` of the shared draw sequence.  The seed is run through the finalizer
/// once at construction so the structured seeds produced by
/// `seed ^ active_ports` start from well-separated stream positions.
#[derive(Debug, Clone)]
struct StimulusRng(u64);

impl StimulusRng {
    /// Golden-ratio increment of the SplitMix64 state sequence.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    fn seed_from_u64(seed: u64) -> Self {
        Self(splitmix_finalize(seed))
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(Self::GAMMA);
        splitmix_finalize(self.0)
    }
}

/// Characterizes one already-built switch circuit into a [`SwitchEnergyLut`].
///
/// For each active-port count `k` the first `k` ports are driven with fresh
/// random payload words every cycle (the routing control is set up so that
/// the packets do not collide inside the switch); the remaining ports are held
/// idle.  The LUT entry is the measured energy divided by
/// `measure_cycles × bus_width`, i.e. the energy per bit slot.
///
/// # Errors
///
/// Propagates [`NetlistError`] if the generated circuit fails validation.
pub fn characterize_switch(
    circuit: &SwitchCircuit,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    obs::metrics::gauge(obs::metrics::names::CHARACTERIZE_LANES).set(i64::from(config.lanes));
    // The pass pipeline runs once per circuit and is amortized over all
    // `ports + 1` occupancy measurements.
    let optimized = match config.pipeline {
        PipelineMode::Raw => None,
        PipelineMode::Optimized => Some(PassPipeline::standard().run(&circuit.netlist)?),
    };
    // One simulator serves every occupancy measurement: construction
    // (energy tables, topological order, schedule-sized buffers) is paid
    // once per circuit and `reset()` restores fresh-construction semantics
    // between occupancies.
    let mut sim = if config.lanes == 1 {
        OccupancySim::Scalar(match optimized.as_ref() {
            Some(optimized) => Simulator::with_passes(&circuit.netlist, optimized, library)?,
            None => Simulator::new(&circuit.netlist, library)?,
        })
    } else {
        OccupancySim::Packed(match optimized.as_ref() {
            Some(optimized) => {
                PackedSimulator::with_passes(&circuit.netlist, optimized, library, config.lanes)?
            }
            None => PackedSimulator::new(&circuit.netlist, library, config.lanes)?,
        })
    };
    let mut by_active_count = Vec::with_capacity(circuit.ports + 1);
    for active in 0..=circuit.ports {
        by_active_count.push(measure_occupancy(circuit, &mut sim, config, active));
    }
    Ok(SwitchEnergyLut::from_active_counts(
        circuit.class,
        circuit.ports,
        by_active_count,
        LutSource::Characterized,
    ))
}

/// Builds and characterizes the standard circuit for a [`SwitchClass`].
///
/// `bus_width` is the payload bus width; `address_bits` is only used by the
/// Batcher sorting switch (the paper compares 6-bit addresses for 32×32
/// fabrics — pass `log2(N)` of the fabric you are modelling).
///
/// # Errors
///
/// Propagates [`NetlistError`] from circuit generation or validation.
pub fn characterize_class(
    class: SwitchClass,
    bus_width: usize,
    address_bits: usize,
    library: &CellLibrary,
    config: &CharacterizationConfig,
) -> Result<SwitchEnergyLut, NetlistError> {
    let circuit = match class {
        SwitchClass::CrossbarCrosspoint => crossbar_crosspoint(bus_width)?,
        SwitchClass::BanyanBinary => banyan_binary_switch(bus_width)?,
        SwitchClass::BatcherSorting => batcher_sorting_switch(bus_width, address_bits.max(1))?,
        SwitchClass::Mux { inputs } => n_input_mux(inputs, bus_width)?,
    };
    characterize_switch(&circuit, library, config)
}

/// The engine characterization drives: scalar for single-lane configs,
/// bit-parallel otherwise.  Built once per circuit and carried warm across
/// the ascending occupancy sweep (see [`measure_scalar`]).
enum OccupancySim<'a> {
    Scalar(Simulator<'a>),
    Packed(PackedSimulator<'a>),
}

fn measure_occupancy(
    circuit: &SwitchCircuit,
    sim: &mut OccupancySim<'_>,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> Energy {
    let timer = Instant::now();
    let report = match sim {
        OccupancySim::Scalar(sim) => measure_scalar(circuit, sim, config, active_ports),
        OccupancySim::Packed(sim) => measure_packed(circuit, sim, config, active_ports),
    };
    let elapsed = timer.elapsed().as_secs_f64();
    obs::metrics::counter(obs::metrics::names::CHARACTERIZE_LANE_CYCLES).add(config.measure_cycles);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    obs::metrics::histogram(obs::metrics::names::CHARACTERIZE_LANE_CYCLES_PER_SEC)
        .observe((config.measure_cycles as f64 / elapsed.max(1e-9)) as u64);

    let bit_slots = config.measure_cycles as f64 * circuit.bus_width as f64;
    report.total_energy() / bit_slots
}

/// Single-lane measurement on the scalar [`Simulator`].
///
/// Measurements warm-start: each call continues from whatever state the
/// simulator reached before (the characterization protocol sweeps
/// occupancies in ascending order on one simulator).  The warm-up cycles
/// wash in the new static configuration before counters are reset, and the
/// same state carries through both engines and both pipeline modes, so
/// bit-exactness across them is preserved.  Warm-starting is what lets the
/// level-scheduled engine stay in its steady-state sweep instead of paying
/// a full re-evaluation walk per occupancy.
fn measure_scalar(
    circuit: &SwitchCircuit,
    sim: &mut Simulator<'_>,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> ActivityReport {
    // A scalar measurement is lane 0 of the net-major protocol: the same
    // shared draw sequence, reading bit 0 of every word.
    let mut rng = StimulusRng::seed_from_u64(config.seed ^ active_ports as u64);
    let layout = StimulusLayout::new(circuit, active_ports);
    // The input vector and everything in it that does not change per cycle
    // (presence flags, static routing control) are written exactly once.
    let mut vector = circuit.blank_input_vector();
    write_static_inputs(circuit, active_ports, &mut |pos, value| {
        vector[pos] = value;
    });
    for _ in 0..config.warmup_cycles {
        layout.drive(&mut rng, &mut |pos, word| vector[pos] = word & 1 == 1);
        sim.step(&vector);
    }
    sim.reset_counters();
    for _ in 0..config.measure_cycles {
        layout.drive(&mut rng, &mut |pos, word| vector[pos] = word & 1 == 1);
        sim.step(&vector);
    }
    sim.report()
}

/// Multi-lane measurement on the bit-parallel [`PackedSimulator`].
///
/// The net-major draws are written verbatim as the engine's 64-lane net
/// words; lane `L` thereby consumes exactly the vector stream a scalar run
/// reading bit `L` of the same draws would, so summing per-lane scalar
/// toggle counts reproduces this measurement bit-exactly.  Each lane warms
/// up for `warmup_cycles`; the measured budget is `measure_cycles / lanes`
/// full-mask steps plus, when it does not divide evenly, one final step
/// counting only the first `measure_cycles % lanes` lanes — masked lanes
/// still evolve, they are just not measured.
///
/// Like [`measure_scalar`], measurements warm-start from the simulator's
/// current state; the per-lane oracle equivalence then holds against scalar
/// runs carried through the same occupancy sequence.
fn measure_packed(
    circuit: &SwitchCircuit,
    sim: &mut PackedSimulator<'_>,
    config: &CharacterizationConfig,
    active_ports: usize,
) -> ActivityReport {
    let lanes = config.lanes;
    let mut rng = StimulusRng::seed_from_u64(config.seed ^ active_ports as u64);
    let layout = StimulusLayout::new(circuit, active_ports);

    let mut words = vec![0_u64; circuit.netlist.primary_inputs().len()];
    write_static_inputs(circuit, active_ports, &mut |pos, value| {
        words[pos] = if value { !0 } else { 0 };
    });

    for _ in 0..config.warmup_cycles {
        layout.drive(&mut rng, &mut |pos, word| words[pos] = word);
        sim.step(&words);
    }
    sim.reset_counters();
    let full_steps = config.measure_cycles / u64::from(lanes);
    #[allow(clippy::cast_possible_truncation)]
    let remainder_lanes = (config.measure_cycles % u64::from(lanes)) as u32;
    for _ in 0..full_steps {
        layout.drive(&mut rng, &mut |pos, word| words[pos] = word);
        sim.step(&words);
    }
    if remainder_lanes > 0 {
        layout.drive(&mut rng, &mut |pos, word| words[pos] = word);
        sim.step_masked(&words, (1_u64 << remainder_lanes) - 1);
    }
    sim.report()
}

fn pi_position(circuit: &SwitchCircuit, net: NetId) -> usize {
    circuit
        .netlist
        .primary_input_position(net)
        .expect("switch circuit interface net must be a primary input")
}

/// Writes the inputs that stay constant for a whole measurement through
/// `set(primary-input position, value)`:
///
/// * presence flags for the first `active_ports` ports;
/// * crosspoint: the configuration bit is asserted;
/// * MUX: input 0 is selected (the select lines change at packet rate in a
///   real fabric; keeping them stable isolates the datapath cost, which the
///   paper observes is nearly vector-independent).
fn write_static_inputs(
    circuit: &SwitchCircuit,
    active_ports: usize,
    set: &mut impl FnMut(usize, bool),
) {
    for port in 0..circuit.ports {
        set(
            pi_position(circuit, circuit.presence_inputs[port]),
            port < active_ports,
        );
    }
    match circuit.class {
        SwitchClass::CrossbarCrosspoint => {
            set(pi_position(circuit, circuit.control_inputs[0]), true);
        }
        SwitchClass::Mux { .. } => {
            for &net in &circuit.control_inputs {
                set(pi_position(circuit, net), false);
            }
        }
        SwitchClass::BanyanBinary | SwitchClass::BatcherSorting => {}
    }
}

/// The per-measurement stimulus layout: resolved primary-input positions of
/// the per-cycle nets, plus the class and occupancy that fix the net-major
/// draw order.
///
/// One cycle of stimulus ([`StimulusLayout::drive`]) consumes the shared
/// [`StimulusRng`] in a fixed net-major order — routing control first, then
/// `bus_width` payload words per active port, bit positions low-to-high.
/// Every drawn `u64` feeds one input net across all 64 lanes (bit `L` is
/// lane `L`'s value); idle ports' nets are held at zero and consume no
/// draws.
///
/// * binary switch: one draw — per lane, straight (0→0, 1→1) or crossed
///   (0→1, 1→0) configuration, never conflicting, a fresh header per packet;
/// * sorting switch: `address_bits` draws per active input port — a fresh
///   random destination address per lane and cycle (the compare-exchange
///   logic is exercised exactly once per packet).
///
/// Both engines drive through this one routine: the packed simulator writes
/// the words verbatim, the scalar engine (and the per-lane oracle) extracts
/// its lane's bit.  Identical RNG states thus yield identical vector
/// streams — and identical toggle counts — across engines.
struct StimulusLayout {
    class: SwitchClass,
    active_ports: usize,
    /// Primary-input positions of the routing-control nets.
    control_positions: Vec<usize>,
    /// Per active port: primary-input positions of its payload bus.
    data_positions: Vec<Vec<usize>>,
}

impl StimulusLayout {
    fn new(circuit: &SwitchCircuit, active_ports: usize) -> Self {
        Self {
            class: circuit.class,
            active_ports,
            control_positions: circuit
                .control_inputs
                .iter()
                .map(|&net| pi_position(circuit, net))
                .collect(),
            data_positions: circuit
                .data_inputs
                .iter()
                .take(active_ports)
                .map(|bus| bus.iter().map(|&net| pi_position(circuit, net)).collect())
                .collect(),
        }
    }

    /// Draws one bus cycle of net-major stimulus through
    /// `set(primary-input position, 64-lane word)`.
    fn drive(&self, rng: &mut StimulusRng, set: &mut impl FnMut(usize, u64)) {
        match self.class {
            SwitchClass::BanyanBinary => {
                let crossed = rng.next_u64();
                set(self.control_positions[0], crossed);
                set(self.control_positions[1], !crossed);
            }
            SwitchClass::BatcherSorting => {
                let address_bits = self.control_positions.len() / 2;
                for port in 0..2 {
                    for bit in 0..address_bits {
                        let word = if port < self.active_ports {
                            rng.next_u64()
                        } else {
                            0
                        };
                        set(self.control_positions[port * address_bits + bit], word);
                    }
                }
            }
            SwitchClass::CrossbarCrosspoint | SwitchClass::Mux { .. } => {}
        }
        for positions in &self.data_positions {
            for &pos in positions {
                set(pos, rng.next_u64());
            }
        }
    }
}

/// The result of characterizing the full standard switch set at one bus width
/// (the programmatic equivalent of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Crossbar crosspoint LUT.
    pub crosspoint: SwitchEnergyLut,
    /// Banyan 2×2 binary switch LUT.
    pub banyan_binary: SwitchEnergyLut,
    /// Batcher 2×2 sorting switch LUT.
    pub batcher_sorting: SwitchEnergyLut,
    /// N-input MUX LUTs for N = 4, 8, 16, 32.
    pub muxes: Vec<SwitchEnergyLut>,
}

impl Table1 {
    /// Characterizes every switch of the paper's Table 1 with the generated
    /// circuits and the given cell library.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from circuit generation.
    pub fn characterize(
        bus_width: usize,
        address_bits: usize,
        library: &CellLibrary,
        config: &CharacterizationConfig,
    ) -> Result<Self, NetlistError> {
        Ok(Self {
            crosspoint: characterize_class(
                SwitchClass::CrossbarCrosspoint,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            banyan_binary: characterize_class(
                SwitchClass::BanyanBinary,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            batcher_sorting: characterize_class(
                SwitchClass::BatcherSorting,
                bus_width,
                address_bits,
                library,
                config,
            )?,
            muxes: [4, 8, 16, 32]
                .into_iter()
                .map(|inputs| {
                    characterize_class(
                        SwitchClass::Mux { inputs },
                        bus_width,
                        address_bits,
                        library,
                        config,
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// The paper's published Table 1 packaged in the same structure.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            crosspoint: SwitchEnergyLut::paper_crossbar_crosspoint(),
            banyan_binary: SwitchEnergyLut::paper_banyan_binary(),
            batcher_sorting: SwitchEnergyLut::paper_batcher_sorting(),
            muxes: vec![
                SwitchEnergyLut::paper_mux(4),
                SwitchEnergyLut::paper_mux(8),
                SwitchEnergyLut::paper_mux(16),
                SwitchEnergyLut::paper_mux(32),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CharacterizationConfig {
        CharacterizationConfig::quick()
    }

    #[test]
    fn crosspoint_characterization_orders_by_occupancy() {
        let circuit = crossbar_crosspoint(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(lut.ports(), 1);
        assert_eq!(lut.source(), LutSource::Characterized);
        // An active crosspoint costs far more than an idle one.
        assert!(lut.single_active() > lut.energy_for_active_count(0) * 5.0);
    }

    #[test]
    fn binary_switch_shows_economy_of_scale() {
        let circuit = banyan_binary_switch(16).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let one = lut.energy_for_active_count(1);
        let two = lut.energy_for_active_count(2);
        // Two packets cost more than one, but less than twice as much
        // (the paper's observation about input-state dependence).
        assert!(two > one);
        assert!(two < one * 2.0);
    }

    #[test]
    fn sorting_switch_costs_more_than_binary_switch_when_loaded() {
        let lib = CellLibrary::calibrated_018um();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        let sorting =
            characterize_class(SwitchClass::BatcherSorting, 16, 4, &lib, &quick()).unwrap();
        // Table 1's [1,1] ordering (2025 fJ > 1821 fJ): with both inputs busy
        // the compare-exchange and header-forwarding logic make the sorting
        // switch strictly costlier.
        assert!(
            sorting.energy_for_active_count(2) > binary.energy_for_active_count(2),
            "sorting {} !> binary {}",
            sorting.energy_for_active_count(2),
            binary.energy_for_active_count(2)
        );
        // With a single packet the two implementations are within the same
        // band (the paper's 1253 fJ vs 1080 fJ gap is ~16 %); we only require
        // that ours does not invert the relation by more than 25 %.
        assert!(sorting.single_active() > binary.single_active() * 0.75);
    }

    #[test]
    fn crosspoint_is_the_cheapest_switch() {
        let lib = CellLibrary::calibrated_018um();
        let crosspoint =
            characterize_class(SwitchClass::CrossbarCrosspoint, 16, 4, &lib, &quick()).unwrap();
        let binary = characterize_class(SwitchClass::BanyanBinary, 16, 4, &lib, &quick()).unwrap();
        assert!(crosspoint.single_active() < binary.single_active());
    }

    #[test]
    fn mux_energy_grows_with_input_count() {
        let lib = CellLibrary::calibrated_018um();
        let m4 = characterize_class(SwitchClass::Mux { inputs: 4 }, 8, 2, &lib, &quick())
            .unwrap()
            .energy_for_active_count(4);
        let m8 = characterize_class(SwitchClass::Mux { inputs: 8 }, 8, 3, &lib, &quick())
            .unwrap()
            .energy_for_active_count(8);
        assert!(m8 > m4, "{m8} !> {m4}");
    }

    #[test]
    fn packed_measurement_matches_scalar_per_lane_oracle_bit_exactly() {
        // lanes = 5 with measure_cycles = 17 exercises the remainder mask:
        // three full-mask steps plus one final step counting only lanes 0–1.
        // The packed engine runs the *optimized* schedule while the per-lane
        // oracle walks the raw netlist, so this doubles as the end-to-end
        // energy-exactness check for the pass pipeline.
        let config = CharacterizationConfig {
            warmup_cycles: 3,
            measure_cycles: 17,
            seed: 0xDAC_2002,
            lanes: 5,
            pipeline: PipelineMode::Optimized,
        };
        let lib = CellLibrary::calibrated_018um();
        let circuits = [
            crossbar_crosspoint(8).unwrap(),
            banyan_binary_switch(8).unwrap(),
            batcher_sorting_switch(4, 3).unwrap(),
            n_input_mux(4, 4).unwrap(),
        ];
        for circuit in &circuits {
            let optimized = PassPipeline::standard().run(&circuit.netlist).unwrap();
            // One reused simulator across occupancies, exactly like
            // `characterize_switch`.  Measurements warm-start, so the
            // per-lane oracle simulators are carried across occupancies too
            // (lane `L` of the packed run reads bit `L` of the same shared
            // net-major draws through the same ascending occupancy
            // sequence).
            let mut packed_sim =
                PackedSimulator::with_passes(&circuit.netlist, &optimized, &lib, config.lanes)
                    .unwrap();
            let mut oracle_sims: Vec<Simulator<'_>> = (0..config.lanes)
                .map(|_| Simulator::new(&circuit.netlist, &lib).unwrap())
                .collect();
            for active in 0..=circuit.ports {
                let packed = measure_packed(circuit, &mut packed_sim, &config, active);

                let tables = Simulator::new(&circuit.netlist, &lib)
                    .unwrap()
                    .energy_tables()
                    .clone();
                // The oracle lanes run in lockstep, consuming the one shared
                // draw sequence: each cycle's words are drawn once and lane
                // `L` applies bit `L` of every word.
                let mut rng = StimulusRng::seed_from_u64(config.seed ^ active as u64);
                let layout = StimulusLayout::new(circuit, active);
                let mut vectors: Vec<Vec<bool>> = oracle_sims
                    .iter()
                    .map(|_| {
                        let mut vector = circuit.blank_input_vector();
                        write_static_inputs(circuit, active, &mut |pos, v| vector[pos] = v);
                        vector
                    })
                    .collect();
                let mut drives: Vec<(usize, u64)> = Vec::new();
                let cycle = |rng: &mut StimulusRng,
                             sims: &mut [Simulator<'_>],
                             vectors: &mut [Vec<bool>],
                             drives: &mut Vec<(usize, u64)>| {
                    drives.clear();
                    layout.drive(rng, &mut |pos, word| drives.push((pos, word)));
                    for (lane, (sim, vector)) in sims.iter_mut().zip(vectors).enumerate() {
                        for &(pos, word) in drives.iter() {
                            vector[pos] = (word >> lane) & 1 == 1;
                        }
                        sim.step(vector);
                    }
                };
                for _ in 0..config.warmup_cycles {
                    cycle(&mut rng, &mut oracle_sims, &mut vectors, &mut drives);
                }
                for sim in &mut oracle_sims {
                    sim.reset_counters();
                }
                let full_steps = config.measure_cycles / u64::from(config.lanes);
                let remainder = config.measure_cycles % u64::from(config.lanes);
                for _ in 0..full_steps {
                    cycle(&mut rng, &mut oracle_sims, &mut vectors, &mut drives);
                }
                let mut summed = vec![0_u64; circuit.netlist.net_count()];
                let mut total_cycles = 0_u64;
                let collect = |sim: &Simulator<'_>, summed: &mut [u64]| {
                    for (acc, &count) in summed.iter_mut().zip(sim.net_toggle_counts()) {
                        *acc += count;
                    }
                };
                if remainder > 0 {
                    // The packed engine's remainder step advances masked
                    // lanes too (uncounted); collect their counts first,
                    // then step everyone for state carry into the next
                    // occupancy.
                    for (lane, sim) in oracle_sims.iter().enumerate() {
                        if lane as u64 >= remainder {
                            collect(sim, &mut summed);
                            total_cycles += full_steps;
                        }
                    }
                    cycle(&mut rng, &mut oracle_sims, &mut vectors, &mut drives);
                    for (lane, sim) in oracle_sims.iter().enumerate() {
                        if (lane as u64) < remainder {
                            collect(sim, &mut summed);
                            total_cycles += full_steps + 1;
                        }
                    }
                } else {
                    for sim in &oracle_sims {
                        collect(sim, &mut summed);
                        total_cycles += full_steps;
                    }
                }
                assert_eq!(total_cycles, config.measure_cycles);
                let oracle = tables.report_from_counts(&summed, total_cycles);
                assert_eq!(
                    packed, oracle,
                    "packed vs scalar-oracle mismatch for {} with {active} active port(s)",
                    circuit.class
                );
            }
        }
    }

    #[test]
    fn single_lane_config_reproduces_the_scalar_engine() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let config = quick().with_lanes(1);
        let optimized = PassPipeline::standard().run(&circuit.netlist).unwrap();
        let mut dispatch_sim = OccupancySim::Scalar(
            Simulator::with_passes(&circuit.netlist, &optimized, &lib).unwrap(),
        );
        let mut scalar_sim = Simulator::with_passes(&circuit.netlist, &optimized, &lib).unwrap();
        for active in 0..=circuit.ports {
            let via_dispatch = measure_occupancy(&circuit, &mut dispatch_sim, &config, active);
            let scalar = measure_scalar(&circuit, &mut scalar_sim, &config, active);
            let bit_slots = config.measure_cycles as f64 * circuit.bus_width as f64;
            assert_eq!(via_dispatch, scalar.total_energy() / bit_slots);
        }
    }

    #[test]
    fn raw_and_optimized_pipelines_produce_identical_luts() {
        let lib = CellLibrary::calibrated_018um();
        // Packed engine (64 lanes) and scalar engine (1 lane), both across
        // every occupancy state: the LUT floats must agree to the last bit.
        for config in [quick(), quick().with_lanes(1)] {
            let circuit = banyan_binary_switch(8).unwrap();
            let raw = characterize_switch(&circuit, &lib, &config.with_pipeline(PipelineMode::Raw))
                .unwrap();
            let optimized = characterize_switch(
                &circuit,
                &lib,
                &config.with_pipeline(PipelineMode::Optimized),
            )
            .unwrap();
            assert_eq!(raw, optimized);
        }
    }

    #[test]
    fn characterization_is_deterministic_for_a_fixed_seed() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let a = characterize_switch(&circuit, &lib, &quick()).unwrap();
        let b = characterize_switch(&circuit, &lib, &quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn characterized_energies_are_in_the_paper_order_of_magnitude() {
        let lib = CellLibrary::calibrated_018um();
        let lut = characterize_class(SwitchClass::BanyanBinary, 32, 5, &lib, &quick()).unwrap();
        let fj = lut.single_active().as_femtojoules();
        // Paper: 1080 fJ. Accept a generous band — the point is the scale.
        assert!(
            fj > 100.0,
            "binary switch energy {fj} fJ is implausibly low"
        );
        assert!(
            fj < 10_000.0,
            "binary switch energy {fj} fJ is implausibly high"
        );
    }

    #[test]
    fn paper_table1_structure_is_complete() {
        let table = Table1::paper();
        assert_eq!(table.muxes.len(), 4);
        assert!(table.batcher_sorting.single_active() > table.banyan_binary.single_active());
    }
}
