//! The 2×2 sorting (compare-exchange) switch used in Batcher sorting
//! networks (paper §4.4).
//!
//! A Batcher sorting element compares the destination addresses of the two
//! incoming packets and exchanges them if they are out of order, so that the
//! following Banyan network receives a contention-free permutation.  Compared
//! with the plain binary switch it adds a full magnitude comparator over the
//! destination addresses, which is why its characterized bit energy is higher
//! (paper Table 1: 1253 fJ vs 1080 fJ for one active input).

use crate::cells::CellKind;
use crate::netlist::{NetId, Netlist, NetlistError};

use super::build::{input_bus, mux_bus, net_bus, register_bus};
use super::{SwitchCircuit, SwitchClass};

/// Builds a 2×2 Batcher sorting switch.
///
/// * `bus_width` — payload bus width in bits;
/// * `address_bits` — width of the destination address that is compared.
///
/// Interface:
/// * 2 data input buses, 2 presence flags;
/// * `2 × address_bits` control inputs: the destination address of the packet
///   on port 0 followed by the address on port 1 (LSB first);
/// * 2 data output buses (output 0 carries the smaller address after sorting).
///
/// # Errors
///
/// Returns a [`NetlistError`] only if the internal construction is
/// inconsistent, which would indicate a bug in this generator.
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::circuits::batcher_sorting_switch;
///
/// let circuit = batcher_sorting_switch(32, 6)?;
/// assert_eq!(circuit.control_inputs.len(), 12);
/// circuit.validate()?;
/// # Ok::<(), fabric_power_netlist::netlist::NetlistError>(())
/// ```
pub fn batcher_sorting_switch(
    bus_width: usize,
    address_bits: usize,
) -> Result<SwitchCircuit, NetlistError> {
    assert!(
        address_bits > 0,
        "a sorting switch needs at least one address bit"
    );
    let mut netlist = Netlist::new(format!("batcher_sorting_{bus_width}b_{address_bits}a"));

    // --- interface ---------------------------------------------------------
    let data_in0 = input_bus(&mut netlist, "din0", bus_width);
    let data_in1 = input_bus(&mut netlist, "din1", bus_width);
    let present0 = netlist.add_input("present0");
    let present1 = netlist.add_input("present1");
    let addr0 = input_bus(&mut netlist, "addr0", address_bits);
    let addr1 = input_bus(&mut netlist, "addr1", address_bits);

    // --- input registers -----------------------------------------------------
    let reg_in0 = register_bus(&mut netlist, "inreg0", &data_in0)?;
    let reg_in1 = register_bus(&mut netlist, "inreg1", &data_in1)?;

    // --- magnitude comparator: swap = (addr0 > addr1) -----------------------
    let swap_raw = build_greater_than(&mut netlist, &addr0, &addr1)?;

    // Only swap when both packets are present; an idle port must not steal the
    // other packet's slot (an absent packet sorts as "infinitely large").
    let both_present = netlist.add_net("both_present");
    netlist.add_cell(
        "u_both",
        CellKind::And2,
        &[present0, present1],
        both_present,
    )?;
    // If only port 1 has a packet it must exit on output 0 (packets are
    // compacted towards the low output), which is also a "swap".
    let npresent0 = netlist.add_net("npresent0");
    netlist.add_cell("u_np0", CellKind::Inv, &[present0], npresent0)?;
    let only_port1 = netlist.add_net("only_port1");
    netlist.add_cell(
        "u_only1",
        CellKind::And2,
        &[present1, npresent0],
        only_port1,
    )?;
    let swap_if_both = netlist.add_net("swap_if_both");
    netlist.add_cell(
        "u_swapboth",
        CellKind::And2,
        &[swap_raw, both_present],
        swap_if_both,
    )?;
    let swap = netlist.add_net("swap");
    netlist.add_cell("u_swap", CellKind::Or2, &[swap_if_both, only_port1], swap)?;

    // --- exchange stage ------------------------------------------------------
    // Output 0 takes port1 when swapping, output 1 takes port0 when swapping.
    let mux_out0 = mux_bus(&mut netlist, "ex0", &reg_in0, &reg_in1, swap)?;
    let mux_out1 = mux_bus(&mut netlist, "ex1", &reg_in1, &reg_in0, swap)?;

    // Gate idle outputs so they do not toggle when no packet leaves there.
    let any_present = netlist.add_net("any_present");
    netlist.add_cell("u_any", CellKind::Or2, &[present0, present1], any_present)?;
    let gated_out0 = gate_bus(&mut netlist, "gate0", &mux_out0, any_present)?;
    let gated_out1 = gate_bus(&mut netlist, "gate1", &mux_out1, both_present)?;

    // --- header forwarding ---------------------------------------------------
    // A Batcher element forwards the destination address along with the
    // payload so that later sorting stages (and the final Banyan stage) can
    // keep comparing it; the header follows the same exchange decision.
    let addr_out0_mux = mux_bus(&mut netlist, "hdr_ex0", &addr0, &addr1, swap)?;
    let addr_out1_mux = mux_bus(&mut netlist, "hdr_ex1", &addr1, &addr0, swap)?;
    let addr_out0 = register_bus(&mut netlist, "hdrreg0", &addr_out0_mux)?;
    let addr_out1 = register_bus(&mut netlist, "hdrreg1", &addr_out1_mux)?;
    for &net in addr_out0.iter().chain(&addr_out1) {
        netlist.mark_output(net)?;
    }

    // --- output registers ----------------------------------------------------
    let data_out0 = register_bus(&mut netlist, "outreg0", &gated_out0)?;
    let data_out1 = register_bus(&mut netlist, "outreg1", &gated_out1)?;
    for &net in data_out0.iter().chain(&data_out1) {
        netlist.mark_output(net)?;
    }

    let mut control_inputs = addr0;
    control_inputs.extend(addr1);

    #[cfg(debug_assertions)]
    netlist.validate_strict()?;

    Ok(SwitchCircuit {
        netlist,
        class: SwitchClass::BatcherSorting,
        ports: 2,
        bus_width,
        data_inputs: vec![data_in0, data_in1],
        presence_inputs: vec![present0, present1],
        control_inputs,
        data_outputs: vec![data_out0, data_out1],
    })
}

/// Builds an unsigned magnitude comparator returning a net that is high when
/// `a > b`. Both operands are LSB-first.
fn build_greater_than(
    netlist: &mut Netlist,
    a: &[NetId],
    b: &[NetId],
) -> Result<NetId, NetlistError> {
    assert_eq!(a.len(), b.len());
    let width = a.len();
    // Per-bit equality and "a wins at this bit".
    let eq = net_bus(netlist, "cmp_eq", width);
    let gt = net_bus(netlist, "cmp_gt", width);
    for i in 0..width {
        netlist.add_cell(format!("u_eq[{i}]"), CellKind::Xnor2, &[a[i], b[i]], eq[i])?;
        let nb = netlist.add_net(format!("cmp_nb[{i}]"));
        netlist.add_cell(format!("u_nb[{i}]"), CellKind::Inv, &[b[i]], nb)?;
        netlist.add_cell(format!("u_gt[{i}]"), CellKind::And2, &[a[i], nb], gt[i])?;
    }
    // Ripple from the LSB up: after bit i, greater = gt[i] | (eq[i] & greater_below).
    // The final value after the MSB gives higher bits priority, as required.
    let mut greater = gt[0];
    for i in 1..width {
        let lower_and_eq = netlist.add_net(format!("cmp_carry[{i}]"));
        netlist.add_cell(
            format!("u_carry[{i}]"),
            CellKind::And2,
            &[eq[i], greater],
            lower_and_eq,
        )?;
        let next = netlist.add_net(format!("cmp_greater[{i}]"));
        netlist.add_cell(
            format!("u_greater[{i}]"),
            CellKind::Or2,
            &[gt[i], lower_and_eq],
            next,
        )?;
        greater = next;
    }
    Ok(greater)
}

/// AND-gates every bit of `data` with `enable`.
fn gate_bus(
    netlist: &mut Netlist,
    prefix: &str,
    data: &[NetId],
    enable: NetId,
) -> Result<Vec<NetId>, NetlistError> {
    let out = net_bus(netlist, &format!("{prefix}_g"), data.len());
    for (i, (&d, &o)) in data.iter().zip(&out).enumerate() {
        netlist.add_cell(
            format!("{prefix}_and[{i}]"),
            CellKind::And2,
            &[d, enable],
            o,
        )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::sim::Simulator;

    fn read_bus(sim: &Simulator<'_>, bus: &[NetId]) -> u64 {
        bus.iter()
            .enumerate()
            .map(|(i, &n)| if sim.net_value(n) { 1 << i } else { 0 })
            .sum()
    }

    fn drive(
        circuit: &SwitchCircuit,
        addr_bits: usize,
        present: [bool; 2],
        addr: [u64; 2],
        data: [u64; 2],
    ) -> Vec<bool> {
        let mut vector = circuit.blank_input_vector();
        for port in 0..2 {
            circuit.set_input(&mut vector, circuit.presence_inputs[port], present[port]);
            circuit.set_bus(&mut vector, port, data[port]);
            for bit in 0..addr_bits {
                let net = circuit.control_inputs[port * addr_bits + bit];
                circuit.set_input(&mut vector, net, (addr[port] >> bit) & 1 == 1);
            }
        }
        vector
    }

    #[test]
    fn in_order_packets_pass_straight_through() {
        let circuit = batcher_sorting_switch(8, 4).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
        let v = drive(&circuit, 4, [true, true], [2, 9], [0x21, 0x43]);
        sim.step(&v);
        sim.step(&v);
        sim.step(&v);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x21);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0x43);
    }

    #[test]
    fn out_of_order_packets_are_exchanged() {
        let circuit = batcher_sorting_switch(8, 4).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
        let v = drive(&circuit, 4, [true, true], [11, 3], [0xAA, 0x55]);
        sim.step(&v);
        sim.step(&v);
        sim.step(&v);
        // Port 0 carried the larger address, so its payload leaves on output 1.
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x55);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0xAA);
    }

    #[test]
    fn lone_packet_on_port1_is_compacted_to_output0() {
        let circuit = batcher_sorting_switch(8, 4).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
        let v = drive(&circuit, 4, [false, true], [0, 6], [0x00, 0x3C]);
        sim.step(&v);
        sim.step(&v);
        sim.step(&v);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x3C);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0x00);
    }

    #[test]
    fn equal_addresses_do_not_swap() {
        let circuit = batcher_sorting_switch(8, 4).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
        let v = drive(&circuit, 4, [true, true], [5, 5], [0x01, 0x02]);
        sim.step(&v);
        sim.step(&v);
        sim.step(&v);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x01);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0x02);
    }

    #[test]
    fn sorting_switch_has_more_cells_than_binary_switch() {
        let sorting = batcher_sorting_switch(32, 6).unwrap().cell_count();
        let binary = super::super::banyan_binary_switch(32).unwrap().cell_count();
        assert!(sorting > binary, "{sorting} !> {binary}");
    }
}
