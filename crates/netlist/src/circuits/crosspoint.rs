//! Crossbar crosspoint switch (paper §4.1).
//!
//! The node switch at a crossbar crosspoint is "a simple CMOS pass gate, or a
//! tri-state CMOS buffer" — by far the simplest of the four node switches.
//! We model it as a bus-wide array of tri-state buffers whose enable is the
//! AND of the packet-presence flag and a stored configuration bit (set by the
//! arbiter when the crosspoint is part of the selected input/output path).

use crate::cells::CellKind;
use crate::netlist::{Netlist, NetlistError};

use super::build::{input_bus, net_bus};
use super::{SwitchCircuit, SwitchClass};

/// Builds a crossbar crosspoint switch for a `bus_width`-bit payload bus.
///
/// Interface:
/// * 1 data input bus, 1 presence flag;
/// * 1 control input: the crosspoint configuration bit (driven by the arbiter);
/// * 1 data output bus.
///
/// # Errors
///
/// Returns a [`NetlistError`] only if the internal construction is
/// inconsistent, which would indicate a bug in this generator.
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::circuits::crossbar_crosspoint;
///
/// let circuit = crossbar_crosspoint(32)?;
/// assert_eq!(circuit.ports, 1);
/// assert_eq!(circuit.bus_width, 32);
/// circuit.validate()?;
/// # Ok::<(), fabric_power_netlist::netlist::NetlistError>(())
/// ```
pub fn crossbar_crosspoint(bus_width: usize) -> Result<SwitchCircuit, NetlistError> {
    let mut netlist = Netlist::new(format!("crosspoint_{bus_width}b"));

    let data_in = input_bus(&mut netlist, "din", bus_width);
    let presence = netlist.add_input("present");
    let config = netlist.add_input("config");

    // The crosspoint drives the column bus only when the arbiter configured it
    // and a packet is actually flowing.
    let enable = netlist.add_net("enable");
    netlist.add_cell("u_enable", CellKind::And2, &[presence, config], enable)?;

    // One small buffer per data bit isolates the row bus from the pass gate,
    // then a pass gate drives the column bus.
    let buffered = net_bus(&mut netlist, "buf", bus_width);
    let data_out = net_bus(&mut netlist, "dout", bus_width);
    for bit in 0..bus_width {
        netlist.add_cell(
            format!("u_inbuf[{bit}]"),
            CellKind::Buf,
            &[data_in[bit]],
            buffered[bit],
        )?;
        netlist.add_cell(
            format!("u_pass[{bit}]"),
            CellKind::PassGate,
            &[buffered[bit], enable],
            data_out[bit],
        )?;
        netlist.mark_output(data_out[bit])?;
    }

    #[cfg(debug_assertions)]
    netlist.validate_strict()?;

    Ok(SwitchCircuit {
        netlist,
        class: SwitchClass::CrossbarCrosspoint,
        ports: 1,
        bus_width,
        data_inputs: vec![data_in],
        presence_inputs: vec![presence],
        control_inputs: vec![config],
        data_outputs: vec![data_out],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::sim::Simulator;

    #[test]
    fn crosspoint_passes_data_when_enabled() {
        let circuit = crossbar_crosspoint(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();

        let mut vector = circuit.blank_input_vector();
        circuit.set_input(&mut vector, circuit.presence_inputs[0], true);
        circuit.set_input(&mut vector, circuit.control_inputs[0], true);
        circuit.set_bus(&mut vector, 0, 0xA5);
        sim.step(&vector);

        let out: Vec<bool> = circuit.data_outputs[0]
            .iter()
            .map(|&n| sim.net_value(n))
            .collect();
        let word: u64 = out
            .iter()
            .enumerate()
            .map(|(i, &b)| if b { 1 << i } else { 0 })
            .sum();
        assert_eq!(word, 0xA5);
    }

    #[test]
    fn crosspoint_holds_output_when_disabled() {
        let circuit = crossbar_crosspoint(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();

        // Enabled with a known word.
        let mut vector = circuit.blank_input_vector();
        circuit.set_input(&mut vector, circuit.presence_inputs[0], true);
        circuit.set_input(&mut vector, circuit.control_inputs[0], true);
        circuit.set_bus(&mut vector, 0, 0xFF);
        sim.step(&vector);

        // Disabled with different data: output must not follow.
        let mut vector = circuit.blank_input_vector();
        circuit.set_bus(&mut vector, 0, 0x00);
        sim.step(&vector);
        let held = circuit.data_outputs[0].iter().all(|&n| sim.net_value(n));
        assert!(held, "disabled crosspoint must hold the column bus value");
    }

    #[test]
    fn crosspoint_cell_count_scales_with_bus_width() {
        let small = crossbar_crosspoint(8).unwrap().cell_count();
        let large = crossbar_crosspoint(32).unwrap().cell_count();
        assert!(large > small);
        // 2 cells per bit + 1 enable gate.
        assert_eq!(large, 2 * 32 + 1);
    }
}
