//! The N-input multiplexer used by the fully-connected fabric (paper §4.2).
//!
//! Each egress port of a fully-connected network owns one N-input MUX that
//! aggregates every ingress bus; the arbiter drives the select lines.  Every
//! ingress bus toggles the first multiplexer level whether or not it is the
//! selected one, which is why the characterized bit energy grows with N
//! (paper Table 1: 431 fJ at N = 4 up to 2515 fJ at N = 32).

use crate::cells::CellKind;
use crate::netlist::{NetId, Netlist, NetlistError};

use super::build::{input_bus, net_bus, register_bus};
use super::{SwitchCircuit, SwitchClass};

/// Builds an `inputs`-input multiplexer over a `bus_width`-bit payload bus.
///
/// `inputs` must be a power of two and at least 2 (the select lines encode a
/// binary port index).
///
/// Interface:
/// * `inputs` data input buses, `inputs` presence flags (presence is not used
///   by the datapath — an idle ingress bus simply stays static);
/// * `log2(inputs)` control inputs: the binary select lines;
/// * 1 data output bus.
///
/// # Errors
///
/// Returns a [`NetlistError`] only if the internal construction is
/// inconsistent, which would indicate a bug in this generator.
///
/// # Panics
///
/// Panics if `inputs` is not a power of two or is smaller than 2.
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::circuits::n_input_mux;
///
/// let circuit = n_input_mux(8, 32)?;
/// assert_eq!(circuit.ports, 8);
/// assert_eq!(circuit.control_inputs.len(), 3);
/// # Ok::<(), fabric_power_netlist::netlist::NetlistError>(())
/// ```
pub fn n_input_mux(inputs: usize, bus_width: usize) -> Result<SwitchCircuit, NetlistError> {
    assert!(
        inputs >= 2 && inputs.is_power_of_two(),
        "the N-input MUX requires a power-of-two input count >= 2, got {inputs}"
    );
    let select_bits = inputs.trailing_zeros() as usize;
    let mut netlist = Netlist::new(format!("mux{inputs}_{bus_width}b"));

    let data_inputs: Vec<Vec<NetId>> = (0..inputs)
        .map(|p| input_bus(&mut netlist, &format!("din{p}"), bus_width))
        .collect();
    let presence_inputs: Vec<NetId> = (0..inputs)
        .map(|p| netlist.add_input(format!("present{p}")))
        .collect();
    let select: Vec<NetId> = (0..select_bits)
        .map(|b| netlist.add_input(format!("sel[{b}]")))
        .collect();

    // Binary multiplexer tree, one per payload bit. Level `l` consumes pairs
    // of the previous level and is steered by select bit `l`.
    let mut current: Vec<Vec<NetId>> = data_inputs.clone();
    for (level, &sel) in select.iter().enumerate() {
        let half = current.len() / 2;
        let mut next: Vec<Vec<NetId>> = Vec::with_capacity(half);
        for pair in 0..half {
            let a = &current[2 * pair];
            let b = &current[2 * pair + 1];
            let y = net_bus(&mut netlist, &format!("l{level}_p{pair}"), bus_width);
            for bit in 0..bus_width {
                netlist.add_cell(
                    format!("u_mux_l{level}_p{pair}[{bit}]"),
                    CellKind::Mux2,
                    &[a[bit], b[bit], sel],
                    y[bit],
                )?;
            }
            next.push(y);
        }
        current = next;
    }
    debug_assert_eq!(current.len(), 1);

    // Registered output stage.
    let data_out = register_bus(&mut netlist, "outreg", &current[0])?;
    for &net in &data_out {
        netlist.mark_output(net)?;
    }

    #[cfg(debug_assertions)]
    netlist.validate_strict()?;

    Ok(SwitchCircuit {
        netlist,
        class: SwitchClass::Mux { inputs },
        ports: inputs,
        bus_width,
        data_inputs,
        presence_inputs,
        control_inputs: select,
        data_outputs: vec![data_out],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::sim::Simulator;

    fn read_bus(sim: &Simulator<'_>, bus: &[NetId]) -> u64 {
        bus.iter()
            .enumerate()
            .map(|(i, &n)| if sim.net_value(n) { 1 << i } else { 0 })
            .sum()
    }

    #[test]
    fn mux_selects_the_addressed_input() {
        let circuit = n_input_mux(4, 8).unwrap();
        let lib = CellLibrary::calibrated_018um();

        for selected in 0..4_usize {
            let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
            let mut vector = circuit.blank_input_vector();
            for port in 0..4 {
                circuit.set_bus(&mut vector, port, 0x10 + port as u64);
            }
            for (bit, &net) in circuit.control_inputs.iter().enumerate() {
                circuit.set_input(&mut vector, net, (selected >> bit) & 1 == 1);
            }
            sim.step(&vector);
            sim.step(&vector);
            assert_eq!(
                read_bus(&sim, &circuit.data_outputs[0]),
                0x10 + selected as u64,
                "select={selected}"
            );
        }
    }

    #[test]
    fn select_lines_count_is_log2_of_inputs() {
        assert_eq!(n_input_mux(4, 8).unwrap().control_inputs.len(), 2);
        assert_eq!(n_input_mux(16, 8).unwrap().control_inputs.len(), 4);
        assert_eq!(n_input_mux(32, 8).unwrap().control_inputs.len(), 5);
    }

    #[test]
    fn mux_cell_count_grows_roughly_linearly_with_inputs() {
        let m4 = n_input_mux(4, 32).unwrap().cell_count() as f64;
        let m8 = n_input_mux(8, 32).unwrap().cell_count() as f64;
        let m16 = n_input_mux(16, 32).unwrap().cell_count() as f64;
        assert!(m8 / m4 > 1.5);
        assert!(m16 / m8 > 1.5);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_inputs_panic() {
        let _ = n_input_mux(6, 8);
    }
}
