//! Structural generators for the node-switch circuits characterized in the
//! paper's Table 1.
//!
//! Each generator builds a complete gate-level [`Netlist`] together with a
//! [`SwitchCircuit`] wrapper that records which primary inputs carry packet
//! data, packet-presence flags and routing control, and which nets are the
//! data outputs.  The [`crate::characterize`] module drives these circuits
//! with random payload streams to extract per-bit energy look-up tables.

mod binary_switch;
mod crosspoint;
mod mux;
mod sorting_switch;

pub use binary_switch::banyan_binary_switch;
pub use crosspoint::crossbar_crosspoint;
pub use mux::n_input_mux;
pub use sorting_switch::batcher_sorting_switch;

use serde::{Deserialize, Serialize};

use crate::netlist::{NetId, Netlist, NetlistError};

/// Which of the paper's node-switch circuits a [`SwitchCircuit`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchClass {
    /// Crossbar crosspoint: a bus-wide tri-state/pass-gate connection
    /// (paper Table 1 row "Crossbar 1×1").
    CrossbarCrosspoint,
    /// The 2×2 self-routing binary switch used in Banyan networks.
    BanyanBinary,
    /// The 2×2 sorting (compare-exchange) switch used in Batcher networks.
    BatcherSorting,
    /// An N-input multiplexer aggregating all inputs onto one output, as used
    /// by the fully-connected fabric.
    Mux {
        /// Number of multiplexer inputs.
        inputs: usize,
    },
}

impl std::fmt::Display for SwitchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CrossbarCrosspoint => write!(f, "crossbar crosspoint"),
            Self::BanyanBinary => write!(f, "Banyan 2x2 binary switch"),
            Self::BatcherSorting => write!(f, "Batcher 2x2 sorting switch"),
            Self::Mux { inputs } => write!(f, "{inputs}-input MUX"),
        }
    }
}

/// A generated node-switch circuit plus its interface bookkeeping.
///
/// Field conventions:
///
/// * `data_inputs[p][b]` — bit `b` of the payload bus entering port `p`;
/// * `presence_inputs[p]` — "a packet is present on port `p`" flag;
/// * `control_inputs` — routing control (destination bits, sort keys or MUX
///   select lines), circuit-specific;
/// * `data_outputs[q][b]` — bit `b` of the payload bus leaving output `q`.
#[derive(Debug, Clone)]
pub struct SwitchCircuit {
    /// The generated gate-level netlist.
    pub netlist: Netlist,
    /// Which switch this circuit implements.
    pub class: SwitchClass,
    /// Number of input ports.
    pub ports: usize,
    /// Payload bus width in bits.
    pub bus_width: usize,
    /// Payload data input nets, `[port][bit]`.
    pub data_inputs: Vec<Vec<NetId>>,
    /// Packet-presence flags, one per port.
    pub presence_inputs: Vec<NetId>,
    /// Routing-control input nets (meaning depends on the circuit).
    pub control_inputs: Vec<NetId>,
    /// Payload data output nets, `[output port][bit]`.
    pub data_outputs: Vec<Vec<NetId>>,
}

impl SwitchCircuit {
    /// Validates the embedded netlist (structure and acyclicity).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from [`Netlist::validate`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.netlist.validate().map(|_| ())
    }

    /// Total number of standard-cell instances in the circuit.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.netlist.cell_count()
    }

    /// Builds a primary-input vector of the right length, all `false`.
    #[must_use]
    pub fn blank_input_vector(&self) -> Vec<bool> {
        vec![false; self.netlist.primary_inputs().len()]
    }

    /// Sets the value of a specific input net inside a primary-input vector.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input of this circuit — that would be
    /// a bug in a circuit generator, not a user error.
    pub fn set_input(&self, vector: &mut [bool], net: NetId, value: bool) {
        let position = self
            .netlist
            .primary_input_position(net)
            .expect("switch circuit interface net must be a primary input");
        vector[position] = value;
    }

    /// Sets an entire data bus from the low bits of `word`.
    pub fn set_bus(&self, vector: &mut [bool], port: usize, word: u64) {
        for (bit, &net) in self.data_inputs[port].iter().enumerate() {
            self.set_input(vector, net, (word >> bit) & 1 == 1);
        }
    }
}

/// Helpers shared by the concrete generators.
pub(crate) mod build {
    use super::{NetId, Netlist, NetlistError};
    use crate::cells::CellKind;

    /// Adds a bus of `width` primary inputs named `prefix[i]`.
    pub(crate) fn input_bus(netlist: &mut Netlist, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| netlist.add_input(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Adds a bus of `width` internal nets named `prefix[i]`.
    pub(crate) fn net_bus(netlist: &mut Netlist, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| netlist.add_net(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Adds a register (DFF) stage over a whole bus and returns the Q bus.
    pub(crate) fn register_bus(
        netlist: &mut Netlist,
        prefix: &str,
        data: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        let q = net_bus(netlist, &format!("{prefix}_q"), data.len());
        for (i, (&d, &qn)) in data.iter().zip(&q).enumerate() {
            netlist.add_cell(format!("{prefix}_ff[{i}]"), CellKind::Dff, &[d], qn)?;
        }
        Ok(q)
    }

    /// Adds a bus-wide 2:1 mux selecting between `a` and `b` with `select`.
    pub(crate) fn mux_bus(
        netlist: &mut Netlist,
        prefix: &str,
        a: &[NetId],
        b: &[NetId],
        select: NetId,
    ) -> Result<Vec<NetId>, NetlistError> {
        assert_eq!(a.len(), b.len(), "mux bus operands must have equal widths");
        let y = net_bus(netlist, &format!("{prefix}_y"), a.len());
        for i in 0..a.len() {
            netlist.add_cell(
                format!("{prefix}_mux[{i}]"),
                CellKind::Mux2,
                &[a[i], b[i], select],
                y[i],
            )?;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_class_display() {
        assert_eq!(
            SwitchClass::CrossbarCrosspoint.to_string(),
            "crossbar crosspoint"
        );
        assert_eq!(SwitchClass::Mux { inputs: 8 }.to_string(), "8-input MUX");
    }

    #[test]
    fn all_generators_produce_valid_netlists() {
        let circuits = [
            crossbar_crosspoint(8).unwrap(),
            banyan_binary_switch(8).unwrap(),
            batcher_sorting_switch(8, 4).unwrap(),
            n_input_mux(4, 8).unwrap(),
        ];
        for circuit in circuits {
            circuit.validate().expect("generated netlist must validate");
            assert!(circuit.cell_count() > 0);
            assert_eq!(circuit.data_inputs.len(), circuit.ports);
            assert_eq!(circuit.presence_inputs.len(), circuit.ports);
            for bus in &circuit.data_inputs {
                assert_eq!(bus.len(), circuit.bus_width);
            }
            for bus in &circuit.data_outputs {
                assert_eq!(bus.len(), circuit.bus_width);
            }
        }
    }

    #[test]
    fn set_bus_writes_low_bits() {
        let circuit = crossbar_crosspoint(8).unwrap();
        let mut vector = circuit.blank_input_vector();
        circuit.set_bus(&mut vector, 0, 0b1010_1010);
        let ones = vector.iter().filter(|&&b| b).count();
        assert_eq!(ones, 4);
    }

    #[test]
    fn gate_complexity_ordering_matches_paper_intuition() {
        // The sorting switch must be more complex than the binary switch,
        // which is more complex than a crosspoint (paper §4.3).
        let crosspoint = crossbar_crosspoint(32).unwrap().cell_count();
        let binary = banyan_binary_switch(32).unwrap().cell_count();
        let sorting = batcher_sorting_switch(32, 6).unwrap().cell_count();
        assert!(crosspoint < binary, "{crosspoint} !< {binary}");
        assert!(binary < sorting, "{binary} !< {sorting}");
    }

    #[test]
    fn mux_complexity_grows_with_inputs() {
        let m4 = n_input_mux(4, 32).unwrap().cell_count();
        let m8 = n_input_mux(8, 32).unwrap().cell_count();
        let m32 = n_input_mux(32, 32).unwrap().cell_count();
        assert!(m4 < m8 && m8 < m32);
    }
}
