//! The 2×2 self-routing binary switch used in Banyan networks (paper §3.1,
//! Fig. 2 and §4.3).
//!
//! The switch inspects one destination-address bit per incoming packet
//! ("header data path"), allocates an output port, and then forwards payload
//! words through that output for the remainder of the packet ("payload data
//! path").  Structurally the generated circuit contains:
//!
//! * per-port input registers (one DFF per payload bit),
//! * an allocator (request/grant gates, ~a dozen cells),
//! * per-output bus-wide 2:1 multiplexers selecting the granted input,
//! * per-output output registers.

use crate::cells::CellKind;
use crate::netlist::{Netlist, NetlistError};

use super::build::{input_bus, mux_bus, register_bus};
use super::{SwitchCircuit, SwitchClass};

/// Builds a 2×2 Banyan binary switch with a `bus_width`-bit payload path.
///
/// Interface:
/// * 2 data input buses, 2 presence flags;
/// * 2 control inputs: the routed destination bit of the packet on each port
///   (`0` → output 0, `1` → output 1);
/// * 2 data output buses.
///
/// # Errors
///
/// Returns a [`NetlistError`] only if the internal construction is
/// inconsistent, which would indicate a bug in this generator.
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::circuits::banyan_binary_switch;
///
/// let circuit = banyan_binary_switch(32)?;
/// assert_eq!(circuit.ports, 2);
/// assert_eq!(circuit.data_outputs.len(), 2);
/// # Ok::<(), fabric_power_netlist::netlist::NetlistError>(())
/// ```
pub fn banyan_binary_switch(bus_width: usize) -> Result<SwitchCircuit, NetlistError> {
    let mut netlist = Netlist::new(format!("banyan_binary_{bus_width}b"));

    // --- interface ---------------------------------------------------------
    let data_in0 = input_bus(&mut netlist, "din0", bus_width);
    let data_in1 = input_bus(&mut netlist, "din1", bus_width);
    let present0 = netlist.add_input("present0");
    let present1 = netlist.add_input("present1");
    let dest0 = netlist.add_input("dest0");
    let dest1 = netlist.add_input("dest1");

    // --- input registers (payload data path) -------------------------------
    let reg_in0 = register_bus(&mut netlist, "inreg0", &data_in0)?;
    let reg_in1 = register_bus(&mut netlist, "inreg1", &data_in1)?;

    // --- allocator (header data path) ---------------------------------------
    // Requests: port p requests output 0 when its destination bit is 0.
    let ndest0 = netlist.add_net("ndest0");
    let ndest1 = netlist.add_net("ndest1");
    netlist.add_cell("u_ndest0", CellKind::Inv, &[dest0], ndest0)?;
    netlist.add_cell("u_ndest1", CellKind::Inv, &[dest1], ndest1)?;

    let req0_out0 = netlist.add_net("req0_out0");
    let req1_out0 = netlist.add_net("req1_out0");
    let req0_out1 = netlist.add_net("req0_out1");
    let req1_out1 = netlist.add_net("req1_out1");
    netlist.add_cell("u_req00", CellKind::And2, &[present0, ndest0], req0_out0)?;
    netlist.add_cell("u_req10", CellKind::And2, &[present1, ndest1], req1_out0)?;
    netlist.add_cell("u_req01", CellKind::And2, &[present0, dest0], req0_out1)?;
    netlist.add_cell("u_req11", CellKind::And2, &[present1, dest1], req1_out1)?;

    // Fixed-priority grants: port 0 wins ties (the loser is buffered by the
    // surrounding node-switch buffer, outside this circuit).
    let nreq0_out0 = netlist.add_net("nreq0_out0");
    let nreq0_out1 = netlist.add_net("nreq0_out1");
    netlist.add_cell("u_nreq00", CellKind::Inv, &[req0_out0], nreq0_out0)?;
    netlist.add_cell("u_nreq01", CellKind::Inv, &[req0_out1], nreq0_out1)?;

    let grant1_out0 = netlist.add_net("grant1_out0");
    let grant1_out1 = netlist.add_net("grant1_out1");
    netlist.add_cell(
        "u_grant10",
        CellKind::And2,
        &[req1_out0, nreq0_out0],
        grant1_out0,
    )?;
    netlist.add_cell(
        "u_grant11",
        CellKind::And2,
        &[req1_out1, nreq0_out1],
        grant1_out1,
    )?;

    // Output-enable per output port: any grant present.
    let enable_out0 = netlist.add_net("enable_out0");
    let enable_out1 = netlist.add_net("enable_out1");
    netlist.add_cell(
        "u_en0",
        CellKind::Or2,
        &[req0_out0, grant1_out0],
        enable_out0,
    )?;
    netlist.add_cell(
        "u_en1",
        CellKind::Or2,
        &[req0_out1, grant1_out1],
        enable_out1,
    )?;

    // --- payload data path ---------------------------------------------------
    // select = 1 chooses input port 1.
    let mux_out0 = mux_bus(&mut netlist, "xbar0", &reg_in0, &reg_in1, grant1_out0)?;
    let mux_out1 = mux_bus(&mut netlist, "xbar1", &reg_in0, &reg_in1, grant1_out1)?;

    // Gate the payload with the output enable so an idle output does not
    // toggle, then register it.
    let gated_out0 = gate_bus(&mut netlist, "gate0", &mux_out0, enable_out0)?;
    let gated_out1 = gate_bus(&mut netlist, "gate1", &mux_out1, enable_out1)?;
    let data_out0 = register_bus(&mut netlist, "outreg0", &gated_out0)?;
    let data_out1 = register_bus(&mut netlist, "outreg1", &gated_out1)?;

    for &net in data_out0.iter().chain(&data_out1) {
        netlist.mark_output(net)?;
    }

    #[cfg(debug_assertions)]
    netlist.validate_strict()?;

    Ok(SwitchCircuit {
        netlist,
        class: SwitchClass::BanyanBinary,
        ports: 2,
        bus_width,
        data_inputs: vec![data_in0, data_in1],
        presence_inputs: vec![present0, present1],
        control_inputs: vec![dest0, dest1],
        data_outputs: vec![data_out0, data_out1],
    })
}

/// AND-gates every bit of `data` with `enable`.
fn gate_bus(
    netlist: &mut Netlist,
    prefix: &str,
    data: &[crate::netlist::NetId],
    enable: crate::netlist::NetId,
) -> Result<Vec<crate::netlist::NetId>, NetlistError> {
    let out = super::build::net_bus(netlist, &format!("{prefix}_g"), data.len());
    for (i, (&d, &o)) in data.iter().zip(&out).enumerate() {
        netlist.add_cell(
            format!("{prefix}_and[{i}]"),
            CellKind::And2,
            &[d, enable],
            o,
        )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::sim::Simulator;

    fn read_bus(sim: &Simulator<'_>, bus: &[crate::netlist::NetId]) -> u64 {
        bus.iter()
            .enumerate()
            .map(|(i, &n)| if sim.net_value(n) { 1 << i } else { 0 })
            .sum()
    }

    #[test]
    fn packet_on_port0_routes_to_requested_output() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();

        // Packet on port 0 with destination bit 1 → output 1.
        let mut vector = circuit.blank_input_vector();
        circuit.set_input(&mut vector, circuit.presence_inputs[0], true);
        circuit.set_input(&mut vector, circuit.control_inputs[0], true);
        circuit.set_bus(&mut vector, 0, 0x5A);
        // Three cycles: input register, output register, observe.
        sim.step(&vector);
        sim.step(&vector);
        sim.step(&vector);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0x5A);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0);
    }

    #[test]
    fn both_packets_to_different_outputs_pass_simultaneously() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();

        let mut vector = circuit.blank_input_vector();
        circuit.set_input(&mut vector, circuit.presence_inputs[0], true);
        circuit.set_input(&mut vector, circuit.presence_inputs[1], true);
        // port 0 → output 0, port 1 → output 1.
        circuit.set_input(&mut vector, circuit.control_inputs[0], false);
        circuit.set_input(&mut vector, circuit.control_inputs[1], true);
        circuit.set_bus(&mut vector, 0, 0x11);
        circuit.set_bus(&mut vector, 1, 0xEE);
        sim.step(&vector);
        sim.step(&vector);
        sim.step(&vector);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x11);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0xEE);
    }

    #[test]
    fn contending_packets_give_priority_to_port0() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();

        let mut vector = circuit.blank_input_vector();
        circuit.set_input(&mut vector, circuit.presence_inputs[0], true);
        circuit.set_input(&mut vector, circuit.presence_inputs[1], true);
        // Both packets want output 0: interconnect contention inside the node.
        circuit.set_input(&mut vector, circuit.control_inputs[0], false);
        circuit.set_input(&mut vector, circuit.control_inputs[1], false);
        circuit.set_bus(&mut vector, 0, 0x0F);
        circuit.set_bus(&mut vector, 1, 0xF0);
        sim.step(&vector);
        sim.step(&vector);
        sim.step(&vector);
        // Port 0 wins the output; port 1's payload must not appear there.
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0x0F);
    }

    #[test]
    fn idle_switch_outputs_stay_quiet() {
        let circuit = banyan_binary_switch(8).unwrap();
        let lib = CellLibrary::calibrated_018um();
        let mut sim = Simulator::new(&circuit.netlist, &lib).unwrap();
        let mut vector = circuit.blank_input_vector();
        // Data wiggling but no packet present: outputs must stay 0.
        circuit.set_bus(&mut vector, 0, 0xFF);
        sim.step(&vector);
        sim.step(&vector);
        sim.step(&vector);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[0]), 0);
        assert_eq!(read_bus(&sim, &circuit.data_outputs[1]), 0);
    }

    #[test]
    fn cell_count_is_a_few_hundred_for_32_bit_bus() {
        // The paper quotes "a few hundred gates to 10K gates" for node
        // switches; the 32-bit binary switch should be in that band.
        let circuit = banyan_binary_switch(32).unwrap();
        assert!(circuit.cell_count() >= 200, "{}", circuit.cell_count());
        assert!(circuit.cell_count() <= 2000, "{}", circuit.cell_count());
    }
}
