//! Cycle-driven logic simulation with switching-energy accounting.
//!
//! This is the stand-in for the paper's Synopsys Power Compiler runs: the
//! netlist is evaluated one clock cycle at a time, every net toggle is
//! counted, and each toggle is charged with the driving cell's internal
//! energy plus the energy to (dis)charge the input pins it fans out to.
//! Sequential cells additionally burn clock-pin energy every cycle and every
//! cell contributes its (tiny) leakage energy.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::{Energy, Power, TimeSpan};

use crate::cells::CellKind;
use crate::library::CellLibrary;
use crate::netlist::{CellId, Driver, Netlist, NetlistError};

/// Breakdown of the energy consumed during a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy dissipated inside cells when their outputs toggle.
    pub internal: Energy,
    /// Energy dissipated charging and discharging input-pin loads.
    pub net_load: Energy,
    /// Clock-tree energy of sequential cells (every cycle).
    pub clock: Energy,
    /// Leakage energy (every cycle, all cells).
    pub leakage: Energy,
}

impl EnergyBreakdown {
    /// Total energy across all categories.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.internal + self.net_load + self.clock + self.leakage
    }
}

/// Result of simulating a netlist over a number of cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Number of simulated clock cycles.
    pub cycles: u64,
    /// Total number of net toggles observed.
    pub toggles: u64,
    /// Energy broken down by mechanism.
    pub energy: EnergyBreakdown,
    /// Toggle counts per cell kind (driver of the toggling net).
    pub toggles_by_kind: BTreeMap<CellKind, u64>,
}

/// Per-net energy accounting tables, precomputed once per `(netlist,
/// library)` pair so the simulation hot paths never touch the library again.
///
/// Both the scalar [`Simulator`] and the bit-parallel
/// [`crate::packed::PackedSimulator`] charge energy through these tables:
///
/// * `internal(net)` — the driving cell's internal energy, charged once per
///   toggle of the net (zero when no cell drives it);
/// * `load(net)` — the pre-summed energy of (dis)charging every input pin
///   the net fans out to, charged once per toggle;
/// * `per_cycle_clock` / `per_cycle_leakage` — constants charged per
///   simulated cycle (per lane-cycle in the packed engine).
///
/// [`EnergyTables::report_from_counts`] turns integer per-net toggle counts
/// into an [`ActivityReport`] deterministically (ascending net order, one
/// multiply per net), which is what makes packed-vs-scalar energy agreement
/// bit-exact: identical counts are guaranteed to produce identical floats.
#[derive(Debug, Clone)]
pub struct EnergyTables {
    /// Internal energy charged per toggle, indexed by net.
    net_internal: Vec<Energy>,
    /// Summed fanout pin-load energy charged per toggle, indexed by net.
    net_load: Vec<Energy>,
    /// Driving cell kind as `CellKind::ALL` index (`None` for primary
    /// inputs and constants), indexed by net.
    net_kind: Vec<Option<u8>>,
    /// Clock energy of all sequential cells, per cycle.
    per_cycle_clock: Energy,
    /// Leakage energy of all cells, per cycle.
    per_cycle_leakage: Energy,
}

impl EnergyTables {
    /// Precomputes the tables for one netlist/library pair.
    #[must_use]
    pub fn new(netlist: &Netlist, library: &CellLibrary) -> Self {
        let mut per_cycle_clock = Energy::ZERO;
        let mut per_cycle_leakage = Energy::ZERO;
        for (_, cell) in netlist.cells() {
            let params = library.parameters(cell.kind());
            per_cycle_clock += params.clock_energy;
            per_cycle_leakage += params.leakage_energy_per_cycle;
        }
        let mut net_internal = vec![Energy::ZERO; netlist.net_count()];
        let mut net_load = vec![Energy::ZERO; netlist.net_count()];
        let mut net_kind = vec![None; netlist.net_count()];
        for (net_id, net) in netlist.nets() {
            if let Some(Driver::Cell(cell_id)) = net.driver() {
                let kind = netlist.cell(cell_id).kind();
                net_internal[net_id.index()] = library.parameters(kind).internal_energy;
                net_kind[net_id.index()] =
                    Some(u8::try_from(kind.index()).expect("fewer than 256 cell kinds"));
            }
            let mut load = Energy::ZERO;
            for &(load_cell, _pin) in net.loads() {
                load += library.pin_load_energy(netlist.cell(load_cell).kind(), 1);
            }
            net_load[net_id.index()] = load;
        }
        Self {
            net_internal,
            net_load,
            net_kind,
            per_cycle_clock,
            per_cycle_leakage,
        }
    }

    /// Clock energy burnt per simulated cycle (per lane-cycle when packed).
    #[must_use]
    pub fn per_cycle_clock(&self) -> Energy {
        self.per_cycle_clock
    }

    /// Leakage energy burnt per simulated cycle.
    #[must_use]
    pub fn per_cycle_leakage(&self) -> Energy {
        self.per_cycle_leakage
    }

    /// Computes the full [`ActivityReport`] from integer activity counts:
    /// `net_toggles[n]` toggles observed on net `n` and `cycles` simulated
    /// (lane-)cycles.
    ///
    /// The summation order is fixed (ascending net index) and each net
    /// contributes exactly one `count × energy` product per category, so two
    /// engines that agree on the integer counts agree on every output float
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `net_toggles.len()` differs from the netlist's net count.
    #[must_use]
    pub fn report_from_counts(&self, net_toggles: &[u64], cycles: u64) -> ActivityReport {
        assert_eq!(
            net_toggles.len(),
            self.net_internal.len(),
            "toggle counts must cover every net"
        );
        let mut energy = EnergyBreakdown {
            clock: self.per_cycle_clock * cycles as f64,
            leakage: self.per_cycle_leakage * cycles as f64,
            ..EnergyBreakdown::default()
        };
        let mut toggles = 0_u64;
        let mut by_kind = [0_u64; CellKind::ALL.len()];
        for (net, &count) in net_toggles.iter().enumerate() {
            if count == 0 {
                continue;
            }
            toggles += count;
            energy.internal += self.net_internal[net] * count as f64;
            energy.net_load += self.net_load[net] * count as f64;
            if let Some(kind) = self.net_kind[net] {
                by_kind[kind as usize] += count;
            }
        }
        ActivityReport {
            cycles,
            toggles,
            energy,
            toggles_by_kind: CellKind::ALL
                .into_iter()
                .filter(|kind| by_kind[kind.index()] > 0)
                .map(|kind| (kind, by_kind[kind.index()]))
                .collect(),
        }
    }
}

impl ActivityReport {
    /// Total energy of the run.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Average energy per cycle.
    #[must_use]
    pub fn energy_per_cycle(&self) -> Energy {
        if self.cycles == 0 {
            Energy::ZERO
        } else {
            self.total_energy() / self.cycles as f64
        }
    }

    /// Average switching activity: toggles per cycle.
    #[must_use]
    pub fn toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles as f64 / self.cycles as f64
        }
    }

    /// Average power when the run is clocked at the given period.
    #[must_use]
    pub fn average_power(&self, cycle_time: TimeSpan) -> Power {
        self.total_energy().over(TimeSpan::from_seconds(
            cycle_time.as_seconds() * self.cycles as f64,
        ))
    }
}

/// Cycle-driven simulator for one [`Netlist`].
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::library::CellLibrary;
/// use fabric_power_netlist::netlist::Netlist;
/// use fabric_power_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("inv");
/// let a = n.add_input("a");
/// let y = n.add_net("y");
/// n.add_cell("u_inv", CellKind::Inv, &[a], y)?;
/// n.mark_output(y)?;
///
/// let library = CellLibrary::calibrated_018um();
/// let mut sim = Simulator::new(&n, &library)?;
/// sim.step(&[false]);
/// sim.step(&[true]);
/// assert_eq!(sim.output_values(), vec![false]);
/// assert!(sim.report().total_energy().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Combinational evaluation order.
    order: Vec<CellId>,
    /// Current logic value of every net.
    net_values: Vec<bool>,
    /// Stored state of sequential cells, indexed by cell id.
    state: Vec<bool>,
    /// Simulated cycles since the last counter reset.
    cycles: u64,
    /// Toggles observed per net since the last counter reset.  Energy is
    /// derived from these integer counts at [`Simulator::report`] time via
    /// the precomputed [`EnergyTables`] — the hot path never touches the
    /// cell library or a map.
    net_toggles: Vec<u64>,
    /// Per-net energy tables, precomputed in [`Simulator::new`].
    tables: EnergyTables,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator, validating the netlist in the process.
    ///
    /// All nets start at logic `0`, all flip-flops start cleared.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist, library: &CellLibrary) -> Result<Self, NetlistError> {
        let order = netlist.validate()?;
        Ok(Self {
            netlist,
            order,
            net_values: vec![false; netlist.net_count()],
            state: vec![false; netlist.cell_count()],
            cycles: 0,
            net_toggles: vec![0; netlist.net_count()],
            tables: EnergyTables::new(netlist, library),
        })
    }

    /// Simulates one clock cycle with the given primary-input values.
    ///
    /// The order of `inputs` matches [`Netlist::primary_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "expected {} primary-input values, got {}",
            self.netlist.primary_inputs().len(),
            inputs.len()
        );
        self.cycles += 1;

        // Copy the netlist reference out of `self` so the shared borrow of the
        // netlist data does not conflict with `&mut self` calls below.
        let netlist = self.netlist;

        // 1. Drive primary inputs, constants and sequential outputs.
        for (net_id, net) in netlist.nets() {
            match net.driver() {
                Some(Driver::PrimaryInput(pi)) => {
                    self.update_net(net_id.index(), inputs[pi]);
                }
                Some(Driver::Constant(value)) => {
                    self.update_net(net_id.index(), value);
                }
                Some(Driver::Cell(cell_id)) if netlist.cell(cell_id).kind().is_sequential() => {
                    let q = self.state[cell_id.index()];
                    self.update_net(net_id.index(), q);
                }
                _ => {}
            }
        }

        // 2. Evaluate combinational logic in topological order.
        let mut scratch_inputs = Vec::with_capacity(3);
        for idx in 0..self.order.len() {
            let cell_id = self.order[idx];
            let cell = netlist.cell(cell_id);
            scratch_inputs.clear();
            scratch_inputs.extend(cell.inputs().iter().map(|n| self.net_values[n.index()]));
            let previous = self.net_values[cell.output().index()];
            let value = cell.kind().evaluate(&scratch_inputs, previous);
            self.update_net(cell.output().index(), value);
        }

        // 3. Capture the next state of sequential cells (D sampled at the end
        //    of the cycle, visible on Q at the start of the next cycle).
        for (cell_id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                self.state[cell_id.index()] = self.net_values[cell.inputs()[0].index()];
            }
        }
    }

    /// Simulates one cycle per entry of `vectors`.
    pub fn run<I, V>(&mut self, vectors: I)
    where
        I: IntoIterator<Item = V>,
        V: AsRef<[bool]>,
    {
        for vector in vectors {
            self.step(vector.as_ref());
        }
    }

    fn update_net(&mut self, net_index: usize, value: bool) {
        if self.net_values[net_index] == value {
            return;
        }
        self.net_values[net_index] = value;
        self.net_toggles[net_index] += 1;
    }

    /// Current logic values of the primary outputs, in declaration order.
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| self.net_values[n.index()])
            .collect()
    }

    /// Current logic value of an arbitrary net.
    #[must_use]
    pub fn net_value(&self, net: crate::netlist::NetId) -> bool {
        self.net_values[net.index()]
    }

    /// Snapshot of the accumulated activity and energy.
    #[must_use]
    pub fn report(&self) -> ActivityReport {
        self.tables
            .report_from_counts(&self.net_toggles, self.cycles)
    }

    /// Toggle counts per net since the last counter reset, indexed by net.
    ///
    /// This is the integer quantity the equivalence contract with the packed
    /// engine is stated in: identical per-net counts imply bit-identical
    /// energies through [`EnergyTables::report_from_counts`].
    #[must_use]
    pub fn net_toggle_counts(&self) -> &[u64] {
        &self.net_toggles
    }

    /// The precomputed per-net energy tables used by this simulator.
    #[must_use]
    pub fn energy_tables(&self) -> &EnergyTables {
        &self.tables
    }

    /// Resets activity counters (but keeps the current logic state), so a
    /// warm-up phase can be excluded from measurements.
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.net_toggles.fill(0);
    }
}

/// Convenience: simulate `vectors` on a fresh simulator and return the report.
///
/// # Errors
///
/// Propagates netlist validation errors.
pub fn simulate<V: AsRef<[bool]>>(
    netlist: &Netlist,
    library: &CellLibrary,
    vectors: impl IntoIterator<Item = V>,
) -> Result<ActivityReport, NetlistError> {
    let mut sim = Simulator::new(netlist, library)?;
    sim.run(vectors);
    Ok(sim.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell("u_xor", CellKind::Xor2, &[a, b], y).unwrap();
        n.mark_output(y).unwrap();
        n
    }

    #[test]
    fn xor_evaluates_correctly_over_cycles() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[true, false]);
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn constant_inputs_consume_only_clock_and_leakage() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        // Same vector repeatedly: after the first cycle nothing toggles.
        sim.run(std::iter::repeat_n([false, false], 10));
        let report = sim.report();
        assert_eq!(report.toggles, 0);
        assert_eq!(report.energy.internal, Energy::ZERO);
        assert_eq!(report.energy.net_load, Energy::ZERO);
        assert!(report.energy.leakage > Energy::ZERO);
        assert_eq!(report.cycles, 10);
    }

    #[test]
    fn toggling_inputs_accumulate_energy() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..100_u32 {
            sim.step(&[i % 2 == 0, false]);
        }
        let report = sim.report();
        assert!(report.energy.internal > Energy::ZERO);
        assert!(report.energy.net_load > Energy::ZERO);
        assert!(report.toggles >= 100);
        assert!(report.toggles_by_kind[&CellKind::Xor2] > 0);
        assert!(report.energy_per_cycle() > Energy::ZERO);
        assert!(report.toggles_per_cycle() >= 1.0);
    }

    #[test]
    fn dff_delays_data_by_one_cycle() {
        let mut n = Netlist::new("pipe");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
        // Q still shows the reset value during the first cycle.
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[false]);
        // Now Q shows the value captured at the end of cycle 1.
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[false]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn sequential_cells_burn_clock_energy_every_cycle() {
        let mut n = Netlist::new("ff");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let report = simulate(&n, &lib, std::iter::repeat_n([false], 50)).unwrap();
        let expected = lib.parameters(CellKind::Dff).clock_energy * 50.0;
        assert!((report.energy.clock.as_joules() - expected.as_joules()).abs() < 1e-24);
    }

    #[test]
    fn tri_state_bus_holds_value() {
        let mut n = Netlist::new("bus");
        let a = n.add_input("a");
        let en = n.add_input("en");
        let y = n.add_net("y");
        n.add_cell("u_tri", CellKind::TriBuf, &[a, en], y).unwrap();
        n.mark_output(y).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![true]);
        // Disable: output holds even though A falls.
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![true]);
    }

    #[test]
    fn reset_counters_keeps_state() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, false]);
        sim.reset_counters();
        assert_eq!(sim.report().cycles, 0);
        assert_eq!(sim.report().total_energy(), Energy::ZERO);
        // State preserved: stepping with the same vector causes no toggles.
        sim.step(&[true, false]);
        assert_eq!(sim.report().toggles, 0);
    }

    #[test]
    fn average_power_uses_cycle_time() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..10_u32 {
            sim.step(&[i % 2 == 0, i % 3 == 0]);
        }
        let report = sim.report();
        let power = report.average_power(TimeSpan::from_nanoseconds(7.5));
        assert!(power.as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "primary-input values")]
    fn wrong_input_vector_length_panics() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = ActivityReport {
            cycles: 0,
            toggles: 0,
            energy: EnergyBreakdown::default(),
            toggles_by_kind: BTreeMap::new(),
        };
        assert_eq!(report.energy_per_cycle(), Energy::ZERO);
        assert_eq!(report.toggles_per_cycle(), 0.0);
    }
}
