//! Cycle-driven logic simulation with switching-energy accounting.
//!
//! This is the stand-in for the paper's Synopsys Power Compiler runs: the
//! netlist is evaluated one clock cycle at a time, every net toggle is
//! counted, and each toggle is charged with the driving cell's internal
//! energy plus the energy to (dis)charge the input pins it fans out to.
//! Sequential cells additionally burn clock-pin energy every cycle and every
//! cell contributes its (tiny) leakage energy.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::{Energy, Power, TimeSpan};

use crate::cells::CellKind;
use crate::library::CellLibrary;
use crate::netlist::{CellId, Driver, Netlist, NetlistError};
use crate::passes::{NetFate, OptimizedNetlist};

/// Breakdown of the energy consumed during a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy dissipated inside cells when their outputs toggle.
    pub internal: Energy,
    /// Energy dissipated charging and discharging input-pin loads.
    pub net_load: Energy,
    /// Clock-tree energy of sequential cells (every cycle).
    pub clock: Energy,
    /// Leakage energy (every cycle, all cells).
    pub leakage: Energy,
}

impl EnergyBreakdown {
    /// Total energy across all categories.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.internal + self.net_load + self.clock + self.leakage
    }
}

/// Result of simulating a netlist over a number of cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Number of simulated clock cycles.
    pub cycles: u64,
    /// Total number of net toggles observed.
    pub toggles: u64,
    /// Energy broken down by mechanism.
    pub energy: EnergyBreakdown,
    /// Toggle counts per cell kind (driver of the toggling net).
    pub toggles_by_kind: BTreeMap<CellKind, u64>,
}

/// Per-net energy accounting tables, precomputed once per `(netlist,
/// library)` pair so the simulation hot paths never touch the library again.
///
/// Both the scalar [`Simulator`] and the bit-parallel
/// [`crate::packed::PackedSimulator`] charge energy through these tables:
///
/// * `internal(net)` — the driving cell's internal energy, charged once per
///   toggle of the net (zero when no cell drives it);
/// * `load(net)` — the pre-summed energy of (dis)charging every input pin
///   the net fans out to, charged once per toggle;
/// * `per_cycle_clock` / `per_cycle_leakage` — constants charged per
///   simulated cycle (per lane-cycle in the packed engine).
///
/// [`EnergyTables::report_from_counts`] turns integer per-net toggle counts
/// into an [`ActivityReport`] deterministically (ascending net order, one
/// multiply per net), which is what makes packed-vs-scalar energy agreement
/// bit-exact: identical counts are guaranteed to produce identical floats.
#[derive(Debug, Clone)]
pub struct EnergyTables {
    /// Internal energy charged per toggle, indexed by net.
    net_internal: Vec<Energy>,
    /// Summed fanout pin-load energy charged per toggle, indexed by net.
    net_load: Vec<Energy>,
    /// Driving cell kind as `CellKind::ALL` index (`None` for primary
    /// inputs and constants), indexed by net.
    net_kind: Vec<Option<u8>>,
    /// Clock energy of all sequential cells, per cycle.
    per_cycle_clock: Energy,
    /// Leakage energy of all cells, per cycle.
    per_cycle_leakage: Energy,
}

impl EnergyTables {
    /// Precomputes the tables for one netlist/library pair.
    #[must_use]
    pub fn new(netlist: &Netlist, library: &CellLibrary) -> Self {
        let mut per_cycle_clock = Energy::ZERO;
        let mut per_cycle_leakage = Energy::ZERO;
        for (_, cell) in netlist.cells() {
            let params = library.parameters(cell.kind());
            per_cycle_clock += params.clock_energy;
            per_cycle_leakage += params.leakage_energy_per_cycle;
        }
        let mut net_internal = vec![Energy::ZERO; netlist.net_count()];
        let mut net_load = vec![Energy::ZERO; netlist.net_count()];
        let mut net_kind = vec![None; netlist.net_count()];
        for (net_id, net) in netlist.nets() {
            if let Some(Driver::Cell(cell_id)) = net.driver() {
                let kind = netlist.cell(cell_id).kind();
                net_internal[net_id.index()] = library.parameters(kind).internal_energy;
                net_kind[net_id.index()] =
                    Some(u8::try_from(kind.index()).expect("fewer than 256 cell kinds"));
            }
            let mut load = Energy::ZERO;
            for &(load_cell, _pin) in net.loads() {
                load += library.pin_load_energy(netlist.cell(load_cell).kind(), 1);
            }
            net_load[net_id.index()] = load;
        }
        Self {
            net_internal,
            net_load,
            net_kind,
            per_cycle_clock,
            per_cycle_leakage,
        }
    }

    /// Clock energy burnt per simulated cycle (per lane-cycle when packed).
    #[must_use]
    pub fn per_cycle_clock(&self) -> Energy {
        self.per_cycle_clock
    }

    /// Leakage energy burnt per simulated cycle.
    #[must_use]
    pub fn per_cycle_leakage(&self) -> Energy {
        self.per_cycle_leakage
    }

    /// Computes the full [`ActivityReport`] from integer activity counts:
    /// `net_toggles[n]` toggles observed on net `n` and `cycles` simulated
    /// (lane-)cycles.
    ///
    /// The summation order is fixed (ascending net index) and each net
    /// contributes exactly one `count × energy` product per category, so two
    /// engines that agree on the integer counts agree on every output float
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `net_toggles.len()` differs from the netlist's net count.
    #[must_use]
    pub fn report_from_counts(&self, net_toggles: &[u64], cycles: u64) -> ActivityReport {
        assert_eq!(
            net_toggles.len(),
            self.net_internal.len(),
            "toggle counts must cover every net"
        );
        let mut energy = EnergyBreakdown {
            clock: self.per_cycle_clock * cycles as f64,
            leakage: self.per_cycle_leakage * cycles as f64,
            ..EnergyBreakdown::default()
        };
        let mut toggles = 0_u64;
        let mut by_kind = [0_u64; CellKind::ALL.len()];
        for (net, &count) in net_toggles.iter().enumerate() {
            if count == 0 {
                continue;
            }
            toggles += count;
            energy.internal += self.net_internal[net] * count as f64;
            energy.net_load += self.net_load[net] * count as f64;
            if let Some(kind) = self.net_kind[net] {
                by_kind[kind as usize] += count;
            }
        }
        ActivityReport {
            cycles,
            toggles,
            energy,
            toggles_by_kind: CellKind::ALL
                .into_iter()
                .filter(|kind| by_kind[kind.index()] > 0)
                .map(|kind| (kind, by_kind[kind.index()]))
                .collect(),
        }
    }
}

impl ActivityReport {
    /// Total energy of the run.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Average energy per cycle.
    #[must_use]
    pub fn energy_per_cycle(&self) -> Energy {
        if self.cycles == 0 {
            Energy::ZERO
        } else {
            self.total_energy() / self.cycles as f64
        }
    }

    /// Average switching activity: toggles per cycle.
    #[must_use]
    pub fn toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles as f64 / self.cycles as f64
        }
    }

    /// Average power when the run is clocked at the given period.
    #[must_use]
    pub fn average_power(&self, cycle_time: TimeSpan) -> Power {
        self.total_energy().over(TimeSpan::from_seconds(
            cycle_time.as_seconds() * self.cycles as f64,
        ))
    }
}

/// Cycle-driven simulator for one [`Netlist`].
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::library::CellLibrary;
/// use fabric_power_netlist::netlist::Netlist;
/// use fabric_power_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("inv");
/// let a = n.add_input("a");
/// let y = n.add_net("y");
/// n.add_cell("u_inv", CellKind::Inv, &[a], y)?;
/// n.mark_output(y)?;
///
/// let library = CellLibrary::calibrated_018um();
/// let mut sim = Simulator::new(&n, &library)?;
/// sim.step(&[false]);
/// sim.step(&[true]);
/// assert_eq!(sim.output_values(), vec![false]);
/// assert!(sim.report().total_energy().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Combinational evaluation order (walk mode; empty in scheduled mode).
    order: Vec<CellId>,
    /// Current logic value of every net (of the optimized netlist when
    /// running in scheduled mode).
    net_values: Vec<bool>,
    /// Stored state of sequential cells: indexed by cell id in walk mode,
    /// by schedule state slot in scheduled mode.
    state: Vec<bool>,
    /// Simulated cycles since the last counter reset.
    cycles: u64,
    /// Toggles observed per net since the last counter reset, always in
    /// *original* net-id space.  Energy is derived from these integer counts
    /// at [`Simulator::report`] time via the precomputed [`EnergyTables`] —
    /// the hot path never touches the cell library or a map.
    net_toggles: Vec<u64>,
    /// Per-net energy tables, precomputed in [`Simulator::new`] over the
    /// original netlist.
    tables: EnergyTables,
    /// Level-scheduled execution state when driving an [`OptimizedNetlist`].
    scheduled: Option<ScheduledState<'a>>,
}

/// Execution state of the level-scheduled engine.
#[derive(Debug, Clone)]
struct ScheduledState<'a> {
    opt: &'a OptimizedNetlist,
    /// Scheduled cells that have ever seen an input change, sorted by index
    /// (index order is level order).  The steady-state sweep evaluates
    /// exactly these; cells of cones that never toggled cost nothing.
    active_cells: Vec<u32>,
    /// Membership flags for `active_cells` / `newly`.
    is_active: Vec<bool>,
    /// Cells activated since the last merge into `active_cells`.  Non-empty
    /// only on the rare steps when a previously quiet net first toggles.
    newly: Vec<u32>,
    /// Per net: all of the net's consumer cells are already active, so a
    /// flip needs no activation walk (set the first time the net flips,
    /// which activates every consumer).
    fanout_active: Vec<bool>,
    /// Whether the pipeline left every net in place (1:1 alias map, nothing
    /// folded) — enables the direct toggle-crediting fast path.
    identity: bool,
    /// Whether the first full-evaluation step has run.  Not reset by
    /// [`Simulator::reset_counters`]: the circuit stays settled.
    settled: bool,
}

/// Writes `value` to optimized net `net`, crediting a toggle to every
/// aliased original net and activating the net's consumer cells.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn scheduled_write(
    opt: &OptimizedNetlist,
    net_values: &mut [bool],
    net_toggles: &mut [u64],
    is_active: &mut [bool],
    newly: &mut Vec<u32>,
    fanout_active: &mut [bool],
    identity: bool,
    net: u32,
    value: bool,
) {
    let idx = net as usize;
    if net_values[idx] == value {
        return;
    }
    net_values[idx] = value;
    if identity {
        net_toggles[idx] += 1;
    } else {
        for &original in opt.alias_targets_of(idx) {
            net_toggles[original as usize] += 1;
        }
    }
    if !fanout_active[idx] {
        fanout_active[idx] = true;
        for &cell in opt.schedule().load_cells(idx) {
            let c = cell as usize;
            if !is_active[c] {
                is_active[c] = true;
                newly.push(cell);
            }
        }
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator, validating the netlist in the process.
    ///
    /// All nets start at logic `0`, all flip-flops start cleared.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist, library: &CellLibrary) -> Result<Self, NetlistError> {
        let order = netlist.validate()?;
        Ok(Self {
            netlist,
            order,
            net_values: vec![false; netlist.net_count()],
            state: vec![false; netlist.cell_count()],
            cycles: 0,
            net_toggles: vec![0; netlist.net_count()],
            tables: EnergyTables::new(netlist, library),
            scheduled: None,
        })
    }

    /// Creates a simulator that executes `optimized`'s level schedule while
    /// reporting activity and energy in `netlist`'s (the original's) net-id
    /// space — bit-identical to [`Simulator::new`] over `netlist` (see the
    /// [`crate::passes`] docs for the exactness argument).
    ///
    /// # Errors
    ///
    /// Propagates any structural [`NetlistError`] (undriven nets,
    /// inconsistent load lists).  Acyclicity needs no re-check: `optimized`
    /// carries a compiled level schedule, which only exists for acyclic
    /// logic.
    ///
    /// # Panics
    ///
    /// Panics if `optimized` was not produced from `netlist` (net or
    /// primary-input counts disagree).
    pub fn with_passes(
        netlist: &'a Netlist,
        optimized: &'a OptimizedNetlist,
        library: &CellLibrary,
    ) -> Result<Self, NetlistError> {
        assert_eq!(
            optimized.original_net_count(),
            netlist.net_count(),
            "optimized netlist was built from a different original"
        );
        assert_eq!(
            optimized.primary_input_count(),
            netlist.primary_inputs().len(),
            "optimized netlist must preserve primary inputs"
        );
        netlist.check_structure()?;
        let schedule = optimized.schedule();
        Ok(Self {
            netlist,
            order: Vec::new(),
            net_values: vec![false; optimized.net_count()],
            state: vec![false; schedule.state_slots()],
            cycles: 0,
            net_toggles: vec![0; netlist.net_count()],
            tables: EnergyTables::new(netlist, library),
            scheduled: Some(ScheduledState {
                opt: optimized,
                active_cells: Vec::new(),
                is_active: vec![false; schedule.cell_count()],
                newly: Vec::new(),
                fanout_active: vec![false; optimized.net_count()],
                identity: optimized.identity_aliases(),
                settled: false,
            }),
        })
    }

    /// Simulates one clock cycle with the given primary-input values.
    ///
    /// The order of `inputs` matches [`Netlist::primary_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "expected {} primary-input values, got {}",
            self.netlist.primary_inputs().len(),
            inputs.len()
        );
        self.cycles += 1;
        if self.scheduled.is_some() {
            self.step_scheduled(inputs);
            return;
        }

        // Copy the netlist reference out of `self` so the shared borrow of the
        // netlist data does not conflict with `&mut self` calls below.
        let netlist = self.netlist;

        // 1. Drive primary inputs, constants and sequential outputs.
        for (net_id, net) in netlist.nets() {
            match net.driver() {
                Some(Driver::PrimaryInput(pi)) => {
                    self.update_net(net_id.index(), inputs[pi]);
                }
                Some(Driver::Constant(value)) => {
                    self.update_net(net_id.index(), value);
                }
                Some(Driver::Cell(cell_id)) if netlist.cell(cell_id).kind().is_sequential() => {
                    let q = self.state[cell_id.index()];
                    self.update_net(net_id.index(), q);
                }
                _ => {}
            }
        }

        // 2. Evaluate combinational logic in topological order.
        let mut scratch_inputs = Vec::with_capacity(3);
        for idx in 0..self.order.len() {
            let cell_id = self.order[idx];
            let cell = netlist.cell(cell_id);
            scratch_inputs.clear();
            scratch_inputs.extend(cell.inputs().iter().map(|n| self.net_values[n.index()]));
            let previous = self.net_values[cell.output().index()];
            let value = cell.kind().evaluate(&scratch_inputs, previous);
            self.update_net(cell.output().index(), value);
        }

        // 3. Capture the next state of sequential cells (D sampled at the end
        //    of the cycle, visible on Q at the start of the next cycle).
        for (cell_id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                self.state[cell_id.index()] = self.net_values[cell.inputs()[0].index()];
            }
        }
    }

    /// One cycle of the level-scheduled engine.
    ///
    /// The first step ever evaluates every cell unconditionally: the
    /// all-zero reset values are not yet consistent with the cell functions,
    /// so "inputs unchanged implies output unchanged" only holds from the
    /// second step on.  The same first step credits the one-shot toggles of
    /// nets folded to `true`.  Subsequent steps sweep only the *active*
    /// cells — those that have ever seen an input change — in level order;
    /// quiet cones are never visited.  On the rare step that activates a new
    /// cell (a previously quiet net's first toggle), the engine falls back
    /// to one full level-ordered walk, which is idempotent for every cell
    /// already evaluated this step (unchanged inputs reproduce the same
    /// output, so no toggle is double-counted) and evaluates the newly
    /// activated cells in correct level order.
    fn step_scheduled(&mut self, inputs: &[bool]) {
        let mut st = self.scheduled.take().expect("scheduled mode");
        let opt = st.opt;
        let schedule = opt.schedule();
        let first = !st.settled;
        if first {
            st.settled = true;
            for &net in opt.one_shot_toggles() {
                self.net_toggles[net as usize] += 1;
            }
        }

        // 1. Drive primary inputs, constants and sequential outputs.
        for &(net, pi) in &schedule.input_drives {
            scheduled_write(
                opt,
                &mut self.net_values,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                net,
                inputs[pi as usize],
            );
        }
        for &(net, value) in &schedule.constant_drives {
            scheduled_write(
                opt,
                &mut self.net_values,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                net,
                value,
            );
        }
        for &(net, slot) in &schedule.seq_drives {
            scheduled_write(
                opt,
                &mut self.net_values,
                &mut self.net_toggles,
                &mut st.is_active,
                &mut st.newly,
                &mut st.fanout_active,
                st.identity,
                net,
                self.state[slot as usize],
            );
        }

        // 2. Evaluate combinational logic in level order.
        let mut full_walk = first || !st.newly.is_empty();
        if !full_walk {
            for i in 0..st.active_cells.len() {
                let cell = schedule.cells[st.active_cells[i] as usize];
                let arity = cell.arity as usize;
                let mut values = [false; 3];
                for (slot, &net) in values.iter_mut().zip(&cell.inputs[..arity]) {
                    *slot = self.net_values[net as usize];
                }
                let previous = self.net_values[cell.output as usize];
                let value = cell.kind.evaluate(&values[..arity], previous);
                scheduled_write(
                    opt,
                    &mut self.net_values,
                    &mut self.net_toggles,
                    &mut st.is_active,
                    &mut st.newly,
                    &mut st.fanout_active,
                    st.identity,
                    cell.output,
                    value,
                );
                // A quiet net toggled for the first time: its newly
                // activated consumers sit at strictly higher levels than
                // everything swept so far, so every evaluation up to here
                // used correct inputs.  Stop and catch up with a full walk
                // (idempotent for the already-evaluated prefix, and it
                // evaluates the activated cells in correct level order).
                if !st.newly.is_empty() {
                    break;
                }
            }
            full_walk = !st.newly.is_empty();
        }
        if full_walk {
            for ci in 0..schedule.cells.len() {
                let cell = schedule.cells[ci];
                let arity = cell.arity as usize;
                let mut values = [false; 3];
                for (slot, &net) in values.iter_mut().zip(&cell.inputs[..arity]) {
                    *slot = self.net_values[net as usize];
                }
                let previous = self.net_values[cell.output as usize];
                let value = cell.kind.evaluate(&values[..arity], previous);
                scheduled_write(
                    opt,
                    &mut self.net_values,
                    &mut self.net_toggles,
                    &mut st.is_active,
                    &mut st.newly,
                    &mut st.fanout_active,
                    st.identity,
                    cell.output,
                    value,
                );
            }
        }
        if !st.newly.is_empty() {
            st.active_cells.append(&mut st.newly);
            st.active_cells.sort_unstable();
        }

        // 3. Capture the next state of sequential cells.
        for &(slot, d) in &schedule.seq_captures {
            self.state[slot as usize] = self.net_values[d as usize];
        }
        self.scheduled = Some(st);
    }

    /// Simulates one cycle per entry of `vectors`.
    pub fn run<I, V>(&mut self, vectors: I)
    where
        I: IntoIterator<Item = V>,
        V: AsRef<[bool]>,
    {
        for vector in vectors {
            self.step(vector.as_ref());
        }
    }

    fn update_net(&mut self, net_index: usize, value: bool) {
        if self.net_values[net_index] == value {
            return;
        }
        self.net_values[net_index] = value;
        self.net_toggles[net_index] += 1;
    }

    /// Current logic values of the primary outputs, in declaration order
    /// (always the *original* netlist's outputs, also in scheduled mode).
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|&n| self.net_value(n))
            .collect()
    }

    /// Current logic value of an arbitrary net of the original netlist.
    #[must_use]
    pub fn net_value(&self, net: crate::netlist::NetId) -> bool {
        match &self.scheduled {
            None => self.net_values[net.index()],
            Some(st) => match st.opt.fate(net) {
                NetFate::Kept(kept) => self.net_values[kept.index()],
                NetFate::Folded { settles_to } => st.settled && settles_to,
            },
        }
    }

    /// Snapshot of the accumulated activity and energy.
    #[must_use]
    pub fn report(&self) -> ActivityReport {
        self.tables
            .report_from_counts(&self.net_toggles, self.cycles)
    }

    /// Toggle counts per net since the last counter reset, indexed by net.
    ///
    /// This is the integer quantity the equivalence contract with the packed
    /// engine is stated in: identical per-net counts imply bit-identical
    /// energies through [`EnergyTables::report_from_counts`].
    #[must_use]
    pub fn net_toggle_counts(&self) -> &[u64] {
        &self.net_toggles
    }

    /// The precomputed per-net energy tables used by this simulator.
    #[must_use]
    pub fn energy_tables(&self) -> &EnergyTables {
        &self.tables
    }

    /// Resets activity counters (but keeps the current logic state), so a
    /// warm-up phase can be excluded from measurements.
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.net_toggles.fill(0);
    }

    /// Resets the simulator to its freshly-constructed state: all nets and
    /// sequential state back to zero, counters cleared.
    ///
    /// A reset simulator is observably identical to a newly constructed one
    /// — the first step after a reset re-settles constants and re-credits
    /// the pass pipeline's one-shot toggles, exactly like a fresh instance.
    /// The scheduled engine's activation sets are deliberately *kept*:
    /// activity skipping is monotone-safe (evaluating an already-active cell
    /// whose inputs did not change reproduces its output and counts
    /// nothing), so a warm active set only affects speed, never results.
    /// This makes one simulator reusable across independent measurements
    /// without paying construction cost per run.
    pub fn reset(&mut self) {
        self.net_values.fill(false);
        self.state.fill(false);
        self.reset_counters();
        if let Some(st) = self.scheduled.as_mut() {
            st.settled = false;
        }
    }
}

/// Convenience: simulate `vectors` on a fresh simulator and return the report.
///
/// # Errors
///
/// Propagates netlist validation errors.
pub fn simulate<V: AsRef<[bool]>>(
    netlist: &Netlist,
    library: &CellLibrary,
    vectors: impl IntoIterator<Item = V>,
) -> Result<ActivityReport, NetlistError> {
    let mut sim = Simulator::new(netlist, library)?;
    sim.run(vectors);
    Ok(sim.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell("u_xor", CellKind::Xor2, &[a, b], y).unwrap();
        n.mark_output(y).unwrap();
        n
    }

    #[test]
    fn xor_evaluates_correctly_over_cycles() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[true, false]);
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn constant_inputs_consume_only_clock_and_leakage() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        // Same vector repeatedly: after the first cycle nothing toggles.
        sim.run(std::iter::repeat_n([false, false], 10));
        let report = sim.report();
        assert_eq!(report.toggles, 0);
        assert_eq!(report.energy.internal, Energy::ZERO);
        assert_eq!(report.energy.net_load, Energy::ZERO);
        assert!(report.energy.leakage > Energy::ZERO);
        assert_eq!(report.cycles, 10);
    }

    #[test]
    fn toggling_inputs_accumulate_energy() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..100_u32 {
            sim.step(&[i % 2 == 0, false]);
        }
        let report = sim.report();
        assert!(report.energy.internal > Energy::ZERO);
        assert!(report.energy.net_load > Energy::ZERO);
        assert!(report.toggles >= 100);
        assert!(report.toggles_by_kind[&CellKind::Xor2] > 0);
        assert!(report.energy_per_cycle() > Energy::ZERO);
        assert!(report.toggles_per_cycle() >= 1.0);
    }

    #[test]
    fn dff_delays_data_by_one_cycle() {
        let mut n = Netlist::new("pipe");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
        // Q still shows the reset value during the first cycle.
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[false]);
        // Now Q shows the value captured at the end of cycle 1.
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[false]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn sequential_cells_burn_clock_energy_every_cycle() {
        let mut n = Netlist::new("ff");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let report = simulate(&n, &lib, std::iter::repeat_n([false], 50)).unwrap();
        let expected = lib.parameters(CellKind::Dff).clock_energy * 50.0;
        assert!((report.energy.clock.as_joules() - expected.as_joules()).abs() < 1e-24);
    }

    #[test]
    fn tri_state_bus_holds_value() {
        let mut n = Netlist::new("bus");
        let a = n.add_input("a");
        let en = n.add_input("en");
        let y = n.add_net("y");
        n.add_cell("u_tri", CellKind::TriBuf, &[a, en], y).unwrap();
        n.mark_output(y).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![true]);
        // Disable: output holds even though A falls.
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![true]);
    }

    #[test]
    fn reset_counters_keeps_state() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, false]);
        sim.reset_counters();
        assert_eq!(sim.report().cycles, 0);
        assert_eq!(sim.report().total_energy(), Energy::ZERO);
        // State preserved: stepping with the same vector causes no toggles.
        sim.step(&[true, false]);
        assert_eq!(sim.report().toggles, 0);
    }

    #[test]
    fn average_power_uses_cycle_time() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..10_u32 {
            sim.step(&[i % 2 == 0, i % 3 == 0]);
        }
        let report = sim.report();
        let power = report.average_power(TimeSpan::from_nanoseconds(7.5));
        assert!(power.as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "primary-input values")]
    fn wrong_input_vector_length_panics() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
    }

    /// A netlist exercising every pass at once: a folded-low cone, a
    /// folded-high primary output (one-shot toggle), duplicate gates and a
    /// flip-flop.
    fn mixed_netlist() -> Netlist {
        let mut n = Netlist::new("mix");
        let tie1 = n.add_constant("tie1", true);
        let a = n.add_input("a");
        let b = n.add_input("b");
        let inv = n.add_net("inv"); // !1: folds to 0
        let high = n.add_net("high"); // buffered 1: folds to 1, one-shot
        let x1 = n.add_net("x1");
        let x2 = n.add_net("x2"); // duplicate of x1: merged
        let y = n.add_net("y");
        let q = n.add_net("q");
        n.add_cell("u_inv", CellKind::Inv, &[tie1], inv).unwrap();
        n.add_cell("u_buf", CellKind::Buf, &[tie1], high).unwrap();
        n.add_cell("u1", CellKind::And2, &[a, b], x1).unwrap();
        n.add_cell("u2", CellKind::And2, &[a, b], x2).unwrap();
        n.add_cell("u_or", CellKind::Or2, &[x1, inv], y).unwrap();
        n.add_cell("u_ff", CellKind::Dff, &[x2], q).unwrap();
        n.mark_output(y).unwrap();
        n.mark_output(q).unwrap();
        n.mark_output(high).unwrap();
        n
    }

    #[test]
    fn scheduled_engine_matches_walk_engine_bit_exactly() {
        let n = mixed_netlist();
        let lib = CellLibrary::default();
        let optimized = crate::passes::PassPipeline::standard().run(&n).unwrap();
        assert!(optimized.report().final_cells < n.cell_count());
        let mut raw = Simulator::new(&n, &lib).unwrap();
        let mut opt = Simulator::with_passes(&n, &optimized, &lib).unwrap();
        let vectors = [
            [false, false],
            [true, true],
            [true, false],
            [true, false],
            [false, true],
            [true, true],
        ];
        for vector in &vectors {
            raw.step(vector);
            opt.step(vector);
            assert_eq!(raw.output_values(), opt.output_values());
        }
        assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        assert_eq!(raw.report(), opt.report());
    }

    #[test]
    fn scheduled_warmup_and_reset_counters_match_walk_semantics() {
        let n = mixed_netlist();
        let lib = CellLibrary::default();
        let optimized = crate::passes::PassPipeline::standard().run(&n).unwrap();
        let mut raw = Simulator::new(&n, &lib).unwrap();
        let mut opt = Simulator::with_passes(&n, &optimized, &lib).unwrap();
        // Warm up (the raw settle toggles and the one-shots land here), then
        // reset and measure: both engines discard the same first-step
        // transient, so measured counts still agree.
        for sim in [&mut raw, &mut opt] {
            sim.step(&[true, false]);
            sim.step(&[false, true]);
            sim.reset_counters();
            sim.step(&[true, true]);
            sim.step(&[false, false]);
        }
        assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        assert_eq!(raw.report(), opt.report());
    }

    #[test]
    fn empty_report_is_zero() {
        let report = ActivityReport {
            cycles: 0,
            toggles: 0,
            energy: EnergyBreakdown::default(),
            toggles_by_kind: BTreeMap::new(),
        };
        assert_eq!(report.energy_per_cycle(), Energy::ZERO);
        assert_eq!(report.toggles_per_cycle(), 0.0);
    }
}
