//! Cycle-driven logic simulation with switching-energy accounting.
//!
//! This is the stand-in for the paper's Synopsys Power Compiler runs: the
//! netlist is evaluated one clock cycle at a time, every net toggle is
//! counted, and each toggle is charged with the driving cell's internal
//! energy plus the energy to (dis)charge the input pins it fans out to.
//! Sequential cells additionally burn clock-pin energy every cycle and every
//! cell contributes its (tiny) leakage energy.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::{Energy, Power, TimeSpan};

use crate::cells::CellKind;
use crate::library::CellLibrary;
use crate::netlist::{CellId, Driver, Netlist, NetlistError};

/// Breakdown of the energy consumed during a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy dissipated inside cells when their outputs toggle.
    pub internal: Energy,
    /// Energy dissipated charging and discharging input-pin loads.
    pub net_load: Energy,
    /// Clock-tree energy of sequential cells (every cycle).
    pub clock: Energy,
    /// Leakage energy (every cycle, all cells).
    pub leakage: Energy,
}

impl EnergyBreakdown {
    /// Total energy across all categories.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.internal + self.net_load + self.clock + self.leakage
    }
}

/// Result of simulating a netlist over a number of cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Number of simulated clock cycles.
    pub cycles: u64,
    /// Total number of net toggles observed.
    pub toggles: u64,
    /// Energy broken down by mechanism.
    pub energy: EnergyBreakdown,
    /// Toggle counts per cell kind (driver of the toggling net).
    pub toggles_by_kind: BTreeMap<CellKind, u64>,
}

impl ActivityReport {
    /// Total energy of the run.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Average energy per cycle.
    #[must_use]
    pub fn energy_per_cycle(&self) -> Energy {
        if self.cycles == 0 {
            Energy::ZERO
        } else {
            self.total_energy() / self.cycles as f64
        }
    }

    /// Average switching activity: toggles per cycle.
    #[must_use]
    pub fn toggles_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles as f64 / self.cycles as f64
        }
    }

    /// Average power when the run is clocked at the given period.
    #[must_use]
    pub fn average_power(&self, cycle_time: TimeSpan) -> Power {
        self.total_energy().over(TimeSpan::from_seconds(
            cycle_time.as_seconds() * self.cycles as f64,
        ))
    }
}

/// Cycle-driven simulator for one [`Netlist`].
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::library::CellLibrary;
/// use fabric_power_netlist::netlist::Netlist;
/// use fabric_power_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("inv");
/// let a = n.add_input("a");
/// let y = n.add_net("y");
/// n.add_cell("u_inv", CellKind::Inv, &[a], y)?;
/// n.mark_output(y)?;
///
/// let library = CellLibrary::calibrated_018um();
/// let mut sim = Simulator::new(&n, &library)?;
/// sim.step(&[false]);
/// sim.step(&[true]);
/// assert_eq!(sim.output_values(), vec![false]);
/// assert!(sim.report().total_energy().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    library: &'a CellLibrary,
    /// Combinational evaluation order.
    order: Vec<CellId>,
    /// Current logic value of every net.
    net_values: Vec<bool>,
    /// Stored state of sequential cells, indexed by cell id.
    state: Vec<bool>,
    /// Running counters.
    cycles: u64,
    toggles: u64,
    energy: EnergyBreakdown,
    toggles_by_kind: BTreeMap<CellKind, u64>,
    /// Per-cycle constant energy (clock + leakage), precomputed.
    per_cycle_clock: Energy,
    per_cycle_leakage: Energy,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator, validating the netlist in the process.
    ///
    /// All nets start at logic `0`, all flip-flops start cleared.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary) -> Result<Self, NetlistError> {
        let order = netlist.validate()?;
        let mut per_cycle_clock = Energy::ZERO;
        let mut per_cycle_leakage = Energy::ZERO;
        for (_, cell) in netlist.cells() {
            let params = library.parameters(cell.kind());
            per_cycle_clock += params.clock_energy;
            per_cycle_leakage += params.leakage_energy_per_cycle;
        }
        Ok(Self {
            netlist,
            library,
            order,
            net_values: vec![false; netlist.net_count()],
            state: vec![false; netlist.cell_count()],
            cycles: 0,
            toggles: 0,
            energy: EnergyBreakdown::default(),
            toggles_by_kind: BTreeMap::new(),
            per_cycle_clock,
            per_cycle_leakage,
        })
    }

    /// Simulates one clock cycle with the given primary-input values.
    ///
    /// The order of `inputs` matches [`Netlist::primary_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs().len(),
            "expected {} primary-input values, got {}",
            self.netlist.primary_inputs().len(),
            inputs.len()
        );
        self.cycles += 1;
        self.energy.clock += self.per_cycle_clock;
        self.energy.leakage += self.per_cycle_leakage;

        // Copy the netlist reference out of `self` so the shared borrow of the
        // netlist data does not conflict with `&mut self` calls below.
        let netlist = self.netlist;

        // 1. Drive primary inputs, constants and sequential outputs.
        for (net_id, net) in netlist.nets() {
            match net.driver() {
                Some(Driver::PrimaryInput(pi)) => {
                    self.update_net(net_id.index(), inputs[pi]);
                }
                Some(Driver::Constant(value)) => {
                    self.update_net(net_id.index(), value);
                }
                Some(Driver::Cell(cell_id)) if netlist.cell(cell_id).kind().is_sequential() => {
                    let q = self.state[cell_id.index()];
                    self.update_net(net_id.index(), q);
                }
                _ => {}
            }
        }

        // 2. Evaluate combinational logic in topological order.
        let mut scratch_inputs = Vec::with_capacity(3);
        for idx in 0..self.order.len() {
            let cell_id = self.order[idx];
            let cell = netlist.cell(cell_id);
            scratch_inputs.clear();
            scratch_inputs.extend(cell.inputs().iter().map(|n| self.net_values[n.index()]));
            let previous = self.net_values[cell.output().index()];
            let value = cell.kind().evaluate(&scratch_inputs, previous);
            self.update_net(cell.output().index(), value);
        }

        // 3. Capture the next state of sequential cells (D sampled at the end
        //    of the cycle, visible on Q at the start of the next cycle).
        for (cell_id, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                self.state[cell_id.index()] = self.net_values[cell.inputs()[0].index()];
            }
        }
    }

    /// Simulates one cycle per entry of `vectors`.
    pub fn run<I, V>(&mut self, vectors: I)
    where
        I: IntoIterator<Item = V>,
        V: AsRef<[bool]>,
    {
        for vector in vectors {
            self.step(vector.as_ref());
        }
    }

    fn update_net(&mut self, net_index: usize, value: bool) {
        if self.net_values[net_index] == value {
            return;
        }
        self.net_values[net_index] = value;
        self.toggles += 1;

        let netlist = self.netlist;
        let library = self.library;
        let net = netlist.net(crate::netlist::NetId(net_index));
        // Internal energy of the driving cell, if a cell drives this net.
        if let Some(Driver::Cell(cell_id)) = net.driver() {
            let kind = netlist.cell(cell_id).kind();
            self.energy.internal += library.parameters(kind).internal_energy;
            *self.toggles_by_kind.entry(kind).or_insert(0) += 1;
        }
        // Load energy of every input pin attached to this net.
        for &(load_cell, _pin) in net.loads() {
            let kind = netlist.cell(load_cell).kind();
            self.energy.net_load += library.pin_load_energy(kind, 1);
        }
    }

    /// Current logic values of the primary outputs, in declaration order.
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .primary_outputs()
            .iter()
            .map(|n| self.net_values[n.index()])
            .collect()
    }

    /// Current logic value of an arbitrary net.
    #[must_use]
    pub fn net_value(&self, net: crate::netlist::NetId) -> bool {
        self.net_values[net.index()]
    }

    /// Snapshot of the accumulated activity and energy.
    #[must_use]
    pub fn report(&self) -> ActivityReport {
        ActivityReport {
            cycles: self.cycles,
            toggles: self.toggles,
            energy: self.energy.clone(),
            toggles_by_kind: self.toggles_by_kind.clone(),
        }
    }

    /// Resets activity counters (but keeps the current logic state), so a
    /// warm-up phase can be excluded from measurements.
    pub fn reset_counters(&mut self) {
        self.cycles = 0;
        self.toggles = 0;
        self.energy = EnergyBreakdown::default();
        self.toggles_by_kind.clear();
    }
}

/// Convenience: simulate `vectors` on a fresh simulator and return the report.
///
/// # Errors
///
/// Propagates netlist validation errors.
pub fn simulate<V: AsRef<[bool]>>(
    netlist: &Netlist,
    library: &CellLibrary,
    vectors: impl IntoIterator<Item = V>,
) -> Result<ActivityReport, NetlistError> {
    let mut sim = Simulator::new(netlist, library)?;
    sim.run(vectors);
    Ok(sim.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    fn xor_netlist() -> Netlist {
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell("u_xor", CellKind::Xor2, &[a, b], y).unwrap();
        n.mark_output(y).unwrap();
        n
    }

    #[test]
    fn xor_evaluates_correctly_over_cycles() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[true, false]);
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn constant_inputs_consume_only_clock_and_leakage() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        // Same vector repeatedly: after the first cycle nothing toggles.
        sim.run(std::iter::repeat_n([false, false], 10));
        let report = sim.report();
        assert_eq!(report.toggles, 0);
        assert_eq!(report.energy.internal, Energy::ZERO);
        assert_eq!(report.energy.net_load, Energy::ZERO);
        assert!(report.energy.leakage > Energy::ZERO);
        assert_eq!(report.cycles, 10);
    }

    #[test]
    fn toggling_inputs_accumulate_energy() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..100_u32 {
            sim.step(&[i % 2 == 0, false]);
        }
        let report = sim.report();
        assert!(report.energy.internal > Energy::ZERO);
        assert!(report.energy.net_load > Energy::ZERO);
        assert!(report.toggles >= 100);
        assert!(report.toggles_by_kind[&CellKind::Xor2] > 0);
        assert!(report.energy_per_cycle() > Energy::ZERO);
        assert!(report.toggles_per_cycle() >= 1.0);
    }

    #[test]
    fn dff_delays_data_by_one_cycle() {
        let mut n = Netlist::new("pipe");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
        // Q still shows the reset value during the first cycle.
        assert_eq!(sim.output_values(), vec![false]);
        sim.step(&[false]);
        // Now Q shows the value captured at the end of cycle 1.
        assert_eq!(sim.output_values(), vec![true]);
        sim.step(&[false]);
        assert_eq!(sim.output_values(), vec![false]);
    }

    #[test]
    fn sequential_cells_burn_clock_energy_every_cycle() {
        let mut n = Netlist::new("ff");
        let d = n.add_input("d");
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let lib = CellLibrary::default();
        let report = simulate(&n, &lib, std::iter::repeat_n([false], 50)).unwrap();
        let expected = lib.parameters(CellKind::Dff).clock_energy * 50.0;
        assert!((report.energy.clock.as_joules() - expected.as_joules()).abs() < 1e-24);
    }

    #[test]
    fn tri_state_bus_holds_value() {
        let mut n = Netlist::new("bus");
        let a = n.add_input("a");
        let en = n.add_input("en");
        let y = n.add_net("y");
        n.add_cell("u_tri", CellKind::TriBuf, &[a, en], y).unwrap();
        n.mark_output(y).unwrap();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(), vec![true]);
        // Disable: output holds even though A falls.
        sim.step(&[false, false]);
        assert_eq!(sim.output_values(), vec![true]);
    }

    #[test]
    fn reset_counters_keeps_state() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true, false]);
        sim.reset_counters();
        assert_eq!(sim.report().cycles, 0);
        assert_eq!(sim.report().total_energy(), Energy::ZERO);
        // State preserved: stepping with the same vector causes no toggles.
        sim.step(&[true, false]);
        assert_eq!(sim.report().toggles, 0);
    }

    #[test]
    fn average_power_uses_cycle_time() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        for i in 0..10_u32 {
            sim.step(&[i % 2 == 0, i % 3 == 0]);
        }
        let report = sim.report();
        let power = report.average_power(TimeSpan::from_nanoseconds(7.5));
        assert!(power.as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "primary-input values")]
    fn wrong_input_vector_length_panics() {
        let n = xor_netlist();
        let lib = CellLibrary::default();
        let mut sim = Simulator::new(&n, &lib).unwrap();
        sim.step(&[true]);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = ActivityReport {
            cycles: 0,
            toggles: 0,
            energy: EnergyBreakdown::default(),
            toggles_by_kind: BTreeMap::new(),
        };
        assert_eq!(report.energy_per_cycle(), Energy::ZERO);
        assert_eq!(report.toggles_per_cycle(), 0.0);
    }
}
