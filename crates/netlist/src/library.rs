//! Standard-cell electrical library.
//!
//! Associates every [`CellKind`] with the electrical quantities the power
//! model needs: input-pin capacitance, internal (self-load) switching energy
//! per output transition, and — for sequential cells — the energy burnt by
//! the clock pin every cycle regardless of data activity.
//!
//! The default calibration, [`CellLibrary::calibrated_018um`], is tuned so
//! that characterizing the paper's node switches lands in the same energy
//! range as the published Table 1 (hundreds of fJ for a crosspoint, one to
//! two pJ for the 2×2 switches). The absolute values are not the point —
//! the downstream analysis only relies on ordering and scaling trends —
//! but staying in range keeps the regenerated figures comparable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::{Capacitance, Energy, Voltage};
use fabric_power_tech::Technology;

use crate::cells::CellKind;

/// Electrical parameters of one standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParameters {
    /// Capacitance presented by each input pin.
    pub input_capacitance: Capacitance,
    /// Energy dissipated inside the cell (short-circuit + internal nodes +
    /// self-load) for one output transition.
    pub internal_energy: Energy,
    /// Energy dissipated by the clock pin every clock cycle (sequential cells
    /// only; zero for combinational cells).
    pub clock_energy: Energy,
    /// Static leakage energy per clock cycle.
    pub leakage_energy_per_cycle: Energy,
}

impl CellParameters {
    /// Convenience constructor for a purely combinational cell.
    #[must_use]
    pub fn combinational(input_capacitance: Capacitance, internal_energy: Energy) -> Self {
        Self {
            input_capacitance,
            internal_energy,
            clock_energy: Energy::ZERO,
            leakage_energy_per_cycle: Energy::ZERO,
        }
    }
}

/// A complete standard-cell library: parameters for every [`CellKind`].
///
/// # Examples
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::library::CellLibrary;
///
/// let lib = CellLibrary::calibrated_018um();
/// let nand = lib.parameters(CellKind::Nand2);
/// assert!(nand.internal_energy.as_femtojoules() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    supply_voltage: Voltage,
    cells: BTreeMap<CellKind, CellParameters>,
}

impl CellLibrary {
    /// Builds a library from an explicit cell map.
    ///
    /// # Panics
    ///
    /// Panics if any [`CellKind`] is missing from `cells`; a partial library
    /// would make netlist power estimation silently wrong.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        supply_voltage: Voltage,
        cells: BTreeMap<CellKind, CellParameters>,
    ) -> Self {
        for kind in CellKind::ALL {
            assert!(
                cells.contains_key(&kind),
                "cell library is missing parameters for {kind}"
            );
        }
        Self {
            name: name.into(),
            supply_voltage,
            cells,
        }
    }

    /// The calibrated 0.18 µm / 3.3 V library used by default throughout the
    /// workspace (the stand-in for the paper's Synopsys flow).
    #[must_use]
    pub fn calibrated_018um() -> Self {
        Self::scaled_library(
            "calibrated 0.18um 3.3V",
            Voltage::from_volts(3.3),
            // Effective switched capacitance of a minimum-size 0.18um gate in
            // femtofarads; chosen so one gate transition costs ~25-90 fJ at
            // 3.3V, which puts multi-hundred-gate switches in the paper's
            // Table 1 energy range.
            1.0,
        )
    }

    /// A library scaled for an arbitrary [`Technology`]. The per-cell
    /// capacitances keep their relative sizes; only the absolute scale and
    /// supply voltage change.
    #[must_use]
    pub fn for_technology(technology: &Technology) -> Self {
        // Effective capacitance roughly scales with feature size relative to
        // the 0.18um reference.
        let scale = technology.feature_size().as_micrometers() / 0.18;
        Self::scaled_library(
            format!("derived from {}", technology.name()),
            technology.supply_voltage(),
            scale,
        )
    }

    fn scaled_library(name: impl Into<String>, vdd: Voltage, scale: f64) -> Self {
        // Relative effective switched capacitance per cell, in fF, at the
        // 0.18um reference point. Ratios follow typical standard-cell
        // libraries: XOR/MUX cost more than NAND/NOR, flip-flops dominate.
        let combinational: &[(CellKind, f64, f64)] = &[
            // (kind, input pin cap fF, internal switched cap fF)
            (CellKind::Inv, 1.8, 3.0),
            (CellKind::Buf, 1.8, 4.5),
            (CellKind::Nand2, 2.0, 4.0),
            (CellKind::Nor2, 2.0, 4.2),
            (CellKind::And2, 2.0, 5.5),
            (CellKind::Or2, 2.0, 5.7),
            (CellKind::And3, 2.2, 7.0),
            (CellKind::Or3, 2.2, 7.4),
            (CellKind::Xor2, 3.0, 8.5),
            (CellKind::Xnor2, 3.0, 8.5),
            (CellKind::Mux2, 2.4, 7.5),
            (CellKind::TriBuf, 2.2, 6.0),
            (CellKind::PassGate, 1.5, 2.5),
        ];
        let sequential: &[(CellKind, f64, f64, f64)] = &[
            // (kind, input pin cap fF, internal switched cap fF, clock cap fF)
            (CellKind::Dff, 2.2, 14.0, 3.0),
            (CellKind::Latch, 2.0, 8.0, 1.5),
        ];

        let energy =
            |cap_ff: f64| Capacitance::from_femtofarads(cap_ff * scale).switching_energy(vdd);
        // Leakage at 0.18um is negligible next to dynamic energy; keep a tiny
        // non-zero value so the accounting path is exercised.
        let leakage = energy(0.002);

        let mut cells = BTreeMap::new();
        for &(kind, pin, internal) in combinational {
            cells.insert(
                kind,
                CellParameters {
                    input_capacitance: Capacitance::from_femtofarads(pin * scale),
                    internal_energy: energy(internal),
                    clock_energy: Energy::ZERO,
                    leakage_energy_per_cycle: leakage,
                },
            );
        }
        for &(kind, pin, internal, clock) in sequential {
            cells.insert(
                kind,
                CellParameters {
                    input_capacitance: Capacitance::from_femtofarads(pin * scale),
                    internal_energy: energy(internal),
                    clock_energy: energy(clock),
                    leakage_energy_per_cycle: leakage,
                },
            );
        }
        Self::new(name, vdd, cells)
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rail-to-rail supply voltage the energies were computed at.
    #[must_use]
    pub fn supply_voltage(&self) -> Voltage {
        self.supply_voltage
    }

    /// Parameters of one cell kind.
    ///
    /// # Panics
    ///
    /// Never panics for libraries built through [`CellLibrary::new`], which
    /// enforces completeness.
    #[must_use]
    pub fn parameters(&self, kind: CellKind) -> CellParameters {
        self.cells[&kind]
    }

    /// Energy to charge or discharge `fanout` input pins of cell kind `load`
    /// once (used by the simulator for net-load energy).
    #[must_use]
    pub fn pin_load_energy(&self, load: CellKind, fanout: usize) -> Energy {
        let pin = self.parameters(load).input_capacitance;
        (pin * fanout as f64).switching_energy(self.supply_voltage)
    }

    /// Iterates over all cells and their parameters in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, &CellParameters)> + '_ {
        self.cells.iter().map(|(k, p)| (*k, p))
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::calibrated_018um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_covers_every_cell() {
        let lib = CellLibrary::default();
        for kind in CellKind::ALL {
            let p = lib.parameters(kind);
            assert!(p.input_capacitance.as_farads() > 0.0, "{kind} pin cap");
            assert!(p.internal_energy.as_joules() > 0.0, "{kind} energy");
        }
    }

    #[test]
    fn sequential_cells_have_clock_energy() {
        let lib = CellLibrary::default();
        assert!(lib.parameters(CellKind::Dff).clock_energy > Energy::ZERO);
        assert!(lib.parameters(CellKind::Latch).clock_energy > Energy::ZERO);
        assert_eq!(lib.parameters(CellKind::Nand2).clock_energy, Energy::ZERO);
    }

    #[test]
    fn xor_costs_more_than_nand() {
        let lib = CellLibrary::default();
        assert!(
            lib.parameters(CellKind::Xor2).internal_energy
                > lib.parameters(CellKind::Nand2).internal_energy
        );
        assert!(
            lib.parameters(CellKind::Dff).internal_energy
                > lib.parameters(CellKind::Mux2).internal_energy
        );
        assert!(
            lib.parameters(CellKind::PassGate).internal_energy
                < lib.parameters(CellKind::TriBuf).internal_energy
        );
    }

    #[test]
    fn energies_are_in_the_tens_of_femtojoule_range() {
        let lib = CellLibrary::default();
        let nand = lib.parameters(CellKind::Nand2).internal_energy;
        assert!(nand.as_femtojoules() > 5.0, "{nand}");
        assert!(nand.as_femtojoules() < 200.0, "{nand}");
    }

    #[test]
    fn technology_scaling_reduces_energy() {
        let lib_180 = CellLibrary::calibrated_018um();
        let lib_130 = CellLibrary::for_technology(&Technology::generic130());
        assert!(
            lib_130.parameters(CellKind::Nand2).internal_energy
                < lib_180.parameters(CellKind::Nand2).internal_energy
        );
    }

    #[test]
    fn pin_load_energy_scales_with_fanout() {
        let lib = CellLibrary::default();
        let one = lib.pin_load_energy(CellKind::Inv, 1);
        let four = lib.pin_load_energy(CellKind::Inv, 4);
        assert!((four.as_joules() - 4.0 * one.as_joules()).abs() < 1e-27);
        assert_eq!(lib.pin_load_energy(CellKind::Inv, 0), Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "missing parameters")]
    fn incomplete_library_panics() {
        let _ = CellLibrary::new("broken", Voltage::from_volts(1.0), BTreeMap::new());
    }

    #[test]
    fn iter_visits_all_cells_in_order() {
        let lib = CellLibrary::default();
        let kinds: Vec<_> = lib.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds.len(), CellKind::ALL.len());
        let mut sorted = kinds.clone();
        sorted.sort();
        assert_eq!(kinds, sorted);
    }
}
