//! Standard-cell primitives.
//!
//! The paper characterizes its node switches with Synopsys Power Compiler on
//! a 0.18 µm standard-cell library.  We replace that flow with an explicit,
//! minimal standard-cell set: enough combinational gates to build crosspoint
//! switches, 2×2 binary/sorting switches and N-input MUX trees, plus a D
//! flip-flop for the registered data paths.
//!
//! A cell is purely a *kind*; its electrical properties (input capacitance,
//! internal switching energy, clock-pin energy) live in
//! [`crate::library::CellLibrary`] so alternative calibrations can be swapped
//! in without touching netlists.

use serde::{Deserialize, Serialize};

/// The set of standard cells available to circuit generators.
///
/// Every kind drives exactly one output net. Sequential behaviour exists only
/// in [`CellKind::Dff`], which samples its `D` input on the (implicit) rising
/// clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter: `Y = !A`.
    Inv,
    /// Non-inverting buffer: `Y = A`.
    Buf,
    /// 2-input NAND: `Y = !(A & B)`.
    Nand2,
    /// 2-input NOR: `Y = !(A | B)`.
    Nor2,
    /// 2-input AND: `Y = A & B`.
    And2,
    /// 2-input OR: `Y = A | B`.
    Or2,
    /// 3-input AND: `Y = A & B & C`.
    And3,
    /// 3-input OR: `Y = A | B | C`.
    Or3,
    /// 2-input XOR: `Y = A ^ B`.
    Xor2,
    /// 2-input XNOR: `Y = !(A ^ B)`.
    Xnor2,
    /// 2:1 multiplexer: `Y = S ? B : A` (inputs ordered `[A, B, S]`).
    Mux2,
    /// Tri-state buffer: `Y = EN ? A : Y_prev` (inputs ordered `[A, EN]`).
    ///
    /// When disabled the output holds its previous value, modelling the
    /// charge-retaining behaviour of a bus crosspoint.
    TriBuf,
    /// CMOS pass gate: electrically identical behaviour to [`CellKind::TriBuf`]
    /// in this logic-level model, but with the smaller capacitance/energy of a
    /// transmission gate (inputs ordered `[A, EN]`).
    PassGate,
    /// Rising-edge D flip-flop: `Q <= D` (input ordered `[D]`).
    Dff,
    /// Level-sensitive latch used for slowly-changing configuration bits
    /// (allocation state); modelled as a holding element (input ordered `[D]`).
    Latch,
}

impl CellKind {
    /// All cell kinds, useful for exhaustive library definitions and tests.
    pub const ALL: [CellKind; 15] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::And3,
        CellKind::Or3,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::TriBuf,
        CellKind::PassGate,
        CellKind::Dff,
        CellKind::Latch,
    ];

    /// Number of input pins the cell expects (excluding the implicit clock).
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff | CellKind::Latch => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::TriBuf
            | CellKind::PassGate => 2,
            CellKind::And3 | CellKind::Or3 | CellKind::Mux2 => 3,
        }
    }

    /// Whether the cell holds state across clock cycles.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::Latch)
    }

    /// Whether the cell may keep its previous output when not driven
    /// (tri-state / pass-gate behaviour).
    #[must_use]
    pub fn holds_output_when_disabled(self) -> bool {
        matches!(self, CellKind::TriBuf | CellKind::PassGate)
    }

    /// Evaluates the cell's combinational function.
    ///
    /// `previous_output` supplies the retained value for tri-state cells and
    /// the stored state for sequential cells (which are *not* updated here —
    /// the simulator commits flip-flop state at clock edges).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::input_count`].
    #[must_use]
    pub fn evaluate(self, inputs: &[bool], previous_output: bool) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::TriBuf | CellKind::PassGate => {
                if inputs[1] {
                    inputs[0]
                } else {
                    previous_output
                }
            }
            // Combinational view of the sequential cells: the simulator
            // overrides this at clock edges; between edges they hold.
            CellKind::Dff => previous_output,
            CellKind::Latch => {
                // Transparent latch modelled as holding (the generators only
                // use it for configuration bits that change rarely).
                previous_output
            }
        }
    }

    /// Evaluates the cell's combinational function on 64 independent lanes
    /// at once: bit `L` of every word is lane `L`'s logic value, so one call
    /// does the work of 64 [`CellKind::evaluate`] calls.
    ///
    /// `previous_output` supplies the per-lane retained values for tri-state
    /// cells and the stored state words for sequential cells, exactly like
    /// the scalar form.  Bits above the caller's active lane count are
    /// evaluated too (they're free); callers mask them out when counting.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::input_count`].
    #[must_use]
    pub fn evaluate_word(self, inputs: &[u64], previous_output: u64) -> u64 {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self:?} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            // Y = S ? B : A, per lane.
            CellKind::Mux2 => (inputs[2] & inputs[1]) | (!inputs[2] & inputs[0]),
            // Y = EN ? A : Y_prev, per lane.
            CellKind::TriBuf | CellKind::PassGate => {
                (inputs[1] & inputs[0]) | (!inputs[1] & previous_output)
            }
            CellKind::Dff | CellKind::Latch => previous_output,
        }
    }

    /// The position of this kind in [`CellKind::ALL`], usable as a dense
    /// array index (the simulators keep per-kind toggle counters in a `Vec`
    /// instead of a map on the hot path).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CellKind::Inv => 0,
            CellKind::Buf => 1,
            CellKind::Nand2 => 2,
            CellKind::Nor2 => 3,
            CellKind::And2 => 4,
            CellKind::Or2 => 5,
            CellKind::And3 => 6,
            CellKind::Or3 => 7,
            CellKind::Xor2 => 8,
            CellKind::Xnor2 => 9,
            CellKind::Mux2 => 10,
            CellKind::TriBuf => 11,
            CellKind::PassGate => 12,
            CellKind::Dff => 13,
            CellKind::Latch => 14,
        }
    }

    /// A short library-style cell name (e.g. `"NAND2"`).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::And3 => "AND3",
            CellKind::Or3 => "OR3",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::TriBuf => "TRIBUF",
            CellKind::PassGate => "PASSGATE",
            CellKind::Dff => "DFF",
            CellKind::Latch => "LATCH",
        }
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts_match_evaluation_arity() {
        for kind in CellKind::ALL {
            let inputs = vec![false; kind.input_count()];
            // Must not panic.
            let _ = kind.evaluate(&inputs, false);
        }
    }

    #[test]
    fn combinational_truth_tables() {
        use CellKind::*;
        assert!(Inv.evaluate(&[false], false));
        assert!(!Inv.evaluate(&[true], false));
        assert!(Buf.evaluate(&[true], false));
        assert!(Nand2.evaluate(&[true, false], false));
        assert!(!Nand2.evaluate(&[true, true], false));
        assert!(Nor2.evaluate(&[false, false], false));
        assert!(!Nor2.evaluate(&[true, false], false));
        assert!(And2.evaluate(&[true, true], false));
        assert!(!And2.evaluate(&[true, false], false));
        assert!(Or2.evaluate(&[false, true], false));
        assert!(And3.evaluate(&[true, true, true], false));
        assert!(!And3.evaluate(&[true, true, false], false));
        assert!(Or3.evaluate(&[false, false, true], false));
        assert!(!Or3.evaluate(&[false, false, false], false));
        assert!(Xor2.evaluate(&[true, false], false));
        assert!(!Xor2.evaluate(&[true, true], false));
        assert!(Xnor2.evaluate(&[true, true], false));
        assert!(!Xnor2.evaluate(&[true, false], false));
    }

    #[test]
    fn mux2_selects_between_inputs() {
        // inputs = [A, B, S]
        assert!(!CellKind::Mux2.evaluate(&[false, true, false], false));
        assert!(CellKind::Mux2.evaluate(&[false, true, true], false));
        assert!(CellKind::Mux2.evaluate(&[true, false, false], false));
        assert!(!CellKind::Mux2.evaluate(&[true, false, true], false));
    }

    #[test]
    fn tristate_holds_previous_value_when_disabled() {
        // inputs = [A, EN]
        assert!(CellKind::TriBuf.evaluate(&[true, true], false));
        assert!(!CellKind::TriBuf.evaluate(&[false, true], true));
        // Disabled: keeps previous output.
        assert!(CellKind::TriBuf.evaluate(&[false, false], true));
        assert!(!CellKind::PassGate.evaluate(&[true, false], false));
    }

    #[test]
    fn sequential_cells_hold_between_edges() {
        assert!(CellKind::Dff.evaluate(&[false], true));
        assert!(!CellKind::Dff.evaluate(&[true], false));
        assert!(CellKind::Latch.evaluate(&[false], true));
    }

    #[test]
    fn sequential_flags() {
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::Latch.is_sequential());
        assert!(!CellKind::Mux2.is_sequential());
        assert!(CellKind::TriBuf.holds_output_when_disabled());
        assert!(!CellKind::And2.holds_output_when_disabled());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let _ = CellKind::Nand2.evaluate(&[true], false);
    }

    #[test]
    fn index_matches_position_in_all() {
        for (position, kind) in CellKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), position, "{kind}");
        }
    }

    #[test]
    fn evaluate_word_matches_scalar_evaluate_lane_by_lane() {
        // Exhaustive over every kind, every input combination, and both
        // previous-output values, replicated across a few lane positions.
        for kind in CellKind::ALL {
            let arity = kind.input_count();
            for combo in 0..(1_u32 << arity) {
                for previous in [false, true] {
                    let scalar_inputs: Vec<bool> =
                        (0..arity).map(|i| combo >> i & 1 == 1).collect();
                    let expected = kind.evaluate(&scalar_inputs, previous);
                    for lane in [0_usize, 1, 31, 63] {
                        let word_inputs: Vec<u64> = scalar_inputs
                            .iter()
                            .map(|&b| u64::from(b) << lane)
                            .collect();
                        let prev_word = u64::from(previous) << lane;
                        let out = kind.evaluate_word(&word_inputs, prev_word);
                        assert_eq!(
                            out >> lane & 1 == 1,
                            expected,
                            "{kind} combo {combo:b} prev {previous} lane {lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn evaluate_word_wrong_arity_panics() {
        let _ = CellKind::Xor2.evaluate_word(&[0], 0);
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Dff.to_string(), "DFF");
        // Every name is unique.
        let mut names: Vec<_> = CellKind::ALL.iter().map(|k| k.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }
}
