//! Gate-level netlist graph.
//!
//! A [`Netlist`] is a directed graph of standard cells connected by nets.
//! Circuit generators in [`crate::circuits`] build netlists programmatically;
//! the [`crate::sim::Simulator`] evaluates them cycle by cycle and accumulates
//! switching energy.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cells::CellKind;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index of the net (stable for the lifetime of the netlist).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a cell instance within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// The raw index of the cell (stable for the lifetime of the netlist).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Driver {
    /// The net is the `index`-th primary input.
    PrimaryInput(usize),
    /// The net is tied to a constant logic value.
    Constant(bool),
    /// The net is driven by the output of a cell.
    Cell(CellId),
}

/// One net (wire) of the netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    driver: Option<Driver>,
    /// `(cell, input-pin index)` pairs loading this net.
    loads: Vec<(CellId, usize)>,
}

impl Net {
    /// Net name (unique only by convention, not enforced).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver of this net, if any has been connected yet.
    #[must_use]
    pub fn driver(&self) -> Option<Driver> {
        self.driver
    }

    /// The `(cell, pin)` loads attached to this net.
    #[must_use]
    pub fn loads(&self) -> &[(CellId, usize)] {
        &self.loads
    }
}

/// One standard-cell instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    name: String,
    kind: CellKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Cell {
    /// Instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The standard-cell kind.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// Errors raised while constructing or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetlistError {
    /// A cell was connected with the wrong number of input pins.
    WrongInputCount {
        /// Cell kind being instantiated.
        kind: CellKind,
        /// Number of inputs the kind expects.
        expected: usize,
        /// Number of inputs supplied.
        found: usize,
    },
    /// Two drivers were connected to the same net.
    MultipleDrivers {
        /// The doubly-driven net.
        net: NetId,
    },
    /// A net used as a cell input or primary output has no driver.
    UndrivenNet {
        /// The floating net.
        net: NetId,
    },
    /// The combinational logic contains a cycle (not broken by a flip-flop).
    CombinationalLoop {
        /// One net on the cycle, for diagnostics.
        net: NetId,
    },
    /// A referenced net does not belong to this netlist.
    UnknownNet {
        /// The out-of-range net id.
        net: NetId,
    },
    /// A net's load list disagrees with the cells' input pins (corrupted
    /// bookkeeping, e.g. a hand-edited serialized netlist).
    InconsistentLoads {
        /// A net whose load back-references are wrong.
        net: NetId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WrongInputCount {
                kind,
                expected,
                found,
            } => write!(
                f,
                "cell {kind} expects {expected} inputs but {found} were connected"
            ),
            Self::MultipleDrivers { net } => {
                write!(f, "net #{} already has a driver", net.index())
            }
            Self::UndrivenNet { net } => write!(f, "net #{} has no driver", net.index()),
            Self::CombinationalLoop { net } => {
                write!(f, "combinational loop through net #{}", net.index())
            }
            Self::UnknownNet { net } => write!(f, "net #{} does not exist", net.index()),
            Self::InconsistentLoads { net } => write!(
                f,
                "net #{} has load back-references inconsistent with the cell pins",
                net.index()
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A gate-level netlist.
///
/// # Examples
///
/// Build a tiny 2:1 mux circuit and inspect it:
///
/// ```
/// use fabric_power_netlist::cells::CellKind;
/// use fabric_power_netlist::netlist::Netlist;
///
/// # fn main() -> Result<(), fabric_power_netlist::netlist::NetlistError> {
/// let mut n = Netlist::new("tiny");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let sel = n.add_input("sel");
/// let y = n.add_net("y");
/// n.add_cell("u_mux", CellKind::Mux2, &[a, b, sel], y)?;
/// n.mark_output(y)?;
/// n.validate()?;
/// assert_eq!(n.cell_count(), 1);
/// assert_eq!(n.primary_inputs().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nets: Vec::new(),
            cells: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// Netlist name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary-input net and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len());
        let index = self.primary_inputs.len();
        self.nets.push(Net {
            name: name.into(),
            driver: Some(Driver::PrimaryInput(index)),
            loads: Vec::new(),
        });
        self.primary_inputs.push(id);
        id
    }

    /// Adds a net tied to a constant logic value and returns its id.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: Some(Driver::Constant(value)),
            loads: Vec::new(),
        });
        id
    }

    /// Adds an internal net with no driver yet and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            loads: Vec::new(),
        });
        id
    }

    /// Instantiates a cell of `kind` driving `output` from `inputs`.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::WrongInputCount`] if `inputs.len()` does not match the
    ///   cell kind.
    /// * [`NetlistError::UnknownNet`] if any referenced net does not exist.
    /// * [`NetlistError::MultipleDrivers`] if `output` is already driven.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        if inputs.len() != kind.input_count() {
            return Err(NetlistError::WrongInputCount {
                kind,
                expected: kind.input_count(),
                found: inputs.len(),
            });
        }
        for &net in inputs.iter().chain(std::iter::once(&output)) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet { net });
            }
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers { net: output });
        }
        let id = CellId(self.cells.len());
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].loads.push((id, pin));
        }
        self.nets[output.index()].driver = Some(Driver::Cell(id));
        self.cells.push(Cell {
            name: name.into(),
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(id)
    }

    /// Marks a net as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if the net does not exist.
    pub fn mark_output(&mut self, net: NetId) -> Result<(), NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet { net });
        }
        self.primary_outputs.push(net);
        Ok(())
    }

    /// All primary-input nets, in declaration order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Position of `net` in the primary-input vector expected by
    /// [`crate::sim::Simulator::step`], if the net is a primary input.
    #[must_use]
    pub fn primary_input_position(&self, net: NetId) -> Option<usize> {
        match self.nets.get(net.index())?.driver {
            Some(Driver::PrimaryInput(position)) => Some(position),
            _ => None,
        }
    }

    /// All primary-output nets, in declaration order.
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Number of cell instances.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets (including primary inputs and constants).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// A cell by id.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// A net by id.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i), c))
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// Histogram of cell kinds, useful for design reports and tests.
    #[must_use]
    pub fn cell_histogram(&self) -> BTreeMap<CellKind, usize> {
        let mut histogram = BTreeMap::new();
        for cell in &self.cells {
            *histogram.entry(cell.kind).or_insert(0) += 1;
        }
        histogram
    }

    /// Checks structural legality: every used net is driven, every net's
    /// load list agrees with the cells' input pins, and the combinational
    /// logic is acyclic. Returns the evaluation order of the combinational
    /// cells on success (sequential cells are excluded; their outputs act as
    /// sources).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UndrivenNet`] for floating nets used as inputs or outputs.
    /// * [`NetlistError::InconsistentLoads`] if the load back-references do
    ///   not mirror the cell input pins exactly.
    /// * [`NetlistError::CombinationalLoop`] if a cycle exists that is not
    ///   broken by a flip-flop or latch.
    pub fn validate(&self) -> Result<Vec<CellId>, NetlistError> {
        self.check_structure()?;
        self.combinational_order()
    }

    /// The structural half of [`Netlist::validate`]: every read net is
    /// driven and the load lists mirror the cell input pins exactly.  Does
    /// *not* check for combinational loops — callers that compute levels or
    /// an evaluation order anyway get that check for free there.
    pub(crate) fn check_structure(&self) -> Result<(), NetlistError> {
        // Every cell input and every primary output must be driven.
        for cell in &self.cells {
            for &net in &cell.inputs {
                if self.nets[net.index()].driver.is_none() {
                    return Err(NetlistError::UndrivenNet { net });
                }
            }
        }
        for &net in &self.primary_outputs {
            if self.nets[net.index()].driver.is_none() {
                return Err(NetlistError::UndrivenNet { net });
            }
        }
        // The load lists must mirror the cell input pins exactly. Every load
        // entry is checked to point at a pin that really reads its net, each
        // (cell, pin) may appear at most once across all load lists, and the
        // total entry count must match the total pin count — together that
        // is a bijection between load entries and input pins, without
        // materializing and sorting the two triple multisets. The builder
        // API keeps the lists in sync; this guards deserialized or
        // hand-assembled netlists.
        let mut seen_pins = vec![0_u8; self.cells.len()];
        let mut load_entries = 0_usize;
        for (net_idx, net) in self.nets.iter().enumerate() {
            for &(cell, pin) in &net.loads {
                let valid = self
                    .cells
                    .get(cell.index())
                    .and_then(|c| c.inputs.get(pin))
                    .is_some_and(|&input| input.index() == net_idx);
                if !valid {
                    return Err(NetlistError::InconsistentLoads {
                        net: NetId(net_idx),
                    });
                }
                let bit = 1_u8 << pin; // arity is at most 3, so pin < 8
                if seen_pins[cell.index()] & bit != 0 {
                    return Err(NetlistError::InconsistentLoads {
                        net: NetId(net_idx),
                    });
                }
                seen_pins[cell.index()] |= bit;
                load_entries += 1;
            }
        }
        let pin_entries: usize = self.cells.iter().map(|c| c.inputs.len()).sum();
        if load_entries != pin_entries {
            // Some pin has no load back-reference; report its net.
            let net_idx = self
                .cells
                .iter()
                .zip(&seen_pins)
                .flat_map(|(cell, &seen)| {
                    cell.inputs
                        .iter()
                        .enumerate()
                        .filter(move |&(pin, _)| seen & (1 << pin) == 0)
                        .map(|(_, &net)| net.index())
                })
                .next()
                .unwrap_or(0);
            return Err(NetlistError::InconsistentLoads {
                net: NetId(net_idx),
            });
        }
        Ok(())
    }

    /// [`Netlist::validate`] plus the requirement that *every* net has a
    /// driver, even nets nothing reads.  Circuit generators run this under
    /// `debug_assertions`: a generated circuit must not leave floating nets
    /// behind (the optimization passes would silently prune them).
    ///
    /// # Errors
    ///
    /// Everything [`Netlist::validate`] raises, plus
    /// [`NetlistError::UndrivenNet`] for any driverless net.
    pub fn validate_strict(&self) -> Result<Vec<CellId>, NetlistError> {
        for (net_idx, net) in self.nets.iter().enumerate() {
            if net.driver.is_none() {
                return Err(NetlistError::UndrivenNet {
                    net: NetId(net_idx),
                });
            }
        }
        self.validate()
    }

    /// Assigns a combinational level to every cell: sequential cells and
    /// cells fed only by primary inputs, constants and sequential outputs
    /// are level 0; every other combinational cell is one more than the
    /// deepest combinational cell feeding it.  Sequential cells report
    /// `None` (they evaluate outside the combinational schedule).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational logic
    /// contains a cycle.
    pub fn combinational_levels(&self) -> Result<Vec<Option<u32>>, NetlistError> {
        // in-degree of each combinational cell = number of inputs driven by
        // other combinational cells.  The fanout edges live in one flat
        // array with per-cell ranges (counting pass + prefix sums) instead
        // of one heap allocation per cell.
        let mut indegree = vec![0_usize; self.cells.len()];
        let mut edge_counts = vec![0_usize; self.cells.len()];
        let comb_source = |input: NetId| -> Option<usize> {
            if let Some(Driver::Cell(src)) = self.nets[input.index()].driver {
                if !self.cells[src.index()].kind.is_sequential() {
                    return Some(src.index());
                }
            }
            None
        };
        for cell in &self.cells {
            if cell.kind.is_sequential() {
                continue;
            }
            for &input in &cell.inputs {
                if let Some(src) = comb_source(input) {
                    edge_counts[src] += 1;
                }
            }
        }
        let mut edge_start = Vec::with_capacity(self.cells.len() + 1);
        let mut total = 0_usize;
        for &count in &edge_counts {
            edge_start.push(total);
            total += count;
        }
        edge_start.push(total);
        let mut edges = vec![0_usize; total];
        let mut cursor = edge_start.clone();
        for (idx, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_sequential() {
                continue;
            }
            for &input in &cell.inputs {
                if let Some(src) = comb_source(input) {
                    indegree[idx] += 1;
                    edges[cursor[src]] = idx;
                    cursor[src] += 1;
                }
            }
        }
        let mut levels: Vec<Option<u32>> = vec![None; self.cells.len()];
        let mut ready: Vec<usize> = Vec::new();
        for idx in 0..self.cells.len() {
            if !self.cells[idx].kind.is_sequential() && indegree[idx] == 0 {
                levels[idx] = Some(0);
                ready.push(idx);
            }
        }
        let mut resolved = 0_usize;
        while let Some(idx) = ready.pop() {
            resolved += 1;
            let level = levels[idx].expect("ready cells have a level");
            for &dep in &edges[edge_start[idx]..edge_start[idx + 1]] {
                let dep_level = levels[dep].get_or_insert(0);
                *dep_level = (*dep_level).max(level + 1);
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    ready.push(dep);
                }
            }
        }
        let combinational_total = self
            .cells
            .iter()
            .filter(|c| !c.kind.is_sequential())
            .count();
        if resolved != combinational_total {
            // Find a cell still blocked to report a net on the cycle.
            let blocked = (0..self.cells.len())
                .find(|&i| !self.cells[i].kind.is_sequential() && indegree[i] > 0)
                .expect("some combinational cell must remain blocked");
            return Err(NetlistError::CombinationalLoop {
                net: self.cells[blocked].output,
            });
        }
        Ok(levels)
    }

    /// Topologically sorts the combinational cells by `(level, cell id)` —
    /// the level assignment of [`Netlist::combinational_levels`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational logic
    /// contains a cycle.
    pub fn combinational_order(&self) -> Result<Vec<CellId>, NetlistError> {
        let levels = self.combinational_levels()?;
        let mut order: Vec<CellId> = (0..self.cells.len())
            .filter(|&i| !self.cells[i].kind.is_sequential())
            .map(CellId)
            .collect();
        order.sort_by_key(|&c| (levels[c.index()], c.index()));
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_or_netlist() -> (Netlist, NetId, NetId) {
        let mut n = Netlist::new("test");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_net("ab");
        let y = n.add_net("y");
        n.add_cell("u_and", CellKind::And2, &[a, b], ab).unwrap();
        n.add_cell("u_or", CellKind::Or2, &[ab, c], y).unwrap();
        n.mark_output(y).unwrap();
        (n, ab, y)
    }

    #[test]
    fn build_and_validate_simple_netlist() {
        let (n, _, y) = and_or_netlist();
        let order = n.validate().expect("valid netlist");
        assert_eq!(order.len(), 2);
        assert_eq!(n.cell_count(), 2);
        assert_eq!(n.net_count(), 5);
        assert_eq!(n.primary_outputs(), &[y]);
        // AND must evaluate before OR.
        let and_pos = order
            .iter()
            .position(|&c| n.cell(c).kind() == CellKind::And2)
            .unwrap();
        let or_pos = order
            .iter()
            .position(|&c| n.cell(c).kind() == CellKind::Or2)
            .unwrap();
        assert!(and_pos < or_pos);
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let y = n.add_net("y");
        let err = n.add_cell("u", CellKind::Nand2, &[a], y).unwrap_err();
        assert!(matches!(err, NetlistError::WrongInputCount { .. }));
    }

    #[test]
    fn double_driver_is_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let y = n.add_net("y");
        n.add_cell("u1", CellKind::Inv, &[a], y).unwrap();
        let err = n.add_cell("u2", CellKind::Buf, &[a], y).unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers { net: y });
    }

    #[test]
    fn unknown_net_is_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let bogus = NetId(42);
        let y = n.add_net("y");
        assert!(matches!(
            n.add_cell("u", CellKind::Inv, &[bogus], y),
            Err(NetlistError::UnknownNet { .. })
        ));
        assert!(matches!(
            n.add_cell("u", CellKind::Inv, &[a], bogus),
            Err(NetlistError::UnknownNet { .. })
        ));
        assert!(n.mark_output(bogus).is_err());
    }

    #[test]
    fn undriven_net_fails_validation() {
        let mut n = Netlist::new("bad");
        let floating = n.add_net("floating");
        let y = n.add_net("y");
        n.add_cell("u", CellKind::Inv, &[floating], y).unwrap();
        n.mark_output(y).unwrap();
        assert_eq!(
            n.validate().unwrap_err(),
            NetlistError::UndrivenNet { net: floating }
        );
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut n = Netlist::new("loop");
        let a = n.add_input("a");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_cell("u1", CellKind::And2, &[a, y], x).unwrap();
        n.add_cell("u2", CellKind::Buf, &[x], y).unwrap();
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn flip_flop_breaks_cycles() {
        let mut n = Netlist::new("counter-ish");
        let q = n.add_net("q");
        let d = n.add_net("d");
        n.add_cell("u_inv", CellKind::Inv, &[q], d).unwrap();
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.mark_output(q).unwrap();
        let order = n.validate().expect("dff breaks the loop");
        assert_eq!(order.len(), 1); // only the inverter is combinational
    }

    #[test]
    fn constants_count_as_drivers() {
        let mut n = Netlist::new("const");
        let one = n.add_constant("tie1", true);
        let y = n.add_net("y");
        n.add_cell("u", CellKind::Inv, &[one], y).unwrap();
        n.mark_output(y).unwrap();
        assert!(n.validate().is_ok());
        assert_eq!(n.net(one).driver(), Some(Driver::Constant(true)));
    }

    #[test]
    fn histogram_counts_cell_kinds() {
        let (n, _, _) = and_or_netlist();
        let h = n.cell_histogram();
        assert_eq!(h[&CellKind::And2], 1);
        assert_eq!(h[&CellKind::Or2], 1);
        assert_eq!(h.values().sum::<usize>(), 2);
    }

    #[test]
    fn loads_record_pin_indices() {
        let (n, ab, _) = and_or_netlist();
        let loads = n.net(ab).loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].1, 0); // ab feeds pin 0 of the OR gate
    }

    #[test]
    fn combinational_levels_assign_depths() {
        let (n, _, _) = and_or_netlist();
        let levels = n.combinational_levels().unwrap();
        let and_cell = n
            .cells()
            .find(|(_, c)| c.kind() == CellKind::And2)
            .unwrap()
            .0;
        let or_cell = n
            .cells()
            .find(|(_, c)| c.kind() == CellKind::Or2)
            .unwrap()
            .0;
        assert_eq!(levels[and_cell.index()], Some(0));
        assert_eq!(levels[or_cell.index()], Some(1));
    }

    #[test]
    fn sequential_cells_have_no_level_and_reset_depth() {
        let mut n = Netlist::new("pipe");
        let d = n.add_input("d");
        let q = n.add_net("q");
        let y = n.add_net("y");
        n.add_cell("u_ff", CellKind::Dff, &[d], q).unwrap();
        n.add_cell("u_inv", CellKind::Inv, &[q], y).unwrap();
        n.mark_output(y).unwrap();
        let levels = n.combinational_levels().unwrap();
        // The flip-flop has no combinational level; the inverter it feeds
        // restarts at level 0 (sequential outputs act as sources).
        assert_eq!(levels, vec![None, Some(0)]);
    }

    #[test]
    fn validate_strict_rejects_any_floating_net() {
        let (mut n, _, _) = and_or_netlist();
        assert!(n.validate_strict().is_ok());
        // A floating net nothing reads passes validate() but not strict.
        let floating = n.add_net("debris");
        assert!(n.validate().is_ok());
        assert_eq!(
            n.validate_strict().unwrap_err(),
            NetlistError::UndrivenNet { net: floating }
        );
    }

    /// Navigates to the mutable `loads` array of net `net` inside a
    /// serialized [`Netlist`] document.
    fn loads_of(doc: &mut serde::Value, net: usize) -> &mut Vec<serde::Value> {
        let serde::Value::Object(fields) = doc else {
            panic!("netlist serializes as an object");
        };
        let nets = &mut fields
            .iter_mut()
            .find(|(key, _)| key == "nets")
            .expect("nets field")
            .1;
        let serde::Value::Array(nets) = nets else {
            panic!("nets serialize as an array");
        };
        let serde::Value::Object(net_fields) = &mut nets[net] else {
            panic!("a net serializes as an object");
        };
        let loads = &mut net_fields
            .iter_mut()
            .find(|(key, _)| key == "loads")
            .expect("loads field")
            .1;
        let serde::Value::Array(loads) = loads else {
            panic!("loads serialize as an array");
        };
        loads
    }

    #[test]
    fn corrupted_load_backreferences_fail_validation() {
        let (n, ab, _) = and_or_netlist();
        let mut doc = serde_json::to_value(&n);
        // Point the AB net's load at pin 1 instead of pin 0: the back-
        // reference no longer mirrors the OR cell's input pins.
        let serde::Value::Array(entry) = &mut loads_of(&mut doc, ab.index())[0] else {
            panic!("a load entry serializes as a [cell, pin] pair");
        };
        entry[1] = serde::Value::UInt(1);
        let corrupted: Netlist = serde_json::from_value(&doc).unwrap();
        assert!(matches!(
            corrupted.validate(),
            Err(NetlistError::InconsistentLoads { .. })
        ));

        // Dropping the load entry entirely is also caught (multiset check).
        let mut doc = serde_json::to_value(&n);
        loads_of(&mut doc, ab.index()).clear();
        let corrupted: Netlist = serde_json::from_value(&doc).unwrap();
        assert!(matches!(
            corrupted.validate(),
            Err(NetlistError::InconsistentLoads { .. })
        ));
    }

    #[test]
    fn error_display_messages() {
        let err = NetlistError::WrongInputCount {
            kind: CellKind::Mux2,
            expected: 3,
            found: 2,
        };
        assert!(err.to_string().contains("MUX2"));
        assert!(NetlistError::UndrivenNet { net: NetId(7) }
            .to_string()
            .contains("#7"));
    }
}
