//! Input-vector-indexed bit-energy look-up tables (paper §3.1, Table 1).
//!
//! The bit energy of a node switch depends on which of its input ports carry
//! packets.  The paper pre-computes a look-up table per switch with Synopsys
//! Power Compiler; here the table is either produced by
//! [`crate::characterize`] (gate-level simulation of our generated circuits)
//! or loaded from the paper's published Table 1 values so experiments can be
//! reproduced with the original numbers.
//!
//! For every switch in the paper the published energies are symmetric in the
//! port permutation (e.g. `[0,1]` and `[1,0]` are both 1080 fJ), so the table
//! is keyed by the *number* of active ports, which also keeps it tractable
//! for 32-input MUXes where a dense 2³²-entry table would be absurd.

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::Energy;

use crate::circuits::SwitchClass;

/// Which input ports of a node switch currently carry packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InputVector {
    mask: u64,
    ports: usize,
}

impl InputVector {
    /// An input vector with no active ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or greater than 64.
    #[must_use]
    pub fn none(ports: usize) -> Self {
        assert!(
            ports > 0 && ports <= 64,
            "ports must be in 1..=64, got {ports}"
        );
        Self { mask: 0, ports }
    }

    /// An input vector with every port active.
    #[must_use]
    pub fn all(ports: usize) -> Self {
        let mut v = Self::none(ports);
        v.mask = if ports == 64 {
            u64::MAX
        } else {
            (1 << ports) - 1
        };
        v
    }

    /// Builds a vector from an iterator of active port indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn with_active(ports: usize, active: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::none(ports);
        for port in active {
            v.set_active(port, true);
        }
        v
    }

    /// Number of ports this vector describes.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Whether `port` is active.
    ///
    /// # Panics
    ///
    /// Panics if `port >= ports`.
    #[must_use]
    pub fn is_active(&self, port: usize) -> bool {
        assert!(port < self.ports, "port {port} out of range");
        self.mask >> port & 1 == 1
    }

    /// Activates or deactivates a port.
    ///
    /// # Panics
    ///
    /// Panics if `port >= ports`.
    pub fn set_active(&mut self, port: usize, active: bool) {
        assert!(port < self.ports, "port {port} out of range");
        if active {
            self.mask |= 1 << port;
        } else {
            self.mask &= !(1 << port);
        }
    }

    /// Number of active ports.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Iterates over active port indices in ascending order.
    pub fn active_ports(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.ports).filter(move |&p| self.mask >> p & 1 == 1)
    }
}

impl std::fmt::Display for InputVector {
    /// Formats like the paper's Table 1, e.g. `[1,0]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for port in 0..self.ports {
            if port > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", u8::from(self.is_active(port)))?;
        }
        write!(f, "]")
    }
}

/// Bit-energy look-up table for one node-switch class, indexed by the number
/// of active input ports.
///
/// The stored value is the energy the switch consumes **per bit slot** (one
/// bit lane for one clock cycle) while operating with that many packets at
/// its inputs; see [`SwitchEnergyLut::energy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchEnergyLut {
    class: SwitchClass,
    ports: usize,
    /// `by_active_count[k]` = per-bit energy with `k` packets present.
    by_active_count: Vec<Energy>,
    /// Where the numbers came from (characterization vs. paper).
    source: LutSource,
}

/// Provenance of the values in a [`SwitchEnergyLut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LutSource {
    /// Produced by gate-level characterization of a generated circuit.
    Characterized,
    /// Published Table 1 values from the paper.
    PaperTable1,
}

impl SwitchEnergyLut {
    /// Builds a LUT from per-active-count energies.
    ///
    /// `by_active_count` must contain `ports + 1` entries (0 … all ports
    /// active).
    ///
    /// # Panics
    ///
    /// Panics if the entry count does not match `ports + 1`.
    #[must_use]
    pub fn from_active_counts(
        class: SwitchClass,
        ports: usize,
        by_active_count: Vec<Energy>,
        source: LutSource,
    ) -> Self {
        assert_eq!(
            by_active_count.len(),
            ports + 1,
            "expected {} entries for a {}-port switch",
            ports + 1,
            ports
        );
        Self {
            class,
            ports,
            by_active_count,
            source,
        }
    }

    /// The switch class this LUT describes.
    #[must_use]
    pub fn class(&self) -> SwitchClass {
        self.class
    }

    /// Number of input ports of the switch.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Where the values came from.
    #[must_use]
    pub fn source(&self) -> LutSource {
        self.source
    }

    /// Per-bit energy for an explicit input vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector's port count does not match the LUT.
    #[must_use]
    pub fn energy(&self, vector: &InputVector) -> Energy {
        assert_eq!(
            vector.ports(),
            self.ports,
            "input vector has {} ports but the LUT describes {}",
            vector.ports(),
            self.ports
        );
        self.energy_for_active_count(vector.active_count())
    }

    /// Per-bit energy given only the number of active ports.
    ///
    /// # Panics
    ///
    /// Panics if `active > ports`.
    #[must_use]
    pub fn energy_for_active_count(&self, active: usize) -> Energy {
        assert!(
            active <= self.ports,
            "{active} active ports exceeds the switch's {} ports",
            self.ports
        );
        self.by_active_count[active]
    }

    /// Per-bit energy with exactly one packet present — the value used by the
    /// closed-form worst-case equations (Eq. 3–6).
    #[must_use]
    pub fn single_active(&self) -> Energy {
        self.energy_for_active_count(1.min(self.ports))
    }

    /// All stored energies, indexed by active-port count.
    #[must_use]
    pub fn entries(&self) -> &[Energy] {
        &self.by_active_count
    }

    // --- paper reference data ------------------------------------------------

    /// Paper Table 1: crossbar crosspoint, `[0]` → 0 fJ, `[1]` → 220 fJ.
    #[must_use]
    pub fn paper_crossbar_crosspoint() -> Self {
        Self::from_active_counts(
            SwitchClass::CrossbarCrosspoint,
            1,
            vec![Energy::ZERO, Energy::from_femtojoules(220.0)],
            LutSource::PaperTable1,
        )
    }

    /// Paper Table 1: Banyan 2×2 binary switch, 0 / 1080 / 1821 fJ.
    #[must_use]
    pub fn paper_banyan_binary() -> Self {
        Self::from_active_counts(
            SwitchClass::BanyanBinary,
            2,
            vec![
                Energy::ZERO,
                Energy::from_femtojoules(1080.0),
                Energy::from_femtojoules(1821.0),
            ],
            LutSource::PaperTable1,
        )
    }

    /// Paper Table 1: Batcher 2×2 sorting switch, 0 / 1253 / 2025 fJ.
    #[must_use]
    pub fn paper_batcher_sorting() -> Self {
        Self::from_active_counts(
            SwitchClass::BatcherSorting,
            2,
            vec![
                Energy::ZERO,
                Energy::from_femtojoules(1253.0),
                Energy::from_femtojoules(2025.0),
            ],
            LutSource::PaperTable1,
        )
    }

    /// Paper Table 1: N-input MUX bit energy.
    ///
    /// The paper reports 431 / 782 / 1350 / 2515 fJ for N = 4 / 8 / 16 / 32
    /// and notes the value is nearly independent of the input vector; other
    /// port counts are interpolated with the power law fitted through the
    /// published points (`E ≈ 132.9 · N^0.849` fJ).
    ///
    /// # Panics
    ///
    /// Panics if `inputs < 2` or `inputs` is not a power of two.
    #[must_use]
    pub fn paper_mux(inputs: usize) -> Self {
        assert!(
            inputs >= 2 && inputs.is_power_of_two(),
            "the fully-connected MUX requires a power-of-two input count >= 2"
        );
        let femtojoules = match inputs {
            4 => 431.0,
            8 => 782.0,
            16 => 1350.0,
            32 => 2515.0,
            n => 132.9 * (n as f64).powf(0.8485),
        };
        let value = Energy::from_femtojoules(femtojoules);
        // Nearly vector-independent: idle is zero, any occupancy costs the same.
        let mut by_active_count = vec![value; inputs + 1];
        by_active_count[0] = Energy::ZERO;
        Self::from_active_counts(
            SwitchClass::Mux { inputs },
            inputs,
            by_active_count,
            LutSource::PaperTable1,
        )
    }

    /// The complete paper Table 1 as a list of LUTs (crosspoint, binary,
    /// sorting, MUX-4/8/16/32), in the order the paper prints them.
    #[must_use]
    pub fn paper_table1() -> Vec<Self> {
        vec![
            Self::paper_crossbar_crosspoint(),
            Self::paper_banyan_binary(),
            Self::paper_batcher_sorting(),
            Self::paper_mux(4),
            Self::paper_mux(8),
            Self::paper_mux(16),
            Self::paper_mux(32),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_vector_basics() {
        let mut v = InputVector::none(4);
        assert_eq!(v.active_count(), 0);
        v.set_active(0, true);
        v.set_active(2, true);
        assert!(v.is_active(0));
        assert!(!v.is_active(1));
        assert_eq!(v.active_count(), 2);
        assert_eq!(v.active_ports().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(v.to_string(), "[1,0,1,0]");
        v.set_active(0, false);
        assert_eq!(v.active_count(), 1);
    }

    #[test]
    fn all_and_with_active_constructors() {
        assert_eq!(InputVector::all(8).active_count(), 8);
        assert_eq!(InputVector::all(64).active_count(), 64);
        let v = InputVector::with_active(4, [1, 3]);
        assert_eq!(v.to_string(), "[0,1,0,1]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let v = InputVector::none(2);
        let _ = v.is_active(2);
    }

    #[test]
    fn paper_banyan_values_match_table1() {
        let lut = SwitchEnergyLut::paper_banyan_binary();
        assert_eq!(lut.energy_for_active_count(0), Energy::ZERO);
        assert!((lut.single_active().as_femtojoules() - 1080.0).abs() < 1e-9);
        let both = InputVector::all(2);
        assert!((lut.energy(&both).as_femtojoules() - 1821.0).abs() < 1e-9);
        // Economy of scale: two packets cost less than twice one packet.
        assert!(lut.energy(&both) < lut.single_active() * 2.0);
        assert_eq!(lut.source(), LutSource::PaperTable1);
    }

    #[test]
    fn paper_batcher_is_costlier_than_banyan() {
        let banyan = SwitchEnergyLut::paper_banyan_binary();
        let batcher = SwitchEnergyLut::paper_batcher_sorting();
        assert!(batcher.single_active() > banyan.single_active());
        assert!(batcher.energy_for_active_count(2) > banyan.energy_for_active_count(2));
    }

    #[test]
    fn paper_mux_published_points_and_interpolation() {
        assert!(
            (SwitchEnergyLut::paper_mux(4)
                .single_active()
                .as_femtojoules()
                - 431.0)
                .abs()
                < 1e-9
        );
        assert!(
            (SwitchEnergyLut::paper_mux(32)
                .single_active()
                .as_femtojoules()
                - 2515.0)
                .abs()
                < 1e-9
        );
        // Interpolated value lands between the published neighbours.
        let e64 = SwitchEnergyLut::paper_mux(64).single_active();
        assert!(e64.as_femtojoules() > 2515.0);
        let e2 = SwitchEnergyLut::paper_mux(2).single_active();
        assert!(e2.as_femtojoules() > 0.0 && e2.as_femtojoules() < 431.0);
        // Monotone in N.
        let mut previous = Energy::ZERO;
        for n in [2, 4, 8, 16, 32, 64, 128] {
            let e = SwitchEnergyLut::paper_mux(n).single_active();
            assert!(e > previous, "MUX energy must grow with N");
            previous = e;
        }
    }

    #[test]
    fn paper_table1_has_seven_rows() {
        let table = SwitchEnergyLut::paper_table1();
        assert_eq!(table.len(), 7);
        assert_eq!(table[0].class(), SwitchClass::CrossbarCrosspoint);
        assert_eq!(table[6].class(), SwitchClass::Mux { inputs: 32 });
    }

    #[test]
    fn crosspoint_single_active_is_220_femtojoules() {
        let lut = SwitchEnergyLut::paper_crossbar_crosspoint();
        assert!((lut.single_active().as_femtojoules() - 220.0).abs() < 1e-9);
        assert_eq!(lut.ports(), 1);
    }

    #[test]
    #[should_panic(expected = "expected 3 entries")]
    fn wrong_entry_count_panics() {
        let _ = SwitchEnergyLut::from_active_counts(
            SwitchClass::BanyanBinary,
            2,
            vec![Energy::ZERO],
            LutSource::PaperTable1,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_active_ports_panics() {
        let lut = SwitchEnergyLut::paper_crossbar_crosspoint();
        let _ = lut.energy_for_active_count(2);
    }

    #[test]
    fn serde_round_trip() {
        let lut = SwitchEnergyLut::paper_banyan_binary();
        let json = serde_json::to_string(&lut).expect("serialize");
        let back: SwitchEnergyLut = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(lut, back);
    }
}
