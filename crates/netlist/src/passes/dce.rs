//! Dead-net pruning: drop nets with no driver and no loads.
//!
//! Generators (and earlier passes) can leave behind nets nothing drives and
//! nothing reads.  Such a net holds its all-zero reset value forever and
//! carries no load energy, so removing it is trivially bit-exact — its fate
//! is `Folded { settles_to: false }`, i.e. zero toggles.

use crate::netlist::{Netlist, NetlistError};

use super::{readd_net, NetFate, Pass, PassCircuit};

/// The dead-net pruning pass.  See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadNetPrune;

impl Pass for DeadNetPrune {
    fn name(&self) -> &'static str {
        "dead-net-prune"
    }

    fn run(&self, circuit: &mut PassCircuit) -> Result<(), NetlistError> {
        let netlist = circuit.netlist();
        let dead: Vec<bool> = netlist
            .nets()
            .map(|(_, net)| net.driver().is_none() && net.loads().is_empty())
            .collect();
        if !dead.iter().any(|&d| d) {
            return Ok(());
        }
        let mut rewritten = Netlist::new(netlist.name());
        let mut local = Vec::with_capacity(netlist.net_count());
        for (net_id, net) in netlist.nets() {
            if dead[net_id.index()] {
                local.push(NetFate::Folded { settles_to: false });
            } else {
                local.push(NetFate::Kept(readd_net(&mut rewritten, net)));
            }
        }
        let kept = |fate: &NetFate| match fate {
            NetFate::Kept(net) => *net,
            NetFate::Folded { .. } => unreachable!("live nets are never dead"),
        };
        for (_, cell) in netlist.cells() {
            let inputs: Vec<_> = cell
                .inputs()
                .iter()
                .map(|&input| kept(&local[input.index()]))
                .collect();
            rewritten.add_cell(
                cell.name(),
                cell.kind(),
                &inputs,
                kept(&local[cell.output().index()]),
            )?;
        }
        for &po in netlist.primary_outputs() {
            rewritten.mark_output(kept(&local[po.index()]))?;
        }
        circuit.apply(rewritten, local);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    #[test]
    fn dead_nets_are_pruned_and_live_ones_survive() {
        let mut n = Netlist::new("debris");
        let a = n.add_input("a");
        let dead1 = n.add_net("dead1");
        let y = n.add_net("y");
        let dead2 = n.add_net("dead2");
        n.add_cell("u_inv", CellKind::Inv, &[a], y).unwrap();
        n.mark_output(y).unwrap();

        let mut circuit = PassCircuit::new(&n);
        DeadNetPrune.run(&mut circuit).unwrap();
        assert_eq!(circuit.netlist().net_count(), 2);
        assert_eq!(circuit.netlist().cell_count(), 1);
        assert_eq!(
            circuit.fates[dead1.index()],
            NetFate::Folded { settles_to: false }
        );
        assert_eq!(
            circuit.fates[dead2.index()],
            NetFate::Folded { settles_to: false }
        );
        assert!(matches!(circuit.fates[a.index()], NetFate::Kept(_)));
        assert!(matches!(circuit.fates[y.index()], NetFate::Kept(_)));
        circuit.netlist().validate_strict().unwrap();
    }

    #[test]
    fn idle_constants_are_not_dead() {
        let mut n = Netlist::new("tie");
        let _tie = n.add_constant("tie1", true);
        let a = n.add_input("a");
        let y = n.add_net("y");
        n.add_cell("u_buf", CellKind::Buf, &[a], y).unwrap();
        n.mark_output(y).unwrap();
        let mut circuit = PassCircuit::new(&n);
        DeadNetPrune.run(&mut circuit).unwrap();
        // A driven net is never dead, even with no loads.
        assert_eq!(circuit.netlist().net_count(), 3);
    }
}
