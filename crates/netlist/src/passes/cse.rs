//! Structural hashing (common-subexpression elimination): share identical
//! `(kind, inputs)` cells.
//!
//! Two cells of the same kind reading the same input nets produce
//! bit-identical output waveforms by induction over simulated steps: they
//! see the same input values every cycle and start from the same all-zero
//! reset state.  That argument covers every [`CellKind`] — combinational
//! gates trivially, tri-state/hold cells through their recurrence, and
//! flip-flops/latches through their state.  The duplicate cell is dropped
//! and its output net merged into the first occurrence's; every toggle of
//! the surviving net is credited to *both* original nets by the alias
//! tables, so energy stays bit-exact.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::netlist::{Netlist, NetlistError};

use super::{readd_net, NetFate, Pass, PassCircuit};

/// The structural-hashing pass.  See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StructuralHash;

/// FNV-1a. The `(kind, inputs)` keys are tiny and attacker-free (they come
/// from our own generators), so the std SipHash's DoS resistance buys
/// nothing here and its latency shows up directly in pipeline cost.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Resolves a net through the union-find-style representative chain.
fn resolve(rep: &[u32], mut net: u32) -> u32 {
    while rep[net as usize] != net {
        net = rep[net as usize];
    }
    net
}

impl Pass for StructuralHash {
    fn name(&self) -> &'static str {
        "structural-hash"
    }

    fn run(&self, circuit: &mut PassCircuit) -> Result<(), NetlistError> {
        let (netlist, order) = circuit.ordered()?;

        // Iterate to a fixpoint: merging two flip-flops can make their
        // downstream combinational cells identical and vice versa.  Cells
        // are visited in topological order (then sequential cells in id
        // order), so one sweep propagates merges forward; extra sweeps are
        // only needed across sequential boundaries.  The first occurrence
        // always wins, which keeps the result deterministic.
        let mut rep: Vec<u32> = (0..netlist.net_count() as u32).collect();
        let mut seen: HashMap<(usize, [u32; 3]), u32, BuildHasherDefault<Fnv>> =
            HashMap::with_capacity_and_hasher(netlist.cell_count(), BuildHasherDefault::default());
        loop {
            let mut changed = false;
            seen.clear();
            let sequential = netlist
                .cells()
                .filter(|(_, c)| c.kind().is_sequential())
                .map(|(id, _)| id);
            for cell_id in order.iter().copied().chain(sequential) {
                let cell = netlist.cell(cell_id);
                let mut key_inputs = [u32::MAX; 3];
                for (slot, net) in key_inputs.iter_mut().zip(cell.inputs()) {
                    *slot = resolve(&rep, net.index() as u32);
                }
                let output = resolve(&rep, cell.output().index() as u32);
                match seen.entry((cell.kind().index(), key_inputs)) {
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(output);
                    }
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        let survivor = *entry.get();
                        if output != survivor {
                            rep[output as usize] = survivor;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if rep.iter().enumerate().all(|(i, &r)| i as u32 == r) {
            return Ok(());
        }

        // Rebuild: merged-away nets disappear, cells driving them are
        // dropped, and every input reference is routed to the survivor.
        let mut rewritten = Netlist::new(netlist.name());
        let mut local = Vec::with_capacity(netlist.net_count());
        for (net_id, net) in netlist.nets() {
            let id = net_id.index() as u32;
            if resolve(&rep, id) == id {
                local.push(NetFate::Kept(readd_net(&mut rewritten, net)));
            } else {
                // Patched to the survivor's new id below, once it is known.
                local.push(NetFate::Folded { settles_to: false });
            }
        }
        for net_id in 0..netlist.net_count() {
            let survivor = resolve(&rep, net_id as u32) as usize;
            if survivor != net_id {
                local[net_id] = local[survivor];
                debug_assert!(matches!(local[net_id], NetFate::Kept(_)));
            }
        }
        let kept = |fate: &NetFate| match fate {
            NetFate::Kept(net) => *net,
            NetFate::Folded { .. } => unreachable!("merged nets map to survivors"),
        };
        for (_, cell) in netlist.cells() {
            let output = cell.output().index() as u32;
            if resolve(&rep, output) != output {
                continue; // duplicate: first occurrence drives the survivor
            }
            let inputs: Vec<_> = cell
                .inputs()
                .iter()
                .map(|&input| kept(&local[input.index()]))
                .collect();
            rewritten.add_cell(
                cell.name(),
                cell.kind(),
                &inputs,
                kept(&local[cell.output().index()]),
            )?;
        }
        for &po in netlist.primary_outputs() {
            rewritten.mark_output(kept(&local[po.index()]))?;
        }
        circuit.apply(rewritten, local);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::netlist::Netlist;

    #[test]
    fn duplicate_gates_are_merged() {
        let mut n = Netlist::new("dup");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_net("x");
        let y = n.add_net("y");
        let out = n.add_net("out");
        n.add_cell("u1", CellKind::And2, &[a, b], x).unwrap();
        n.add_cell("u2", CellKind::And2, &[a, b], y).unwrap();
        n.add_cell("u3", CellKind::Xor2, &[x, y], out).unwrap();
        n.mark_output(out).unwrap();

        let mut circuit = PassCircuit::new(&n);
        StructuralHash.run(&mut circuit).unwrap();
        assert_eq!(circuit.netlist().cell_count(), 2);
        // Both original nets map to the same survivor.
        let fx = circuit.fates[x.index()];
        let fy = circuit.fates[y.index()];
        assert_eq!(fx, fy);
        assert!(matches!(fx, NetFate::Kept(_)));
        circuit.netlist().validate().unwrap();
    }

    #[test]
    fn merges_cascade_through_levels_in_one_run() {
        let mut n = Netlist::new("cascade");
        let a = n.add_input("a");
        let x1 = n.add_net("x1");
        let x2 = n.add_net("x2");
        let y1 = n.add_net("y1");
        let y2 = n.add_net("y2");
        n.add_cell("u1", CellKind::Inv, &[a], x1).unwrap();
        n.add_cell("u2", CellKind::Inv, &[a], x2).unwrap();
        n.add_cell("u3", CellKind::Buf, &[x1], y1).unwrap();
        n.add_cell("u4", CellKind::Buf, &[x2], y2).unwrap();
        n.mark_output(y1).unwrap();
        n.mark_output(y2).unwrap();

        let mut circuit = PassCircuit::new(&n);
        StructuralHash.run(&mut circuit).unwrap();
        // Both inverters and both buffers collapse.
        assert_eq!(circuit.netlist().cell_count(), 2);
        assert_eq!(circuit.fates[y1.index()], circuit.fates[y2.index()]);
    }

    #[test]
    fn duplicate_flip_flops_merge_too() {
        let mut n = Netlist::new("ffdup");
        let d = n.add_input("d");
        let q1 = n.add_net("q1");
        let q2 = n.add_net("q2");
        n.add_cell("ff1", CellKind::Dff, &[d], q1).unwrap();
        n.add_cell("ff2", CellKind::Dff, &[d], q2).unwrap();
        n.mark_output(q1).unwrap();
        n.mark_output(q2).unwrap();
        let mut circuit = PassCircuit::new(&n);
        StructuralHash.run(&mut circuit).unwrap();
        assert_eq!(circuit.netlist().cell_count(), 1);
    }

    #[test]
    fn different_input_order_is_not_merged() {
        // Mux2 data pins are ordered: [a, b, s] and [b, a, s] differ.
        let mut n = Netlist::new("ordered");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let y1 = n.add_net("y1");
        let y2 = n.add_net("y2");
        n.add_cell("m1", CellKind::Mux2, &[a, b, s], y1).unwrap();
        n.add_cell("m2", CellKind::Mux2, &[b, a, s], y2).unwrap();
        n.mark_output(y1).unwrap();
        n.mark_output(y2).unwrap();
        let mut circuit = PassCircuit::new(&n);
        StructuralHash.run(&mut circuit).unwrap();
        assert_eq!(circuit.netlist().cell_count(), 2);
    }
}
