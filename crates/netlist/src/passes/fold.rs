//! Constant folding: prune cells whose outputs provably never toggle.
//!
//! A ternary {0, 1, X} value is propagated forward from constant nets in
//! topological order.  A combinational cell whose output is determinate
//! settles on the first simulated step and never toggles again — it
//! contributes zero dynamic energy, so removing it (and rewiring its
//! consumers to a shared constant net of the settled value) is bit-exact.
//! Sequential cells are never folded: a flip-flop fed a constant `1` still
//! toggles on the *second* step (Q follows D one cycle late), which the
//! one-shot first-step accounting could not represent.

use crate::cells::CellKind;
use crate::netlist::{Driver, NetId, Netlist, NetlistError};

use super::{readd_net, NetFate, Pass, PassCircuit};

/// The constant-folding pass.  See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFold;

/// Ternary forward value of a net: `Some(v)` means the net settles to `v`
/// on the first simulated step and never toggles afterwards; `None` means
/// it may toggle.
type Tern = Option<bool>;

/// Folds one cell's output from its input ternaries, mirroring
/// [`CellKind::evaluate`] exactly.
///
/// Pure combinational kinds are brute-forced: every assignment of the
/// unknown inputs is evaluated, and the output folds only if they all
/// agree.  Hold kinds (tri-state buffer, pass gate) fold through their
/// recurrence: never-enabled or only-ever-driven-low outputs stay at the
/// all-zero reset value.  Sequential kinds never fold.
fn fold_value(kind: CellKind, inputs: &[Tern]) -> Tern {
    if kind.is_sequential() {
        return None;
    }
    if kind.holds_output_when_disabled() {
        // Inputs are [A, EN]; output is A when enabled, else the previous
        // output (initially 0).
        return match (inputs[0], inputs[1]) {
            // Never enabled: the reset value is held forever.
            (_, Some(false)) => Some(false),
            // Only ever drives 0, and holding preserves 0.
            (Some(false), _) => Some(false),
            // Always enabled with a determinate input.
            (Some(a), Some(true)) => Some(a),
            _ => None,
        };
    }
    let arity = inputs.len();
    let unknown: Vec<usize> = (0..arity).filter(|&i| inputs[i].is_none()).collect();
    let mut folded: Tern = None;
    for combo in 0..(1_u32 << unknown.len()) {
        let mut values = [false; 3];
        for (i, value) in values.iter_mut().enumerate().take(arity) {
            if let Some(known) = inputs[i] {
                *value = known;
            }
        }
        for (bit, &i) in unknown.iter().enumerate() {
            values[i] = (combo >> bit) & 1 == 1;
        }
        let out = kind.evaluate(&values[..arity], false);
        match folded {
            None => folded = Some(out),
            Some(previous) if previous == out => {}
            Some(_) => return None,
        }
    }
    folded
}

impl Pass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant-fold"
    }

    fn run(&self, circuit: &mut PassCircuit) -> Result<(), NetlistError> {
        // Folding can only start from constant nets; without any, no output
        // is determinate (hold-cell outputs fold only from determinate
        // inputs) and the whole propagation is a guaranteed no-op.  The
        // generated switch circuits contain no constants, so this early
        // exit is their common path.
        let has_constants = circuit
            .netlist()
            .nets()
            .any(|(_, net)| matches!(net.driver(), Some(Driver::Constant(_))));
        if !has_constants {
            return Ok(());
        }
        let (netlist, order) = circuit.ordered()?;

        // 1. Propagate ternary values forward.  Primary inputs and
        //    sequential outputs are unknown; constants are known; an
        //    undriven (dead) net holds its reset 0 forever but is left for
        //    the dead-net pass to collect.
        let mut tern: Vec<Tern> = vec![None; netlist.net_count()];
        for (net_id, net) in netlist.nets() {
            if let Some(Driver::Constant(value)) = net.driver() {
                tern[net_id.index()] = Some(value);
            }
        }
        let mut input_terns = Vec::with_capacity(3);
        for &cell_id in order {
            let cell = netlist.cell(cell_id);
            input_terns.clear();
            input_terns.extend(cell.inputs().iter().map(|n| tern[n.index()]));
            tern[cell.output().index()] = fold_value(cell.kind(), &input_terns);
        }

        // 2. A combinational cell with a determinate output is pruned and
        //    its output net folded.
        let folded_net: Vec<Tern> = netlist
            .nets()
            .map(|(net_id, net)| match net.driver() {
                Some(Driver::Cell(cell_id)) if !netlist.cell(cell_id).kind().is_sequential() => {
                    tern[net_id.index()]
                }
                _ => None,
            })
            .collect();
        if folded_net.iter().all(Option::is_none) {
            return Ok(());
        }

        // 3. Rebuild without the folded cells, rewiring surviving consumers
        //    of folded nets to shared constant nets.
        let mut rewritten = Netlist::new(netlist.name());
        let mut map: Vec<Option<NetId>> = Vec::with_capacity(netlist.net_count());
        let mut shared_const: [Option<NetId>; 2] = [None, None];
        for (net_id, net) in netlist.nets() {
            if folded_net[net_id.index()].is_some() {
                map.push(None);
                continue;
            }
            let kept = readd_net(&mut rewritten, net);
            if let Some(Driver::Constant(value)) = net.driver() {
                // Reuse existing constant nets as rewiring targets.
                shared_const[usize::from(value)].get_or_insert(kept);
            }
            map.push(Some(kept));
        }
        let mut const_net = |rewritten: &mut Netlist, value: bool| {
            *shared_const[usize::from(value)].get_or_insert_with(|| {
                rewritten.add_constant(if value { "__fold_tie1" } else { "__fold_tie0" }, value)
            })
        };
        for (_, cell) in netlist.cells() {
            let Some(output) = map[cell.output().index()] else {
                continue; // pruned
            };
            let inputs: Vec<NetId> = cell
                .inputs()
                .iter()
                .map(|&input| match map[input.index()] {
                    Some(kept) => kept,
                    None => {
                        let value = folded_net[input.index()].expect("unmapped nets are folded");
                        const_net(&mut rewritten, value)
                    }
                })
                .collect();
            rewritten.add_cell(cell.name(), cell.kind(), &inputs, output)?;
        }
        for &po in netlist.primary_outputs() {
            if let Some(kept) = map[po.index()] {
                rewritten.mark_output(kept)?;
            }
        }
        let local: Vec<NetFate> = map
            .iter()
            .enumerate()
            .map(|(i, kept)| match kept {
                Some(net) => NetFate::Kept(*net),
                None => NetFate::Folded {
                    settles_to: folded_net[i].expect("unmapped nets are folded"),
                },
            })
            .collect();
        circuit.apply(rewritten, local);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn run_fold(netlist: &Netlist) -> PassCircuit<'_> {
        let mut circuit = PassCircuit::new(netlist);
        ConstantFold.run(&mut circuit).unwrap();
        circuit
    }

    #[test]
    fn fold_value_mirrors_gate_semantics() {
        let t = Some(true);
        let f = Some(false);
        let x: Tern = None;
        assert_eq!(fold_value(CellKind::And2, &[f, x]), f);
        assert_eq!(fold_value(CellKind::And2, &[t, x]), x);
        assert_eq!(fold_value(CellKind::Or2, &[t, x]), t);
        assert_eq!(fold_value(CellKind::Nand2, &[f, x]), t);
        assert_eq!(fold_value(CellKind::Nor2, &[x, t]), f);
        assert_eq!(fold_value(CellKind::Inv, &[t]), f);
        assert_eq!(fold_value(CellKind::Xor2, &[t, t]), f);
        assert_eq!(fold_value(CellKind::Xor2, &[t, x]), x);
        // MUX with unknown select folds when both data inputs agree.
        assert_eq!(fold_value(CellKind::Mux2, &[t, t, x]), t);
        assert_eq!(fold_value(CellKind::Mux2, &[t, f, x]), x);
        assert_eq!(fold_value(CellKind::Mux2, &[t, f, Some(false)]), t);
        // Hold cells: never enabled or never driven high stay low.
        assert_eq!(fold_value(CellKind::TriBuf, &[x, f]), f);
        assert_eq!(fold_value(CellKind::TriBuf, &[f, x]), f);
        assert_eq!(fold_value(CellKind::TriBuf, &[t, t]), t);
        assert_eq!(fold_value(CellKind::TriBuf, &[t, x]), x);
        // Sequential kinds never fold, even from constants.
        assert_eq!(fold_value(CellKind::Dff, &[t]), x);
        assert_eq!(fold_value(CellKind::Latch, &[t]), x);
    }

    #[test]
    fn constant_cone_is_pruned_and_consumers_rewired() {
        let mut n = Netlist::new("cone");
        let tie1 = n.add_constant("tie1", true);
        let a = n.add_input("a");
        let inv = n.add_net("inv"); // !1 = 0, folds
        let y = n.add_net("y"); // a | 0 = a, does not fold
        n.add_cell("u_inv", CellKind::Inv, &[tie1], inv).unwrap();
        n.add_cell("u_or", CellKind::Or2, &[a, inv], y).unwrap();
        n.mark_output(y).unwrap();

        let circuit = run_fold(&n);
        assert_eq!(circuit.netlist().cell_count(), 1);
        assert_eq!(
            circuit.fates[inv.index()],
            NetFate::Folded { settles_to: false }
        );
        // The OR's folded input was rewired to a constant-false net.
        let or_cell = circuit.netlist().cells().next().unwrap().1;
        let rewired = or_cell.inputs()[1];
        assert_eq!(
            circuit.netlist().net(rewired).driver(),
            Some(Driver::Constant(false))
        );
        circuit.netlist().validate().unwrap();
    }

    #[test]
    fn folded_output_that_settles_high_is_recorded() {
        let mut n = Netlist::new("high");
        let tie0 = n.add_constant("tie0", false);
        let y = n.add_net("y");
        n.add_cell("u_inv", CellKind::Inv, &[tie0], y).unwrap();
        n.mark_output(y).unwrap();
        let circuit = run_fold(&n);
        assert_eq!(circuit.netlist().cell_count(), 0);
        assert_eq!(
            circuit.fates[y.index()],
            NetFate::Folded { settles_to: true }
        );
        // The folded net was a primary output; the rewritten netlist simply
        // no longer lists it (simulators answer through the fates).
        assert!(circuit.netlist().primary_outputs().is_empty());
    }

    #[test]
    fn flip_flop_fed_a_constant_is_not_folded() {
        let mut n = Netlist::new("ffconst");
        let tie1 = n.add_constant("tie1", true);
        let q = n.add_net("q");
        n.add_cell("u_ff", CellKind::Dff, &[tie1], q).unwrap();
        n.mark_output(q).unwrap();
        let circuit = run_fold(&n);
        assert_eq!(circuit.netlist().cell_count(), 1);
        assert_eq!(circuit.fates[q.index()], NetFate::Kept(q));
    }
}
