//! Energy-exact netlist optimization passes and the level schedule.
//!
//! Characterization cost is dominated by walking every net and cell of a
//! generated circuit on every simulated cycle.  This module shrinks that
//! work twice over:
//!
//! 1. **Rewriting passes** ([`ConstantFold`], [`DeadNetPrune`],
//!    [`StructuralHash`]) remove structure whose switching activity is
//!    provably redundant — cells whose outputs can never toggle, nets nobody
//!    reads, and duplicate `(kind, inputs)` cells with bit-identical
//!    waveforms.
//! 2. **Levelization** compiles the surviving netlist into an
//!    [`EvalSchedule`]: a flat, topologically-levelled evaluation order that
//!    the simulators execute directly, skipping whole levels whose inputs
//!    did not change this cycle.
//!
//! # Energy exactness
//!
//! The passes never change the energy a simulation reports — not just
//! approximately, *bit-exactly*.  The contract rests on three facts:
//!
//! * Energy is derived from integer per-net toggle counts through
//!   [`crate::sim::EnergyTables`] built over the **original** netlist, and
//!   counts are always maintained in original net-id space.  Pruned cells
//!   still contribute their per-cycle clock and leakage energy, and pruned
//!   nets still carry their (zero or one-shot) toggles.
//! * Every original net has a [`NetFate`]: either it is represented by a
//!   (possibly shared) net of the optimized netlist whose waveform is
//!   identical — each toggle of the shared net is credited to every aliased
//!   original net — or it was folded to a value that settles on the first
//!   simulated step and never toggles again, in which case the single
//!   false→true transition (if any) is credited once, on the first step.
//! * Two cells merged by structural hashing have identical waveforms by
//!   induction: same kind, same input nets and the same all-zero initial
//!   state, which covers combinational, tri-state/hold *and* sequential
//!   kinds.
//!
//! The pipeline choice is part of
//! [`crate::characterize::CharacterizationConfig`] and therefore of the
//! fabric model-cache key: optimized and raw characterizations never alias.

use serde::{Deserialize, Serialize};

use fabric_power_obs as obs;

use crate::netlist::{CellId, Driver, Net, NetId, Netlist, NetlistError};

mod cse;
mod dce;
mod fold;
mod level;

pub use cse::StructuralHash;
pub use dce::DeadNetPrune;
pub use fold::ConstantFold;
pub use level::{EvalSchedule, ScheduledCell};

/// Obs target for pass-pipeline spans and events.
const TARGET: &str = "netlist.passes";

/// Whether characterization simulates the raw generated netlist or the
/// optimized, level-scheduled one.
///
/// Both produce bit-identical energies (see the module docs); `Optimized` is
/// simply faster and is the default.  The choice is part of the model-cache
/// key, so cached models derived from either mode never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PipelineMode {
    /// Simulate the generated netlist as-is with the per-cycle full walk.
    Raw,
    /// Run [`PassPipeline::standard`] and simulate from the level schedule.
    #[default]
    Optimized,
}

/// What became of one original net after the pass pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFate {
    /// The net is represented by this net of the optimized netlist (several
    /// originals may share one representative after structural hashing).
    Kept(NetId),
    /// The net was removed: its value settles to `settles_to` on the first
    /// simulated step and never toggles afterwards.
    Folded {
        /// The value the net settles to (a `true` settle is one toggle from
        /// the all-zero reset state; `false` is none).
        settles_to: bool,
    },
}

/// Cell- and net-count bookkeeping for one pass of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStats {
    /// Pass name (`constant-fold`, `dead-net-prune`, `structural-hash`,
    /// `levelize`).
    pub pass: String,
    /// Cells removed by this pass.
    pub cells_removed: usize,
    /// Nets removed by this pass.
    pub nets_removed: usize,
    /// Cells remaining after this pass.
    pub cells_after: usize,
    /// Nets remaining after this pass.
    pub nets_after: usize,
}

/// Summary of a full [`PassPipeline::run`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Cells in the original netlist.
    pub original_cells: usize,
    /// Nets in the original netlist.
    pub original_nets: usize,
    /// Cells in the optimized netlist.
    pub final_cells: usize,
    /// Nets in the optimized netlist.
    pub final_nets: usize,
    /// Combinational levels of the evaluation schedule.
    pub levels: usize,
    /// Per-pass bookkeeping, in execution order.
    pub passes: Vec<PassStats>,
}

/// A netlist rewriting pass.
///
/// Passes transform the working netlist inside a [`PassCircuit`], recording
/// for every net of the incoming netlist what became of it; the circuit
/// composes those local fates into original-net-space across the pipeline.
pub trait Pass {
    /// Stable name used in spans, metrics and [`PassStats`].
    fn name(&self) -> &'static str;

    /// Rewrites the circuit in place.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] if the working netlist is structurally
    /// broken (a pass bug, not a user error — pipeline inputs are validated).
    fn run(&self, circuit: &mut PassCircuit<'_>) -> Result<(), NetlistError>;
}

/// The working state threaded through a pass pipeline: the current netlist
/// plus the fate of every *original* net in it.
///
/// Copy-on-write: the circuit starts as a borrow of the original netlist
/// and materializes an owned rewrite only when a pass actually changes
/// something (every pass returns early on a no-op).  Generated switch
/// circuits are usually already minimal, so the common pipeline run never
/// clones the netlist at all.
#[derive(Debug, Clone)]
pub struct PassCircuit<'a> {
    original: &'a Netlist,
    /// The most recent rewrite, if any pass changed the netlist.
    rewritten: Option<Netlist>,
    /// Fate of each original net in the *current* netlist's id space.
    fates: Vec<NetFate>,
    /// Cached combinational levels of the current netlist; computing them
    /// (Kahn's algorithm) dominates pipeline overhead, so every pass shares
    /// one computation until a rewrite invalidates it.
    levels: Option<Vec<Option<u32>>>,
    /// Cached `(level, id)`-sorted combinational order, derived from
    /// `levels` on demand and invalidated together with it.
    order: Option<Vec<CellId>>,
}

impl<'a> PassCircuit<'a> {
    fn new(original: &'a Netlist) -> Self {
        Self {
            original,
            rewritten: None,
            fates: (0..original.net_count())
                .map(|i| NetFate::Kept(NetId(i)))
                .collect(),
            levels: None,
            order: None,
        }
    }

    /// The current (most recently rewritten) netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.rewritten.as_ref().unwrap_or(self.original)
    }

    /// Computes (or reuses) the combinational levels of the current netlist.
    fn ensure_levels(&mut self) -> Result<(), NetlistError> {
        if self.levels.is_none() {
            self.levels = Some(self.netlist().combinational_levels()?);
        }
        Ok(())
    }

    /// The current netlist together with its cached combinational order —
    /// one borrow, so passes can walk the order while reading the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// logic contains a cycle.
    pub(crate) fn ordered(&mut self) -> Result<(&Netlist, &[CellId]), NetlistError> {
        self.ensure_levels()?;
        if self.order.is_none() {
            let levels = self.levels.as_ref().expect("levels just ensured");
            // Combinational cells are exactly those with a level assigned.
            let mut order: Vec<CellId> = (0..levels.len())
                .filter(|&i| levels[i].is_some())
                .map(CellId)
                .collect();
            order.sort_by_key(|&c| (levels[c.index()], c.index()));
            self.order = Some(order);
        }
        let netlist = self.rewritten.as_ref().unwrap_or(self.original);
        Ok((netlist, self.order.as_deref().expect("order just built")))
    }

    /// Compiles the evaluation schedule of the current netlist, reusing the
    /// cached levels.
    fn compile_schedule(&mut self) -> Result<EvalSchedule, NetlistError> {
        self.ensure_levels()?;
        let netlist = self.rewritten.as_ref().unwrap_or(self.original);
        EvalSchedule::compile(netlist, self.levels.as_ref().expect("levels just ensured"))
    }

    /// Replaces the working netlist with `rewritten`.  `local[i]` is the
    /// fate of net `i` of the *previous* working netlist inside `rewritten`;
    /// the original-space fates are composed through it.
    pub(crate) fn apply(&mut self, rewritten: Netlist, local: Vec<NetFate>) {
        debug_assert_eq!(local.len(), self.netlist().net_count());
        for fate in &mut self.fates {
            if let NetFate::Kept(current) = *fate {
                *fate = local[current.index()];
            }
        }
        self.rewritten = Some(rewritten);
        self.levels = None;
        self.order = None;
    }
}

/// Re-adds one net of a source netlist into `target`, preserving its flavour
/// (primary input, constant or plain net).  Cell drivers are reconnected
/// when the cells are re-added.
pub(crate) fn readd_net(target: &mut Netlist, net: &Net) -> NetId {
    match net.driver() {
        Some(Driver::PrimaryInput(_)) => target.add_input(net.name()),
        Some(Driver::Constant(value)) => target.add_constant(net.name(), value),
        _ => target.add_net(net.name()),
    }
}

/// An ordered sequence of rewriting passes plus the final levelization step.
pub struct PassPipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PassPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassPipeline")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PassPipeline {
    /// The standard pipeline: constant folding, dead-net pruning and
    /// structural hashing, followed by the (always-run) levelization.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            passes: vec![
                Box::new(ConstantFold),
                Box::new(DeadNetPrune),
                Box::new(StructuralHash),
            ],
        }
    }

    /// An empty rewrite sequence: levelization only.  Useful to isolate the
    /// schedule's contribution from the structural passes'.
    #[must_use]
    pub fn levelize_only() -> Self {
        Self { passes: Vec::new() }
    }

    /// Runs the pipeline over `original` and compiles the result into an
    /// [`OptimizedNetlist`] ready for the simulators.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validating `original` or from
    /// levelizing the result (a combinational loop fails both).
    pub fn run(&self, original: &Netlist) -> Result<OptimizedNetlist, NetlistError> {
        // Structural validation up front; the acyclicity half of `validate`
        // falls out of the first (cached) levelization a pass requests.
        original.check_structure()?;
        let _pipeline_span = obs::log::span(TARGET, "pipeline")
            .field("cells", original.cell_count() as u64)
            .field("nets", original.net_count() as u64);
        let mut circuit = PassCircuit::new(original);
        let mut passes = Vec::with_capacity(self.passes.len() + 1);
        let mut total_cells_removed = 0_u64;
        let mut total_nets_removed = 0_u64;
        for pass in &self.passes {
            let cells_before = circuit.netlist().cell_count();
            let nets_before = circuit.netlist().net_count();
            {
                let _span =
                    obs::log::span(TARGET, pass.name()).field("cells_before", cells_before as u64);
                pass.run(&mut circuit)?;
            }
            let stats = PassStats {
                pass: pass.name().to_string(),
                cells_removed: cells_before - circuit.netlist().cell_count(),
                nets_removed: nets_before - circuit.netlist().net_count(),
                cells_after: circuit.netlist().cell_count(),
                nets_after: circuit.netlist().net_count(),
            };
            total_cells_removed += stats.cells_removed as u64;
            total_nets_removed += stats.nets_removed as u64;
            passes.push(stats);
        }
        obs::metrics::counter(obs::metrics::names::PASSES_CELLS_REMOVED).add(total_cells_removed);
        obs::metrics::counter(obs::metrics::names::PASSES_NETS_REMOVED).add(total_nets_removed);
        let schedule = {
            let _span = obs::log::span(TARGET, "levelize")
                .field("cells", circuit.netlist().cell_count() as u64);
            circuit.compile_schedule()?
        };
        passes.push(PassStats {
            pass: "levelize".to_string(),
            cells_removed: 0,
            nets_removed: 0,
            cells_after: circuit.netlist().cell_count(),
            nets_after: circuit.netlist().net_count(),
        });
        obs::metrics::gauge(obs::metrics::names::PASSES_SCHEDULE_LEVELS)
            .set(schedule.level_count() as i64);

        let PassCircuit {
            original: _,
            rewritten,
            fates,
            ..
        } = circuit;
        let final_netlist = rewritten.as_ref().unwrap_or(original);

        // Primary inputs must survive every pass in order: simulators index
        // input vectors by original primary-input position.
        debug_assert_eq!(
            original.primary_inputs().len(),
            final_netlist.primary_inputs().len(),
            "passes must preserve primary inputs"
        );
        #[cfg(debug_assertions)]
        for (position, &pi) in original.primary_inputs().iter().enumerate() {
            match fates[pi.index()] {
                NetFate::Kept(kept) => {
                    debug_assert_eq!(final_netlist.primary_input_position(kept), Some(position));
                }
                NetFate::Folded { .. } => panic!("primary input folded away"),
            }
        }

        // Flatten the alias map: for each optimized net, every original net
        // whose toggles it carries; plus the one-shot first-step toggles of
        // nets folded to `true`.  One flat array with per-net ranges
        // (counting pass + prefix sums), keeping ascending original-net
        // order within each range.
        let opt_net_count = final_netlist.net_count();
        let mut alias_counts = vec![0_u32; opt_net_count];
        let mut one_shot_toggles = Vec::new();
        for (original_net, fate) in fates.iter().enumerate() {
            match *fate {
                NetFate::Kept(kept) => alias_counts[kept.index()] += 1,
                NetFate::Folded { settles_to: true } => {
                    one_shot_toggles.push(original_net as u32);
                }
                NetFate::Folded { settles_to: false } => {}
            }
        }
        let mut alias_index = Vec::with_capacity(opt_net_count);
        let mut total = 0_u32;
        for &count in &alias_counts {
            alias_index.push((total, total + count));
            total += count;
        }
        let mut alias_targets = vec![0_u32; total as usize];
        let mut cursor: Vec<u32> = alias_index.iter().map(|&(start, _)| start).collect();
        for (original_net, fate) in fates.iter().enumerate() {
            if let NetFate::Kept(kept) = *fate {
                let slot = &mut cursor[kept.index()];
                alias_targets[*slot as usize] = original_net as u32;
                *slot += 1;
            }
        }

        let report = PipelineReport {
            original_cells: original.cell_count(),
            original_nets: original.net_count(),
            final_cells: final_netlist.cell_count(),
            final_nets: final_netlist.net_count(),
            levels: schedule.level_count(),
            passes,
        };
        Ok(OptimizedNetlist {
            net_count: opt_net_count,
            primary_input_count: final_netlist.primary_inputs().len(),
            rewritten,
            fates,
            schedule,
            alias_index,
            alias_targets,
            one_shot_toggles,
            report,
        })
    }
}

/// The product of a [`PassPipeline::run`]: the optimized netlist, its
/// evaluation schedule, and the bookkeeping that maps simulation activity
/// back to original-netlist net ids (which is what keeps energy accounting
/// bit-exact).
#[derive(Debug, Clone)]
pub struct OptimizedNetlist {
    /// Net count of the optimized netlist (what the schedule indexes).
    net_count: usize,
    /// Primary-input count (identical to the original's by contract).
    primary_input_count: usize,
    /// The rewritten netlist, present only when a pass changed something.
    /// `None` means the schedule indexes the original netlist directly —
    /// the common case for the already-minimal generated circuits, which
    /// then costs no netlist clone at all.
    rewritten: Option<Netlist>,
    /// Fate of every original net, indexed by original net id.
    fates: Vec<NetFate>,
    schedule: EvalSchedule,
    /// Per optimized net: range into `alias_targets`.
    alias_index: Vec<(u32, u32)>,
    /// Original net ids credited when the owning optimized net toggles.
    alias_targets: Vec<u32>,
    /// Original nets folded to `true`: one toggle on the first step.
    one_shot_toggles: Vec<u32>,
    report: PipelineReport,
}

impl OptimizedNetlist {
    /// Net count of the optimized netlist (the id space the schedule and
    /// the simulators' value arrays use).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of primary inputs (passes preserve them, so this equals the
    /// original's).
    #[must_use]
    pub fn primary_input_count(&self) -> usize {
        self.primary_input_count
    }

    /// The rewritten netlist, if any pass changed the structure.  `None`
    /// means the pipeline was a no-op rewrite-wise and the schedule indexes
    /// the original netlist.
    #[must_use]
    pub fn rewritten(&self) -> Option<&Netlist> {
        self.rewritten.as_ref()
    }

    /// Fate of every original net, indexed by original net id.
    #[must_use]
    pub fn fates(&self) -> &[NetFate] {
        &self.fates
    }

    /// Fate of one original net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the original netlist.
    #[must_use]
    pub fn fate(&self, net: NetId) -> NetFate {
        self.fates[net.index()]
    }

    /// The compiled evaluation schedule over the optimized netlist.
    #[must_use]
    pub fn schedule(&self) -> &EvalSchedule {
        &self.schedule
    }

    /// Net count of the netlist the pipeline ran on.
    #[must_use]
    pub fn original_net_count(&self) -> usize {
        self.fates.len()
    }

    /// Per-pass and total reduction bookkeeping.
    #[must_use]
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Original net ids credited when optimized net `net` toggles.
    #[inline]
    pub(crate) fn alias_targets_of(&self, net: usize) -> &[u32] {
        let (start, end) = self.alias_index[net];
        &self.alias_targets[start as usize..end as usize]
    }

    /// Original nets owed one toggle on the first simulated step (they fold
    /// to `true` from the all-zero reset state).
    #[inline]
    pub(crate) fn one_shot_toggles(&self) -> &[u32] {
        &self.one_shot_toggles
    }

    /// `true` when the pipeline changed nothing: every original net is kept
    /// under its own id and nothing was folded, so the alias map is the
    /// identity.  The simulators then credit toggles directly instead of
    /// walking per-net alias lists.
    #[inline]
    pub(crate) fn identity_aliases(&self) -> bool {
        self.one_shot_toggles.is_empty()
            && self.net_count == self.fates.len()
            && self
                .fates
                .iter()
                .enumerate()
                .all(|(i, fate)| matches!(fate, NetFate::Kept(kept) if kept.index() == i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::circuits::{
        banyan_binary_switch, batcher_sorting_switch, crossbar_crosspoint, n_input_mux,
    };

    #[test]
    fn pipeline_mode_default_is_optimized_and_serializes() {
        assert_eq!(PipelineMode::default(), PipelineMode::Optimized);
        let json = serde_json::to_string(&PipelineMode::Raw).unwrap();
        assert_eq!(json, "\"Raw\"");
        let back: PipelineMode = serde_json::from_str("\"Optimized\"").unwrap();
        assert_eq!(back, PipelineMode::Optimized);
    }

    #[test]
    fn standard_pipeline_handles_every_generated_class() {
        let circuits = [
            crossbar_crosspoint(8).unwrap(),
            banyan_binary_switch(8).unwrap(),
            batcher_sorting_switch(8, 4).unwrap(),
            n_input_mux(8, 8).unwrap(),
        ];
        for circuit in &circuits {
            let optimized = PassPipeline::standard().run(&circuit.netlist).unwrap();
            let report = optimized.report();
            assert_eq!(report.original_cells, circuit.netlist.cell_count());
            assert!(report.final_cells <= report.original_cells);
            assert!(report.levels > 0);
            assert_eq!(report.passes.len(), 4);
            assert_eq!(report.passes[3].pass, "levelize");
            // Primary inputs survive with their positions intact.
            assert_eq!(
                optimized.primary_input_count(),
                circuit.netlist.primary_inputs().len()
            );
            // Every original net is accounted for exactly once: either it
            // appears in an alias bucket or it was folded.
            let aliased = optimized.alias_targets.len();
            let folded = optimized
                .fates()
                .iter()
                .filter(|f| matches!(f, NetFate::Folded { .. }))
                .count();
            assert_eq!(aliased + folded, circuit.netlist.net_count());
        }
    }

    #[test]
    fn pipeline_rejects_a_combinational_loop() {
        let mut n = Netlist::new("loop");
        let a = n.add_input("a");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_cell("u1", CellKind::And2, &[a, y], x).unwrap();
        n.add_cell("u2", CellKind::Buf, &[x], y).unwrap();
        assert!(matches!(
            PassPipeline::standard().run(&n),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn levelize_only_pipeline_keeps_everything() {
        let circuit = banyan_binary_switch(8).unwrap();
        let optimized = PassPipeline::levelize_only().run(&circuit.netlist).unwrap();
        assert_eq!(optimized.report().final_cells, circuit.netlist.cell_count());
        // No pass changed anything, so no rewritten netlist was ever built.
        assert!(optimized.rewritten().is_none());
        assert!(optimized
            .fates()
            .iter()
            .enumerate()
            .all(|(i, f)| *f == NetFate::Kept(crate::netlist::NetId(i))));
    }
}
