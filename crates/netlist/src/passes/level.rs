//! Levelization: compile a netlist into a flat, level-ordered evaluation
//! schedule.
//!
//! The schedule replaces the simulators' per-cycle walk over the netlist
//! graph with precomputed drive lists and a dense array of
//! [`ScheduledCell`]s grouped by combinational level.  Beyond cache
//! friendliness, the level grouping enables *quiescence skipping*: when a
//! net flips, the per-net load-cell lists tell the simulator exactly which
//! cells ever need re-evaluating, and its steady-state sweep visits only
//! that ever-active set, in level order.  A cell no input of which has ever
//! changed costs nothing at all (static routing-control, presence cones and
//! the buses of idle ports in the generated switch circuits go quiet right
//! after warm-up).

use crate::cells::CellKind;
use crate::netlist::{Driver, Netlist, NetlistError};

/// One cell of the flat evaluation array: everything the simulator needs,
/// with pre-resolved net indices.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledCell {
    /// The cell kind to evaluate.
    pub(crate) kind: CellKind,
    /// Number of live entries in `inputs`.
    pub(crate) arity: u8,
    /// Input net indices, `inputs[..arity]` live.
    pub(crate) inputs: [u32; 3],
    /// Output net index.
    pub(crate) output: u32,
}

/// A compiled evaluation schedule for one netlist: drive lists, levelled
/// combinational cells and per-net dirty-level fanout.
#[derive(Debug, Clone)]
pub struct EvalSchedule {
    /// `(net, primary-input position)` for every primary-input net.
    pub(crate) input_drives: Vec<(u32, u32)>,
    /// `(net, value)` for every constant net.
    pub(crate) constant_drives: Vec<(u32, bool)>,
    /// `(net, state slot)` for every sequential-cell output net.
    pub(crate) seq_drives: Vec<(u32, u32)>,
    /// `(state slot, D-input net)` captured at the end of every cycle.
    pub(crate) seq_captures: Vec<(u32, u32)>,
    /// Per level: range into `cells`.
    pub(crate) levels: Vec<(u32, u32)>,
    /// All combinational cells, grouped by level, id-ordered within one.
    pub(crate) cells: Vec<ScheduledCell>,
    /// Per net: range into `load_cells` — the scheduled cells this net
    /// feeds.
    pub(crate) net_load_index: Vec<(u32, u32)>,
    /// Flattened, per-net sorted and deduplicated load-cell indices (indices
    /// into `cells`).
    pub(crate) load_cells: Vec<u32>,
    /// Number of sequential state slots.
    state_slots: usize,
}

impl EvalSchedule {
    /// Compiles the schedule for `netlist` from its `cell_levels` — the
    /// result of [`Netlist::combinational_levels`], passed in so pipeline
    /// callers can share one levelization across validation, the rewrite
    /// passes and this compilation.
    pub(crate) fn compile(
        netlist: &Netlist,
        cell_levels: &[Option<u32>],
    ) -> Result<Self, NetlistError> {
        let level_count = cell_levels
            .iter()
            .flatten()
            .max()
            .map_or(0, |&deepest| deepest as usize + 1);

        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); level_count];
        for (idx, level) in cell_levels.iter().enumerate() {
            if let Some(level) = level {
                buckets[*level as usize].push(idx);
            }
        }
        let mut cells = Vec::with_capacity(netlist.cell_count());
        let mut levels = Vec::with_capacity(level_count);
        // Original cell index -> scheduled cell index (combinational only).
        let mut sched_index = vec![u32::MAX; netlist.cell_count()];
        for bucket in &buckets {
            let start = cells.len() as u32;
            for &idx in bucket {
                let cell = netlist.cell(crate::netlist::CellId(idx));
                let mut inputs = [u32::MAX; 3];
                for (slot, net) in inputs.iter_mut().zip(cell.inputs()) {
                    *slot = net.index() as u32;
                }
                sched_index[idx] = cells.len() as u32;
                cells.push(ScheduledCell {
                    kind: cell.kind(),
                    arity: cell.inputs().len() as u8,
                    inputs,
                    output: cell.output().index() as u32,
                });
            }
            levels.push((start, cells.len() as u32));
        }

        let mut seq_drives = Vec::new();
        let mut seq_captures = Vec::new();
        for (_, cell) in netlist.cells() {
            if cell.kind().is_sequential() {
                let slot = seq_drives.len() as u32;
                seq_drives.push((cell.output().index() as u32, slot));
                seq_captures.push((slot, cell.inputs()[0].index() as u32));
            }
        }
        let state_slots = seq_drives.len();

        let mut input_drives = Vec::new();
        let mut constant_drives = Vec::new();
        for (net_id, net) in netlist.nets() {
            match net.driver() {
                Some(Driver::PrimaryInput(position)) => {
                    input_drives.push((net_id.index() as u32, position as u32));
                }
                Some(Driver::Constant(value)) => {
                    constant_drives.push((net_id.index() as u32, value));
                }
                _ => {}
            }
        }

        // Per net, the combinational consumers — the cells to queue for
        // re-evaluation when the net toggles.  One flat array with per-net
        // ranges (counting pass + prefix sums); a cell reading the same net
        // on two pins appears twice, which the activation path tolerates
        // (the second visit finds the cell already active).
        let mut load_counts = vec![0_u32; netlist.net_count()];
        for (idx, level) in cell_levels.iter().enumerate() {
            if level.is_some() {
                for net in netlist.cell(crate::netlist::CellId(idx)).inputs() {
                    load_counts[net.index()] += 1;
                }
            }
        }
        let mut net_load_index = Vec::with_capacity(netlist.net_count());
        let mut total = 0_u32;
        for &count in &load_counts {
            net_load_index.push((total, total + count));
            total += count;
        }
        let mut load_cells = vec![0_u32; total as usize];
        let mut cursor: Vec<u32> = net_load_index.iter().map(|&(start, _)| start).collect();
        for (idx, level) in cell_levels.iter().enumerate() {
            if level.is_some() {
                for net in netlist.cell(crate::netlist::CellId(idx)).inputs() {
                    let slot = &mut cursor[net.index()];
                    load_cells[*slot as usize] = sched_index[idx];
                    *slot += 1;
                }
            }
        }

        Ok(Self {
            input_drives,
            constant_drives,
            seq_drives,
            seq_captures,
            levels,
            cells,
            net_load_index,
            load_cells,
            state_slots,
        })
    }

    /// Number of combinational levels.
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of scheduled combinational cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of sequential state slots.
    #[must_use]
    pub fn state_slots(&self) -> usize {
        self.state_slots
    }

    /// The scheduled cells to queue for re-evaluation when `net` (an
    /// optimized-netlist index) toggles.
    #[inline]
    pub(crate) fn load_cells(&self, net: usize) -> &[u32] {
        let (start, end) = self.net_load_index[net];
        &self.load_cells[start as usize..end as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;

    #[test]
    fn schedule_levels_and_drives_are_complete() {
        let mut n = Netlist::new("sched");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let tie = n.add_constant("tie1", true);
        let ab = n.add_net("ab");
        let gated = n.add_net("gated");
        let q = n.add_net("q");
        n.add_cell("u_and", CellKind::And2, &[a, b], ab).unwrap();
        n.add_cell("u_or", CellKind::Or2, &[ab, tie], gated)
            .unwrap();
        n.add_cell("u_ff", CellKind::Dff, &[gated], q).unwrap();
        n.mark_output(q).unwrap();

        let schedule = EvalSchedule::compile(&n, &n.combinational_levels().unwrap()).unwrap();
        assert_eq!(schedule.level_count(), 2);
        assert_eq!(schedule.cell_count(), 2);
        assert_eq!(schedule.state_slots(), 1);
        assert_eq!(schedule.input_drives.len(), 2);
        assert_eq!(schedule.constant_drives, vec![(tie.index() as u32, true)]);
        assert_eq!(schedule.seq_drives, vec![(q.index() as u32, 0)]);
        assert_eq!(schedule.seq_captures, vec![(0, gated.index() as u32)]);
        // `ab` feeds only the level-1 OR (scheduled cell 1); `a` feeds only
        // the level-0 AND (scheduled cell 0).
        assert_eq!(schedule.load_cells(ab.index()), &[1]);
        assert_eq!(schedule.load_cells(a.index()), &[0]);
        // `q` feeds nothing combinational.
        assert!(schedule.load_cells(q.index()).is_empty());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut n = Netlist::new("loop");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_cell("u1", CellKind::Inv, &[y], x).unwrap();
        n.add_cell("u2", CellKind::Inv, &[x], y).unwrap();
        // The levelization a compile consumes is where the cycle surfaces.
        assert!(matches!(
            n.combinational_levels(),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }
}
