//! Property-based equivalence between the raw walk engines and the
//! level-scheduled engines driving a [`PassPipeline`]-optimized netlist.
//!
//! Over random DAG netlists seeded with constants, duplicate cells and dead
//! nets — the raw material of every pass — the optimized engines must
//! reproduce the raw engines' primary-output waveforms at every step and
//! their *full original-net-space* toggle counts at the end (not just on
//! surviving nets: folded and merged nets are part of the contract), and
//! therefore bit-identical energy reports.  Covered for the scalar engine,
//! the packed engine at random lane counts, and masked final steps.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use fabric_power_netlist::cells::CellKind;
use fabric_power_netlist::library::CellLibrary;
use fabric_power_netlist::netlist::{NetId, Netlist};
use fabric_power_netlist::packed::PackedSimulator;
use fabric_power_netlist::passes::{NetFate, PassPipeline};
use fabric_power_netlist::sim::Simulator;

/// Builds a random acyclic netlist with `cells` cells, deliberately rich in
/// pass fodder: two constant nets in the input pool (so cones fold), a ~25 %
/// chance per cell of duplicating the previous cell's kind and inputs (so
/// structural hashing merges), and a few nets nothing drives or reads (so
/// dead-net pruning fires).  The first `CellKind::ALL.len()` cells cycle
/// through every kind, covering combinational, hold and sequential logic.
fn random_netlist(seed: u64, cells: usize) -> Netlist {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut n = Netlist::new("passes-prop");
    let mut nets: Vec<NetId> = (0..4).map(|i| n.add_input(format!("pi{i}"))).collect();
    nets.push(n.add_constant("tie0", false));
    nets.push(n.add_constant("tie1", true));
    for i in 0..3 {
        // Dead: no driver, no loads.
        n.add_net(format!("debris{i}"));
    }
    let mut previous: Option<(CellKind, Vec<NetId>)> = None;
    for i in 0..cells {
        let (kind, inputs) = match &previous {
            Some((kind, inputs)) if rng.gen::<u64>() % 4 == 0 => (*kind, inputs.clone()),
            _ => {
                let kind = CellKind::ALL[i % CellKind::ALL.len()];
                let inputs: Vec<NetId> = (0..kind.input_count())
                    .map(|_| nets[rng.gen::<u64>() as usize % nets.len()])
                    .collect();
                (kind, inputs)
            }
        };
        let out = n.add_net(format!("n{i}"));
        n.add_cell(format!("c{i}"), kind, &inputs, out).unwrap();
        previous = Some((kind, inputs));
        nets.push(out);
    }
    for net in nets.iter().rev().take(3) {
        n.mark_output(*net).unwrap();
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheduled_scalar_engine_matches_raw_walk_bit_exactly(
        seed in any::<u64>(),
        cells in 15_usize..40,
        cycles in 1_usize..12,
    ) {
        let netlist = random_netlist(seed, cells);
        let library = CellLibrary::calibrated_018um();
        let optimized = PassPipeline::standard().run(&netlist).unwrap();

        // Every original net is accounted for exactly once across the alias
        // tables and the folded set.
        let folded = optimized
            .fates()
            .iter()
            .filter(|f| matches!(f, NetFate::Folded { .. }))
            .count();
        prop_assert!(folded <= netlist.net_count());

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_0001);
        let mut raw = Simulator::new(&netlist, &library).unwrap();
        let mut opt = Simulator::with_passes(&netlist, &optimized, &library).unwrap();
        for _ in 0..cycles {
            let vector: Vec<bool> = (0..netlist.primary_inputs().len())
                .map(|_| rng.gen::<bool>())
                .collect();
            raw.step(&vector);
            opt.step(&vector);
            prop_assert_eq!(raw.output_values(), opt.output_values());
        }
        prop_assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        prop_assert_eq!(raw.report(), opt.report());
    }

    #[test]
    fn scheduled_packed_engine_matches_raw_walk_bit_exactly(
        seed in any::<u64>(),
        lanes in 1_u32..=64,
        cells in 15_usize..40,
        cycles in 1_usize..12,
    ) {
        let netlist = random_netlist(seed, cells);
        let library = CellLibrary::calibrated_018um();
        let optimized = PassPipeline::standard().run(&netlist).unwrap();
        let pi_count = netlist.primary_inputs().len();

        // The final step is a partial one when more than one lane runs:
        // only lanes below `counted_final` are measured in it.  This also
        // exercises a masked *first* step when `cycles == 1`.
        let counted_final = if lanes > 1 { (lanes / 2).max(1) } else { lanes };

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_0002);
        let mut raw = PackedSimulator::new(&netlist, &library, lanes).unwrap();
        let mut opt =
            PackedSimulator::with_passes(&netlist, &optimized, &library, lanes).unwrap();
        for i in 0..cycles {
            let vector: Vec<u64> = (0..pi_count).map(|_| rng.gen::<u64>()).collect();
            if i + 1 == cycles && counted_final < lanes {
                let mask = (1_u64 << counted_final) - 1;
                raw.step_masked(&vector, mask);
                opt.step_masked(&vector, mask);
            } else {
                raw.step(&vector);
                opt.step(&vector);
            }
            prop_assert_eq!(raw.output_words(), opt.output_words());
        }
        prop_assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        prop_assert_eq!(raw.lane_cycles(), opt.lane_cycles());
        prop_assert_eq!(raw.report(), opt.report());
    }

    #[test]
    fn warmup_reset_measure_protocol_is_preserved(
        seed in any::<u64>(),
        cells in 15_usize..32,
        warmup in 1_usize..6,
        measure in 1_usize..8,
    ) {
        // The characterization protocol: warm up, reset counters, measure.
        // The one-shot settle toggles land in the warm-up of both engines
        // and are zeroed together, so measured counts still agree.
        let netlist = random_netlist(seed, cells);
        let library = CellLibrary::calibrated_018um();
        let optimized = PassPipeline::standard().run(&netlist).unwrap();
        let pi_count = netlist.primary_inputs().len();
        let vectors: Vec<Vec<bool>> = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_0003);
            (0..warmup + measure)
                .map(|_| (0..pi_count).map(|_| rng.gen::<bool>()).collect())
                .collect()
        };
        let mut raw = Simulator::new(&netlist, &library).unwrap();
        let mut opt = Simulator::with_passes(&netlist, &optimized, &library).unwrap();
        for sim in [&mut raw, &mut opt] {
            for vector in &vectors[..warmup] {
                sim.step(vector);
            }
            sim.reset_counters();
            for vector in &vectors[warmup..] {
                sim.step(vector);
            }
        }
        prop_assert_eq!(raw.net_toggle_counts(), opt.net_toggle_counts());
        prop_assert_eq!(raw.report(), opt.report());
    }
}
