//! Property-based equivalence between the bit-parallel [`PackedSimulator`]
//! and the scalar [`Simulator`]: over random small netlists covering every
//! [`CellKind`] (combinational, DFF/latch state, tri-state hold), a packed
//! run must reproduce the summed per-lane toggle counts of scalar runs on
//! the per-lane bit streams — and therefore bit-identical energies through
//! the shared [`EnergyTables`].

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use fabric_power_netlist::cells::CellKind;
use fabric_power_netlist::library::CellLibrary;
use fabric_power_netlist::netlist::{NetId, Netlist};
use fabric_power_netlist::packed::PackedSimulator;
use fabric_power_netlist::sim::Simulator;

/// Builds a random acyclic netlist with `cells` cells.  The first
/// `CellKind::ALL.len()` cells cycle through every kind in order, so any
/// netlist with at least that many cells covers the whole cell vocabulary;
/// inputs are drawn only from already-created nets, which keeps the
/// combinational graph a DAG.
fn random_netlist(seed: u64, cells: usize) -> Netlist {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut n = Netlist::new("prop");
    let mut nets: Vec<NetId> = (0..4).map(|i| n.add_input(format!("pi{i}"))).collect();
    for i in 0..cells {
        let kind = CellKind::ALL[i % CellKind::ALL.len()];
        let inputs: Vec<NetId> = (0..kind.input_count())
            .map(|_| nets[rng.gen::<u64>() as usize % nets.len()])
            .collect();
        let out = n.add_net(format!("n{i}"));
        n.add_cell(format!("c{i}"), kind, &inputs, out).unwrap();
        nets.push(out);
    }
    n.mark_output(*nets.last().unwrap()).unwrap();
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packed_run_matches_summed_scalar_lanes_bit_exactly(
        seed in any::<u64>(),
        lanes in 1_u32..=64,
        cells in 15_usize..48,
        cycles in 1_usize..16,
    ) {
        let netlist = random_netlist(seed, cells);
        let library = CellLibrary::calibrated_018um();
        let pi_count = netlist.primary_inputs().len();

        // Random per-cycle input words: bit L of each word is lane L's
        // input bit for that cycle.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD_EF01);
        let vectors: Vec<Vec<u64>> = (0..cycles)
            .map(|_| (0..pi_count).map(|_| rng.gen::<u64>()).collect())
            .collect();

        // The final step is a partial one when more than one lane runs:
        // only lanes below `counted_final` are measured in it.
        let counted_final = if lanes > 1 { (lanes / 2).max(1) } else { lanes };

        let mut packed = PackedSimulator::new(&netlist, &library, lanes).unwrap();
        for (i, vector) in vectors.iter().enumerate() {
            if i + 1 == cycles && counted_final < lanes {
                packed.step_masked(vector, (1_u64 << counted_final) - 1);
            } else {
                packed.step(vector);
            }
        }

        // Scalar oracle: lane L replays bit L of the vectors; lanes masked
        // out of the final packed step simply stop one cycle earlier (their
        // final-step activity is unmeasured by construction).
        let mut summed = vec![0_u64; netlist.net_count()];
        let mut lane_cycles = 0_u64;
        for lane in 0..lanes {
            let steps = if lane < counted_final { cycles } else { cycles - 1 };
            let mut scalar = Simulator::new(&netlist, &library).unwrap();
            for vector in &vectors[..steps] {
                let bits: Vec<bool> =
                    vector.iter().map(|word| (word >> lane) & 1 == 1).collect();
                scalar.step(&bits);
            }
            for (acc, &count) in summed.iter_mut().zip(scalar.net_toggle_counts()) {
                *acc += count;
            }
            lane_cycles += steps as u64;
        }

        prop_assert_eq!(packed.net_toggle_counts(), &summed[..]);
        prop_assert_eq!(packed.lane_cycles(), lane_cycles);
        // Identical integer counts ⇒ bit-identical energy reports through
        // the shared deterministic count→energy conversion.
        let tables = Simulator::new(&netlist, &library).unwrap().energy_tables().clone();
        prop_assert_eq!(packed.report(), tables.report_from_counts(&summed, lane_cycles));
    }
}
