//! The process-wide metrics registry: named counters, gauges and fixed-bin
//! histograms, readable as one deterministic [`MetricsSnapshot`].
//!
//! Instruments are interned by name on first use and live for the rest of
//! the process (`Box::leak`, bounded by the fixed instrument vocabulary in
//! [`names`] plus one histogram per span phase), so recording on a handle is
//! a single atomic RMW — cheap enough to leave on unconditionally.  All of
//! it is out-of-band: nothing in the workspace reads a metric to make a
//! decision, so computation is byte-identical with the registry hot or cold.
//!
//! # Histogram shape
//!
//! [`Histogram`] reuses the shape of the router's `LatencyHistogram`: a
//! fixed array of bins plus exact `count`/`sum`/`max` integers.  Where the
//! latency histogram affords one exact bin per cycle value, a wall-time
//! histogram spans nanoseconds to minutes, so the fixed bins here are
//! power-of-two buckets of the recorded value (bin *i* holds values whose
//! highest set bit is *i − 1*; bin 0 holds zero).  Mean and totals stay
//! exact through `count`/`sum`; the bins answer "what order of magnitude"
//! distribution questions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::log::{push_json_f64, push_json_string};

/// The workspace's named-instrument vocabulary, so call sites and readers
/// (e.g. `fabric-power cache stats`) agree on spellings.
pub mod names {
    /// Counter: energy models served from the in-memory memo or disk cache.
    pub const MODEL_CACHE_HIT: &str = "model_cache.hit";
    /// Counter: energy models built because no cache layer had them.
    pub const MODEL_CACHE_MISS: &str = "model_cache.miss";
    /// Counter: on-disk cache entries rejected by verification and rebuilt
    /// (the rebuild re-persists, healing the entry in place).
    pub const MODEL_CACHE_HEAL: &str = "model_cache.heal";
    /// Counter: sweep cells completed by this process's engine.
    pub const CELLS_COMPLETED: &str = "sweep.cells_completed";
    /// Counter: shard leases granted by the work server.
    pub const LEASES_GRANTED: &str = "fleet.leases_granted";
    /// Counter: leases revoked because the deadline passed.
    pub const LEASES_EXPIRED: &str = "fleet.leases_expired";
    /// Counter: shards requeued (expiry or worker disconnect).
    pub const LEASES_REQUEUED: &str = "fleet.leases_requeued";
    /// Counter: shard submissions accepted by the work server.
    pub const SUBMISSIONS_ACCEPTED: &str = "fleet.submissions_accepted";
    /// Counter: shard submissions rejected by validation.
    pub const SUBMISSIONS_REJECTED: &str = "fleet.submissions_rejected";
    /// Counter: worker heartbeats processed by the work server.
    pub const HEARTBEATS: &str = "fleet.heartbeats";
    /// Counter: protocol bytes written by this process.
    pub const WIRE_BYTES_SENT: &str = "wire.bytes_sent";
    /// Counter: protocol bytes read by this process.
    pub const WIRE_BYTES_RECEIVED: &str = "wire.bytes_received";
    /// Gauge: worker connections currently live on the work server.
    pub const WORKERS_CONNECTED: &str = "fleet.workers_connected";
    /// Gauge: simulation lanes used by the most recent characterization run
    /// (64 for the bit-parallel engine, 1 for the scalar engine).
    pub const CHARACTERIZE_LANES: &str = "characterize.lanes";
    /// Counter: measured lane-cycles simulated by characterization.
    pub const CHARACTERIZE_LANE_CYCLES: &str = "characterize.lane_cycles";
    /// Histogram: characterization throughput per occupancy measurement, in
    /// lane-cycles per second.
    pub const CHARACTERIZE_LANE_CYCLES_PER_SEC: &str = "characterize.lane_cycles_per_sec";
    /// Counter: cells removed by netlist optimization passes.
    pub const PASSES_CELLS_REMOVED: &str = "netlist.passes.cells_removed";
    /// Counter: nets removed by netlist optimization passes.
    pub const PASSES_NETS_REMOVED: &str = "netlist.passes.nets_removed";
    /// Gauge: combinational levels of the most recently compiled evaluation
    /// schedule.
    pub const PASSES_SCHEDULE_LEVELS: &str = "netlist.passes.schedule_levels";
    /// Counter: worker sessions re-established after a mid-drain
    /// disconnect (server died, injected fault, torn frame).
    pub const WORKER_RECONNECTS: &str = "fleet.worker_reconnects";
    /// Counter: redials of the work server beyond the first attempt of a
    /// connect loop (backoff retries).
    pub const CONNECT_RETRIES: &str = "fleet.connect_retries";
    /// Counter: shard documents appended to the drain journal.
    pub const JOURNAL_RECORDS_APPENDED: &str = "journal.records_appended";
    /// Counter: shard documents restored from a drain journal on resume.
    pub const JOURNAL_RECORDS_REPLAYED: &str = "journal.records_replayed";
    /// Counter: drain-journal appends that failed (and were rolled back);
    /// the affected shard is simply re-run on resume.
    pub const JOURNAL_APPEND_ERRORS: &str = "journal.append_errors";
    /// Counter: bytes of torn or corrupt journal tail dropped by replay.
    pub const JOURNAL_TORN_BYTES_DROPPED: &str = "journal.torn_bytes_dropped";
    /// Counter: model-cache disk writes that failed (ENOSPC and kin); the
    /// provider falls back to its in-memory memo and the sweep continues.
    pub const MODEL_CACHE_WRITE_ERROR: &str = "model_cache.write_error";
    /// Counter: wire faults injected by the fault-injection layer.
    pub const FAULTS_WIRE_INJECTED: &str = "faults.wire_injected";
    /// Counter: disk faults injected by the fault-injection layer.
    pub const FAULTS_DISK_INJECTED: &str = "faults.disk_injected";
    /// Counter: payload words forwarded over inter-router NoC links.
    pub const NOC_FLITS_ROUTED: &str = "noc.flits_routed";
    /// Counter: NoC link launches that stalled waiting for credits.
    pub const NOC_CREDIT_STALLS: &str = "noc.credits_stalled";
    /// Histogram: wall-clock nanoseconds per NoC global tick.
    pub const NOC_TICK_NANOS: &str = "noc.tick_nanos";
}

/// A monotonically increasing named count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named value that can move both ways (e.g. live connections).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value outright.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Moves the value by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Power-of-two buckets: bin 0 counts zeros, bin `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`, and the last bin absorbs everything from `2^62` up.
pub const HISTOGRAM_BINS: usize = 64;

/// A fixed-bin streaming histogram (see the module docs for the bin layout).
#[derive(Debug)]
pub struct Histogram {
    bins: [AtomicU64; HISTOGRAM_BINS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        let bin = match value {
            0 => 0,
            v => usize::try_from(v.ilog2() + 1)
                .unwrap_or(HISTOGRAM_BINS - 1)
                .min(HISTOGRAM_BINS - 1),
        };
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let bins = self
            .bins
            .iter()
            .enumerate()
            .filter_map(|(index, bin)| {
                let count = bin.load(Ordering::Relaxed);
                (count > 0).then(|| (bin_upper_bound(index), count))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            bins,
        }
    }
}

/// The inclusive upper bound of bin `index` (`u64::MAX` for the last bin).
fn bin_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1_u64 << index) - 1
    }
}

/// A point-in-time copy of one [`Histogram`], sparse over non-empty bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all recorded samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
    /// `(inclusive upper bound, samples)` for every non-empty bin,
    /// ascending.
    pub bins: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counter named `name`, created (at zero) on first use.
pub fn counter(name: &str) -> &'static Counter {
    if let Some(counter) = registry().counters.get(name) {
        return counter;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter::new()));
    registry()
        .counters
        .entry(name.to_string())
        .or_insert(leaked)
}

/// The gauge named `name`, created (at zero) on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    if let Some(gauge) = registry().gauges.get(name) {
        return gauge;
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    registry().gauges.entry(name.to_string()).or_insert(leaked)
}

/// The histogram named `name`, created (empty) on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    if let Some(histogram) = registry().histograms.get(name) {
        return histogram;
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    registry()
        .histograms
        .entry(name.to_string())
        .or_insert(leaked)
}

/// A deterministic point-in-time copy of every registered instrument, in
/// name order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Every registered counter's current count, by name.
    pub counters: BTreeMap<String, u64>,
    /// Every registered gauge's current value, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Every registered histogram's current contents, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether no instrument has been registered at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as one JSON object (hand-assembled: this crate
    /// deliberately has no dependencies, serde included).
    ///
    /// Shape:
    ///
    /// ```json
    /// {
    ///   "counters": {"model_cache.hit": 3},
    ///   "gauges": {"fleet.workers_connected": 2},
    ///   "histograms": {
    ///     "phase.merge.micros": {
    ///       "count": 1, "sum": 180, "max": 180, "mean": 180.0,
    ///       "bins": [[255, 1]]
    ///     }
    ///   }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (index, (name, histogram)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":",
                histogram.count, histogram.sum, histogram.max
            ));
            push_json_f64(&mut out, histogram.mean());
            out.push_str(",\"bins\":[");
            for (bin_index, (bound, count)) in histogram.bins.iter().enumerate() {
                if bin_index > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// A compact human table: one `name value` line per instrument,
    /// histograms summarized as `count/mean/max`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "counter    {name} = {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "gauge      {name} = {value}")?;
        }
        for (name, histogram) in &self.histograms {
            writeln!(
                f,
                "histogram  {name} = count {} mean {:.1} max {}",
                histogram.count,
                histogram.mean(),
                histogram.max
            )?;
        }
        Ok(())
    }
}

/// Copies every registered instrument into a [`MetricsSnapshot`].
///
/// Instrument sets and orderings are deterministic (name-sorted); the values
/// are whatever the process has recorded so far.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let registry = registry();
    MetricsSnapshot {
        counters: registry
            .counters
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect(),
        gauges: registry
            .gauges
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.get()))
            .collect(),
        histograms: registry
            .histograms
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect(),
    }
}

/// Resets every registered instrument to zero (the instruments stay
/// registered).  For tests that need isolated counts in one process.
pub fn reset() {
    let registry = registry();
    for counter in registry.counters.values() {
        counter.value.store(0, Ordering::Relaxed);
    }
    for gauge in registry.gauges.values() {
        gauge.value.store(0, Ordering::Relaxed);
    }
    for histogram in registry.histograms.values() {
        for bin in &histogram.bins {
            bin.store(0, Ordering::Relaxed);
        }
        histogram.count.store(0, Ordering::Relaxed);
        histogram.sum.store(0, Ordering::Relaxed);
        histogram.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_intern_by_name() {
        let a = counter("test.metrics.counter_a");
        a.increment();
        a.add(4);
        assert_eq!(counter("test.metrics.counter_a").get(), a.get());
        assert!(a.get() >= 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let gauge = gauge("test.metrics.gauge");
        gauge.set(3);
        gauge.add(-5);
        assert_eq!(gauge.get(), -2);
        gauge.set(0);
    }

    #[test]
    fn histogram_bins_are_powers_of_two() {
        let histogram = histogram("test.metrics.histogram_bins");
        for value in [0, 1, 2, 3, 900, u64::MAX] {
            histogram.observe(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 6);
        assert_eq!(snapshot.max, u64::MAX);
        // 0 → bin 0; 1 → (0,1]; 2,3 → (1,3]; 900 → (511,1023]; MAX → last.
        let bounds: Vec<u64> = snapshot.bins.iter().map(|&(bound, _)| bound).collect();
        assert_eq!(bounds, vec![0, 1, 3, 1023, u64::MAX]);
        let counts: Vec<u64> = snapshot.bins.iter().map(|&(_, count)| count).collect();
        assert_eq!(counts, vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn snapshot_is_name_ordered_and_renders_as_json_and_text() {
        counter("test.metrics.z").increment();
        counter("test.metrics.a").increment();
        histogram("test.metrics.h").observe(180);
        let snapshot = snapshot();
        let names: Vec<&String> = snapshot.counters.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "BTreeMap keeps name order");
        let json = snapshot.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"test.metrics.h\":{\"count\":"));
        assert!(!json.contains('\n'));
        let text = snapshot.to_string();
        assert!(text.contains("counter    test.metrics.a"));
        assert!(text.contains("histogram  test.metrics.h"));
        assert!(!snapshot.is_empty());
    }

    #[test]
    fn histogram_mean_is_exact_over_integers() {
        let histogram = histogram("test.metrics.mean");
        histogram.observe(10);
        histogram.observe(30);
        let snapshot = histogram.snapshot();
        assert!((snapshot.mean() - 20.0).abs() < 1e-12);
        assert_eq!(snapshot.sum, 40);
    }
}
