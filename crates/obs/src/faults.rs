//! Deterministic fault injection for chaos testing the fleet stack.
//!
//! A [`FaultPlan`] schedules wire faults (dropped connections, truncated or
//! garbage frames, delayed writes) and disk faults (torn or failed writes)
//! at deterministic operation indices, so a chaos run is reproducible: the
//! same plan against the same sequence of operations injects the same
//! faults.  Instrumented call sites — the sweep protocol's `write_message`,
//! the drain journal's append path, the model provider's disk store — ask
//! [`next_wire_fault`] / [`next_disk_fault`] before each operation.
//!
//! # Off by default, provably inert
//!
//! Nothing is injected unless a plan is installed, either by a test
//! ([`install`]) or by the `fabric-power` binary parsing the
//! `FABRIC_POWER_FAULTS` environment variable at startup
//! ([`init_from_env`]).  When no plan is installed the entire layer is one
//! relaxed atomic load per hook ([`active`]) — no locks, no RNG, no
//! allocation — and the chaos test suite pins that documents are
//! byte-identical with the hooks compiled in and no plan installed.
//!
//! # Spec format
//!
//! A plan serializes to (and parses from) a comma-separated `key=value`
//! spec, which is also the `FABRIC_POWER_FAULTS` wire format:
//!
//! ```text
//! FABRIC_POWER_FAULTS="seed=7,wire_garbage_every=23,wire_delay_every=11,wire_delay_ms=2,disk_torn_every=5"
//! ```
//!
//! Every `*_every=N` knob injects that fault on (deterministically
//! seed-phased) every Nth operation of its kind; `0` (the default)
//! disables the knob.  Faults injected are counted in the metrics registry
//! (`faults.wire_injected`, `faults.disk_injected`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::metrics;

/// The environment variable [`init_from_env`] reads.
pub const FAULTS_ENV: &str = "FABRIC_POWER_FAULTS";

/// A deterministic, serializable schedule of injected faults.
///
/// All `*_every` knobs count operations of their kind process-wide; `0`
/// disables a knob.  The `seed` phases each knob's schedule (and makes two
/// plans with the same knobs but different seeds inject at different
/// operation indices), so "every 5th disk write" does not always mean the
/// 5th, 10th, … — it means one in every window of 5, at a seed-chosen
/// offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Phases every schedule; two equal plans inject identically.
    pub seed: u64,
    /// Drop the connection instead of writing (sender sees a reset).
    pub wire_drop_every: u64,
    /// Write only the first half of a frame, then fail the send.
    pub wire_truncate_every: u64,
    /// Replace the frame with an unparseable garbage line (the send
    /// "succeeds"; the receiver chokes).
    pub wire_garbage_every: u64,
    /// Sleep [`FaultPlan::wire_delay_ms`] before the write.
    pub wire_delay_every: u64,
    /// How long a `wire_delay_every` fault sleeps, in milliseconds.
    pub wire_delay_ms: u64,
    /// Persist only the first half of a disk payload (a torn write).
    pub disk_torn_every: u64,
    /// Fail the disk write outright (as ENOSPC would).
    pub disk_fail_every: u64,
}

impl FaultPlan {
    /// Parses the `key=value,key=value` spec format (see module docs).
    ///
    /// # Errors
    ///
    /// Unknown keys, missing `=` and unparseable values are all refused
    /// with a message naming the offending token — a typo in a chaos run
    /// must not silently disable the fault it meant to enable.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault spec token `{token}` is not `key=value`"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault spec `{key}` value `{value}` is not an integer"))?;
            match key.trim() {
                "seed" => plan.seed = value,
                "wire_drop_every" => plan.wire_drop_every = value,
                "wire_truncate_every" => plan.wire_truncate_every = value,
                "wire_garbage_every" => plan.wire_garbage_every = value,
                "wire_delay_every" => plan.wire_delay_every = value,
                "wire_delay_ms" => plan.wire_delay_ms = value,
                "disk_torn_every" => plan.disk_torn_every = value,
                "disk_fail_every" => plan.disk_fail_every = value,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Serializes back to the spec format `parse` accepts (only non-default
    /// knobs are emitted, plus the seed).
    #[must_use]
    pub fn to_spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        for (key, value) in [
            ("wire_drop_every", self.wire_drop_every),
            ("wire_truncate_every", self.wire_truncate_every),
            ("wire_garbage_every", self.wire_garbage_every),
            ("wire_delay_every", self.wire_delay_every),
            ("wire_delay_ms", self.wire_delay_ms),
            ("disk_torn_every", self.disk_torn_every),
            ("disk_fail_every", self.disk_fail_every),
        ] {
            if value != 0 {
                parts.push(format!("{key}={value}"));
            }
        }
        parts.join(",")
    }

    /// Whether any knob can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.wire_drop_every != 0
            || self.wire_truncate_every != 0
            || self.wire_garbage_every != 0
            || self.wire_delay_every != 0
            || self.disk_torn_every != 0
            || self.disk_fail_every != 0
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_spec())
    }
}

/// A wire fault [`next_wire_fault`] scheduled for the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Fail the send as if the connection reset (nothing is written).
    Drop,
    /// Write only the first half of the frame, then fail the send.
    Truncate,
    /// Write an unparseable garbage line instead of the frame and report
    /// success to the sender.
    Garbage,
    /// Sleep this long, then write normally.
    Delay(Duration),
}

/// A disk fault [`next_disk_fault`] scheduled for the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Persist only the first half of the payload (a torn write).
    Torn,
    /// Fail the write outright.
    Fail,
}

struct FaultState {
    plan: FaultPlan,
    wire_ops: AtomicU64,
    disk_ops: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state_slot() -> &'static Mutex<Option<Arc<FaultState>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultState>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn current_state() -> Option<Arc<FaultState>> {
    state_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Whether a fault plan is installed.  This is the fast path every hook
/// checks first: one relaxed atomic load, so the layer costs nothing when
/// faults are off.
#[inline]
#[must_use]
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `plan` process-wide (the test constructor).  Operation
/// counters restart from zero, so installing the same plan twice yields
/// the same schedule.
pub fn install(plan: FaultPlan) {
    let enable = plan.is_active();
    *state_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(FaultState {
        plan,
        wire_ops: AtomicU64::new(0),
        disk_ops: AtomicU64::new(0),
    }));
    ENABLED.store(enable, Ordering::Relaxed);
}

/// Removes any installed plan; every hook reverts to its no-op fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *state_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The currently installed plan, if any.
#[must_use]
pub fn current() -> Option<FaultPlan> {
    current_state().map(|state| state.plan.clone())
}

/// Reads [`FAULTS_ENV`] and installs the plan it describes; returns whether
/// a plan was installed.  Called once by the `fabric-power` binary at
/// startup — library users install via [`install`] or not at all.
///
/// # Errors
///
/// A set-but-malformed spec is an error (see [`FaultPlan::parse`]): a chaos
/// run with a typoed spec must fail loudly, not run fault-free.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var(FAULTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan =
                FaultPlan::parse(&spec).map_err(|e| format!("parsing ${FAULTS_ENV}: {e}"))?;
            let active = plan.is_active();
            install(plan);
            Ok(active)
        }
        _ => Ok(false),
    }
}

/// SplitMix64: the workspace's stock small deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether operation `op` (0-based) fires a knob scheduled `every` ops,
/// phased by `seed ^ tag`.
fn fires(op: u64, every: u64, seed: u64, tag: u64) -> bool {
    if every == 0 {
        return false;
    }
    let phase = splitmix64(seed ^ tag) % every;
    op % every == phase
}

/// The fault (if any) scheduled for the next wire write.  `None` always
/// when no plan is installed.  Injections are counted in
/// `faults.wire_injected`.
#[must_use]
pub fn next_wire_fault() -> Option<WireFault> {
    if !active() {
        return None;
    }
    let state = current_state()?;
    let op = state.wire_ops.fetch_add(1, Ordering::Relaxed);
    let plan = &state.plan;
    let fault = if fires(op, plan.wire_drop_every, plan.seed, 0x1) {
        WireFault::Drop
    } else if fires(op, plan.wire_truncate_every, plan.seed, 0x2) {
        WireFault::Truncate
    } else if fires(op, plan.wire_garbage_every, plan.seed, 0x3) {
        WireFault::Garbage
    } else if fires(op, plan.wire_delay_every, plan.seed, 0x4) {
        WireFault::Delay(Duration::from_millis(plan.wire_delay_ms))
    } else {
        return None;
    };
    metrics::counter(metrics::names::FAULTS_WIRE_INJECTED).increment();
    Some(fault)
}

/// The fault (if any) scheduled for the next disk write.  `None` always
/// when no plan is installed.  Injections are counted in
/// `faults.disk_injected`.
#[must_use]
pub fn next_disk_fault() -> Option<DiskFault> {
    if !active() {
        return None;
    }
    let state = current_state()?;
    let op = state.disk_ops.fetch_add(1, Ordering::Relaxed);
    let plan = &state.plan;
    let fault = if fires(op, plan.disk_fail_every, plan.seed, 0x5) {
        DiskFault::Fail
    } else if fires(op, plan.disk_torn_every, plan.seed, 0x6) {
        DiskFault::Torn
    } else {
        return None;
    };
    metrics::counter(metrics::names::FAULTS_DISK_INJECTED).increment();
    Some(fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installing/clearing mutates process-wide state; serialize the tests
    /// that touch it.
    static FAULTS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_round_trips_and_refuses_garbage() {
        let plan = FaultPlan {
            seed: 7,
            wire_garbage_every: 23,
            wire_delay_every: 11,
            wire_delay_ms: 2,
            disk_torn_every: 5,
            ..FaultPlan::default()
        };
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::parse(&spec).expect("round trip"), plan);
        assert_eq!(
            FaultPlan::parse("seed=7, disk_torn_every=5").expect("spaces ok"),
            FaultPlan {
                seed: 7,
                disk_torn_every: 5,
                ..FaultPlan::default()
            }
        );
        assert!(FaultPlan::parse("wat").is_err());
        assert!(FaultPlan::parse("unknown_knob=3").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
    }

    #[test]
    fn inactive_layer_injects_nothing() {
        let _guard = FAULTS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        assert!(!active());
        for _ in 0..100 {
            assert_eq!(next_wire_fault(), None);
            assert_eq!(next_disk_fault(), None);
        }
        // A plan with no live knobs is also inert, whatever its seed.
        install(FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        });
        assert!(!active());
        clear();
    }

    #[test]
    fn schedules_are_deterministic_and_seed_phased() {
        let _guard = FAULTS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let plan = FaultPlan {
            seed: 3,
            wire_drop_every: 4,
            disk_torn_every: 3,
            ..FaultPlan::default()
        };
        let run = |plan: &FaultPlan| {
            install(plan.clone());
            let wire: Vec<_> = (0..12).map(|_| next_wire_fault()).collect();
            let disk: Vec<_> = (0..12).map(|_| next_disk_fault()).collect();
            (wire, disk)
        };
        let (wire_a, disk_a) = run(&plan);
        let (wire_b, disk_b) = run(&plan);
        assert_eq!(wire_a, wire_b, "same plan, same schedule");
        assert_eq!(disk_a, disk_b);
        assert_eq!(
            wire_a.iter().filter(|f| f.is_some()).count(),
            3,
            "every 4th of 12 wire ops"
        );
        assert_eq!(disk_a.iter().filter(|f| f.is_some()).count(), 4);
        // A different seed phases the schedule differently (with every=4
        // there are 4 possible phases; seeds 3 and 6 happen to differ).
        let reseeded = FaultPlan { seed: 6, ..plan };
        let (wire_c, _) = run(&reseeded);
        assert_ne!(wire_a, wire_c, "different seed, different phase");
        clear();
    }
}
