//! Structured, leveled, target-tagged events with two sinks (human-readable
//! stderr, optional JSONL file) and `FABRIC_POWER_LOG` filtering.
//!
//! # Filtering
//!
//! One [`Filter`] gates both sinks.  Its spec is a comma-separated list of
//! directives, each either a bare level (`info`, `debug`, …, or `off`) that
//! sets the default, or `target=level` scoping the level to every target
//! whose dot-separated path starts with `target`:
//!
//! ```text
//! FABRIC_POWER_LOG=info                       # default
//! FABRIC_POWER_LOG=debug                      # everything at debug+
//! FABRIC_POWER_LOG=warn,sweep.server=trace    # quiet, except the server
//! FABRIC_POWER_LOG=off                        # silence
//! ```
//!
//! The most specific (longest) matching directive wins.  An unset or
//! unparseable `FABRIC_POWER_LOG` means `info`.
//!
//! # Timestamps
//!
//! Events are stamped with seconds elapsed since the first event of the
//! process, not wall-clock time: the workspace has no date/time formatting
//! dependency, and relative stamps are what phase timing needs anyway.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::metrics;

/// Event severity, ordered from most verbose to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Per-item detail (e.g. one event per sweep cell).
    Trace,
    /// Phase-level detail (span timings, cache probes).
    Debug,
    /// Lifecycle events an operator wants by default.
    Info,
    /// Something degraded but recoverable (a healed cache entry, a requeue).
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Every level, most verbose first.
    pub const ALL: [Self; 5] = [
        Self::Trace,
        Self::Debug,
        Self::Info,
        Self::Warn,
        Self::Error,
    ];

    /// The canonical lowercase spelling (`trace` … `error`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Trace => "trace",
            Self::Debug => "debug",
            Self::Info => "info",
            Self::Warn => "warn",
            Self::Error => "error",
        }
    }

    /// Parses a level name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(input: &str) -> Result<Self, String> {
        match input.to_ascii_lowercase().as_str() {
            "trace" => Ok(Self::Trace),
            "debug" => Ok(Self::Debug),
            "info" => Ok(Self::Info),
            "warn" | "warning" => Ok(Self::Warn),
            "error" => Ok(Self::Error),
            other => Err(format!(
                "unknown log level `{other}` (expected trace, debug, info, warn, error or off)"
            )),
        }
    }

    fn rank(self) -> u8 {
        match self {
            Self::Trace => 0,
            Self::Debug => 1,
            Self::Info => 2,
            Self::Warn => 3,
            Self::Error => 4,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as JSON `null`).
    F64(f64),
    /// A string.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bool(v) => write!(f, "{v}"),
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $target:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(value: $ty) -> Self {
                Self::$variant(value as $target)
            }
        })*
    };
}

impl From<bool> for FieldValue {
    fn from(value: bool) -> Self {
        Self::Bool(value)
    }
}

field_from! {
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    f32 => F64 as f64,
    f64 => F64 as f64,
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        Self::Str(value.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        Self::Str(value)
    }
}

impl From<&String> for FieldValue {
    fn from(value: &String) -> Self {
        Self::Str(value.clone())
    }
}

/// One parsed `target=level` directive (`target` empty = the default).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Directive {
    target: String,
    /// `None` means `off`.
    level: Option<Level>,
}

/// Decides which events are emitted, by level and target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    directives: Vec<Directive>,
}

impl Default for Filter {
    /// The out-of-the-box filter: `info`.
    fn default() -> Self {
        Self::level(Level::Info)
    }
}

impl Filter {
    /// A filter that admits `level` and above for every target.
    #[must_use]
    pub fn level(level: Level) -> Self {
        Self {
            directives: vec![Directive {
                target: String::new(),
                level: Some(level),
            }],
        }
    }

    /// A filter that admits nothing.
    #[must_use]
    pub fn off() -> Self {
        Self {
            directives: vec![Directive {
                target: String::new(),
                level: None,
            }],
        }
    }

    /// Parses a `FABRIC_POWER_LOG`-style spec (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut directives = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (target, level_str) = match raw.split_once('=') {
                Some((target, level)) => (target.trim().to_string(), level.trim()),
                None => (String::new(), raw),
            };
            let level = if level_str.eq_ignore_ascii_case("off") {
                None
            } else {
                Some(Level::parse(level_str)?)
            };
            directives.push(Directive { target, level });
        }
        if directives.is_empty() {
            return Err(format!("empty log filter spec `{spec}`"));
        }
        Ok(Self { directives })
    }

    /// Whether an event at `level` for `target` passes this filter.
    ///
    /// A directive matches a target when its name is a dot-boundary prefix
    /// of it (`sweep` matches `sweep.server` but not `sweeps`); the longest
    /// matching directive decides.
    #[must_use]
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let mut best: Option<&Directive> = None;
        for directive in &self.directives {
            if !prefix_matches(&directive.target, target) {
                continue;
            }
            if best.is_none_or(|b| directive.target.len() >= b.target.len()) {
                best = Some(directive);
            }
        }
        match best {
            Some(directive) => directive.level.is_some_and(|minimum| level >= minimum),
            None => false,
        }
    }

    /// The most verbose level any directive admits (`None` = fully off) —
    /// the cheap pre-check [`enabled`] uses before consulting directives.
    fn most_verbose(&self) -> Option<Level> {
        self.directives.iter().filter_map(|d| d.level).min()
    }
}

fn prefix_matches(prefix: &str, target: &str) -> bool {
    if prefix.is_empty() {
        return true;
    }
    match target.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('.'),
        None => false,
    }
}

/// The process-wide logger: one filter, stderr always, JSONL optionally.
struct Logger {
    filter: Filter,
    json: Option<BufWriter<File>>,
}

impl Logger {
    fn from_env() -> Self {
        let filter = std::env::var("FABRIC_POWER_LOG")
            .ok()
            .and_then(|spec| Filter::parse(&spec).ok())
            .unwrap_or_default();
        Self { filter, json: None }
    }
}

/// 5 = everything filtered out.
const RANK_OFF: u8 = 5;

/// Mirrors the active filter's most verbose admitted rank, read without the
/// lock so disabled events cost one relaxed atomic load.  Starts at the
/// default filter's `info`.
static MIN_RANK: AtomicU8 = AtomicU8::new(2);
static LOGGER: OnceLock<Mutex<Logger>> = OnceLock::new();
static START: OnceLock<Instant> = OnceLock::new();

fn logger() -> MutexGuard<'static, Logger> {
    let mutex = LOGGER.get_or_init(|| {
        let logger = Logger::from_env();
        publish_min_rank(&logger.filter);
        Mutex::new(logger)
    });
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn publish_min_rank(filter: &Filter) {
    let rank = filter.most_verbose().map_or(RANK_OFF, Level::rank);
    MIN_RANK.store(rank, Ordering::Relaxed);
}

/// Seconds elapsed since the process's first observability call.
#[must_use]
pub fn elapsed_seconds() -> f64 {
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Replaces the process-wide filter (normally parsed from
/// `FABRIC_POWER_LOG`; explicit calls are for the CLI's `--log` flag and for
/// tests).
pub fn set_filter(filter: Filter) {
    let mut logger = logger();
    publish_min_rank(&filter);
    logger.filter = filter;
}

/// Routes a JSONL copy of every admitted event to `path` (truncating it).
///
/// # Errors
///
/// Propagates file-creation failures.
pub fn log_json_to_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    logger().json = Some(BufWriter::new(file));
    Ok(())
}

/// Stops writing the JSONL sink (flushing what was buffered).
pub fn clear_json() {
    if let Some(mut writer) = logger().json.take() {
        let _ = writer.flush();
    }
}

/// Whether an event at `level` for `target` would currently be emitted.
///
/// Cheap when the answer is no: a disabled level costs one relaxed atomic
/// load, no lock.
#[must_use]
pub fn enabled(level: Level, target: &str) -> bool {
    if level.rank() < MIN_RANK.load(Ordering::Relaxed) {
        return false;
    }
    logger().filter.enabled(level, target)
}

/// Emits one event to every active sink.  Prefer the [`crate::event!`] /
/// [`crate::info!`]-family macros, which check [`enabled`] first and build
/// the field slice inline.
pub fn emit(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    let elapsed = elapsed_seconds();
    let mut logger = logger();
    if !logger.filter.enabled(level, target) {
        return;
    }
    let mut line = format!("[{elapsed:9.3}s {:5} {target}] {message}", level.as_str());
    for (key, value) in fields {
        use std::fmt::Write as _;
        let _ = write!(line, " {key}={value}");
    }
    eprintln!("{line}");
    if let Some(writer) = logger.json.as_mut() {
        let mut json = String::with_capacity(line.len() + 48);
        json.push_str("{\"t\":");
        push_json_f64(&mut json, elapsed);
        json.push_str(",\"level\":\"");
        json.push_str(level.as_str());
        json.push_str("\",\"target\":");
        push_json_string(&mut json, target);
        json.push_str(",\"msg\":");
        push_json_string(&mut json, message);
        if !fields.is_empty() {
            json.push_str(",\"fields\":{");
            for (index, (key, value)) in fields.iter().enumerate() {
                if index > 0 {
                    json.push(',');
                }
                push_json_string(&mut json, key);
                json.push(':');
                push_json_value(&mut json, value);
            }
            json.push('}');
        }
        json.push('}');
        json.push('\n');
        // One write per line and an immediate flush: a reader tailing the
        // file (or reading it after a kill) never sees a torn line.
        let _ = writer.write_all(json.as_bytes());
        let _ = writer.flush();
    }
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float as JSON (non-finite values become `null`, which bare
/// `Display` floats would not: `NaN` is not JSON).
pub(crate) fn push_json_f64(out: &mut String, value: f64) {
    use std::fmt::Write as _;
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn push_json_value(out: &mut String, value: &FieldValue) {
    use std::fmt::Write as _;
    match value {
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => push_json_f64(out, *v),
        FieldValue::Str(v) => push_json_string(out, v),
    }
}

/// A timed scope for one pipeline phase.  Dropping it emits a completion
/// event carrying the elapsed microseconds and feeds the per-phase wall-time
/// histogram `phase.<name>.micros` in the metrics registry.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
pub struct Span {
    level: Level,
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Opens a [`Span`] for phase `name`, reported at [`Level::Debug`] under
/// `target` when it closes.
pub fn span(target: &'static str, name: &'static str) -> Span {
    Span {
        level: Level::Debug,
        target,
        name,
        start: Instant::now(),
        fields: Vec::new(),
    }
}

impl Span {
    /// Overrides the level the completion event is reported at (e.g.
    /// [`Level::Trace`] for per-cell spans).
    pub fn with_level(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// Attaches a field to the completion event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Closes the span now (identical to dropping it; reads better at the
    /// end of a long scope).
    pub fn finish(self) {}
}

/// Resolves the `phase.<name>.micros` histogram for a span name, keeping a
/// thread-local handle cache so closing a span costs two atomic adds instead
/// of a name allocation plus a registry lock per drop (spans wrap phases as
/// short as a per-circuit pass run, so drops are hot).
fn span_histogram(name: &'static str) -> &'static metrics::Histogram {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static HANDLES: RefCell<HashMap<&'static str, &'static metrics::Histogram>> =
            RefCell::new(HashMap::new());
    }
    HANDLES.with(|handles| {
        *handles
            .borrow_mut()
            .entry(name)
            .or_insert_with(|| metrics::histogram(&format!("phase.{name}.micros")))
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        span_histogram(self.name).observe(micros);
        if enabled(self.level, self.target) {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("elapsed_us", FieldValue::U64(micros)));
            emit(
                self.level,
                self.target,
                &format!("{} done", self.name),
                &fields,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_order_and_print() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        for level in Level::ALL {
            assert_eq!(Level::parse(level.as_str()).unwrap(), level);
            assert_eq!(Level::parse(&level.as_str().to_uppercase()).unwrap(), level);
        }
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn default_filter_is_info() {
        let filter = Filter::default();
        assert!(filter.enabled(Level::Info, "anything"));
        assert!(filter.enabled(Level::Error, "anything"));
        assert!(!filter.enabled(Level::Debug, "anything"));
    }

    #[test]
    fn directive_specs_scope_levels_by_target_prefix() {
        let filter = Filter::parse("warn,sweep.server=trace,fabric=debug").unwrap();
        assert!(filter.enabled(Level::Trace, "sweep.server"));
        assert!(filter.enabled(Level::Trace, "sweep.server.lease"));
        assert!(!filter.enabled(Level::Trace, "sweep.worker"));
        assert!(filter.enabled(Level::Debug, "fabric.provider"));
        assert!(!filter.enabled(Level::Info, "sweep.engine"));
        assert!(filter.enabled(Level::Warn, "sweep.engine"));
        assert_eq!(filter.most_verbose(), Some(Level::Trace));
    }

    #[test]
    fn prefix_matching_respects_dot_boundaries() {
        let filter = Filter::parse("off,sweep=debug").unwrap();
        assert!(filter.enabled(Level::Debug, "sweep"));
        assert!(filter.enabled(Level::Debug, "sweep.engine"));
        assert!(!filter.enabled(Level::Error, "sweeps"), "no dot boundary");
    }

    #[test]
    fn off_silences_and_most_specific_wins() {
        let filter = Filter::parse("debug,sweep=off").unwrap();
        assert!(!filter.enabled(Level::Error, "sweep.server"));
        assert!(filter.enabled(Level::Debug, "fabric"));
        let fully_off = Filter::off();
        assert!(!fully_off.enabled(Level::Error, "anything"));
        assert_eq!(fully_off.most_verbose(), None);
    }

    #[test]
    fn malformed_specs_are_errors() {
        assert!(Filter::parse("").is_err());
        assert!(Filter::parse("sweep=banana").is_err());
        assert!(Filter::parse(",,").is_err());
    }

    #[test]
    fn json_string_escaping_covers_the_awkward_cases() {
        let mut out = String::new();
        push_json_string(&mut out, "plain");
        assert_eq!(out, "\"plain\"");
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn json_floats_stay_valid_json() {
        let mut out = String::new();
        push_json_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn field_values_convert_from_common_types() {
        assert_eq!(FieldValue::from(3_usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3_i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5_f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(
            FieldValue::from(String::from("y")),
            FieldValue::Str("y".into())
        );
    }
}
