//! A cheap shared completion counter, for reporting progress out of a
//! parallel computation without touching its results.
//!
//! The sweep engine increments one of these per completed cell; a fleet
//! worker's heartbeat loop reads it to tell the server how far along the
//! leased shard is.  Like everything in this crate it is strictly
//! out-of-band: nothing reads the count to make a scheduling decision.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A clonable handle on a shared monotonic counter.
///
/// Clones observe the same count, so one side can increment from worker
/// threads while another reports.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    done: Arc<AtomicU64>,
}

impl Progress {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed item.
    pub fn increment(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` completed items.
    pub fn add(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Items completed so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_count() {
        let progress = Progress::new();
        let clone = progress.clone();
        progress.increment();
        clone.add(2);
        assert_eq!(progress.done(), 3);
        assert_eq!(clone.done(), 3);
    }

    #[test]
    fn increments_from_threads_all_land() {
        let progress = Progress::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = progress.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        handle.increment();
                    }
                });
            }
        });
        assert_eq!(progress.done(), 400);
    }
}
