//! # fabric-power-obs
//!
//! Zero-dependency observability for the `fabric-power` workspace: structured
//! leveled events, timed phase spans and a process-wide metrics registry —
//! implemented on `std` alone (the build container is offline, so no
//! `tracing`, no `log`, no `metrics` crates).
//!
//! Three pillars:
//!
//! * [`log`] — leveled, target-tagged events with key/value fields, rendered
//!   human-readably to stderr and optionally as one JSON object per line
//!   (JSONL) to a file (`fabric-power --log-json <path>`).  What gets emitted
//!   is controlled by a [`Filter`] parsed from the `FABRIC_POWER_LOG`
//!   environment variable (same `target=level` directive shape as
//!   `env_logger`/`RUST_LOG`);
//! * [`span`](log::Span) — a timed scope for pipeline phases
//!   (`characterize`, `build_model`, `run_cell`, `merge`, …): on drop it
//!   emits an event with the elapsed time *and* feeds a per-phase wall-time
//!   histogram in the metrics registry;
//! * [`faults`] — deterministic fault injection for chaos testing: a
//!   seeded [`FaultPlan`] (installed by tests or parsed from
//!   `FABRIC_POWER_FAULTS`) schedules wire and disk faults at
//!   deterministic operation indices, and is one relaxed atomic load per
//!   hook when off;
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   fixed-bin histograms (the same shape as the router's
//!   `LatencyHistogram`: exact fixed bins plus count/sum/max), with a
//!   deterministic [`MetricsSnapshot`](metrics::MetricsSnapshot) that
//!   renders as a table or as JSON.
//!
//! # Out-of-band by construction
//!
//! Nothing in this crate feeds back into computation: events and metrics are
//! write-only side channels, and no instrumented code path reads a counter,
//! a clock or a log level to make a decision.  The sweep pipeline's emitted
//! documents are therefore byte-identical with observability on or off — a
//! determinism guard test in the workspace pins exactly that.
//!
//! # Examples
//!
//! ```
//! use fabric_power_obs as obs;
//!
//! // Events: level + target + message + fields.
//! obs::info!("doc.example", "lease granted", worker = 3_u64, shard = 0_usize);
//!
//! // Spans: time a phase; the drop emits the event and records the metric.
//! {
//!     let _span = obs::log::span("doc.example", "merge").field("parts", 4_usize);
//!     // ... do the work ...
//! }
//!
//! // Metrics: named instruments, readable as one deterministic snapshot.
//! obs::metrics::counter("doc.example.widgets").add(2);
//! let snapshot = obs::metrics::snapshot();
//! assert!(snapshot.counters["doc.example.widgets"] >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
pub mod log;
pub mod metrics;
pub mod progress;

pub use faults::FaultPlan;
pub use log::{FieldValue, Filter, Level, Span};
pub use metrics::MetricsSnapshot;
pub use progress::Progress;

/// Emits one structured event at an explicit [`Level`].
///
/// ```
/// use fabric_power_obs as obs;
/// obs::event!(obs::Level::Info, "doc.event", "it happened", attempts = 3_u64);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $message:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        let target = $target;
        if $crate::log::enabled(level, target) {
            $crate::log::emit(
                level,
                target,
                ::std::convert::AsRef::<str>::as_ref(&$message),
                &[$((stringify!($key), $crate::FieldValue::from($value)),)*],
            );
        }
    }};
}

/// Emits a [`Level::Trace`] event: `obs::trace!(target, message, key = value, ...)`.
#[macro_export]
macro_rules! trace {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Trace, $($rest)*) };
}

/// Emits a [`Level::Debug`] event: `obs::debug!(target, message, key = value, ...)`.
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Debug, $($rest)*) };
}

/// Emits a [`Level::Info`] event: `obs::info!(target, message, key = value, ...)`.
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Info, $($rest)*) };
}

/// Emits a [`Level::Warn`] event: `obs::warn!(target, message, key = value, ...)`.
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Warn, $($rest)*) };
}

/// Emits a [`Level::Error`] event: `obs::error!(target, message, key = value, ...)`.
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::event!($crate::Level::Error, $($rest)*) };
}
