//! Direct property coverage for `TrafficPattern` destination math.
//!
//! The fixed-permutation patterns (tornado, bit-complement, transpose,
//! shifted permutation) were previously exercised only indirectly through
//! whole sweeps; these tests pin their algebraic invariants — bijectivity,
//! involution, self-address avoidance — and the bursty generator's mean
//! burst length, at the unit level.

use proptest::prelude::*;

use fabric_power_router::traffic::{TrafficGenerator, TrafficPattern};

/// All destinations a fixed pattern assigns across every source, skipping
/// the sources that fall back to a uniform destination.
fn fixed_map(pattern: TrafficPattern, ports: usize) -> Vec<(usize, usize)> {
    (0..ports)
        .filter_map(|source| {
            pattern
                .fixed_destination(source, ports)
                .map(|destination| (source, destination))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutation_shift_is_a_bijection(ports in 2_usize..64, shift in 1_usize..64) {
        let pattern = TrafficPattern::Permutation { shift };
        let map = fixed_map(pattern, ports);
        prop_assert_eq!(map.len(), ports);
        let mut destinations: Vec<usize> = map.iter().map(|&(_, d)| d).collect();
        destinations.sort_unstable();
        prop_assert_eq!(destinations, (0..ports).collect::<Vec<_>>());
    }

    #[test]
    fn tornado_is_a_bijection_at_half_span_distance(ports in 2_usize..64) {
        let map = fixed_map(TrafficPattern::Tornado, ports);
        prop_assert_eq!(map.len(), ports);
        let mut destinations = Vec::new();
        for &(source, destination) in &map {
            prop_assert_eq!(destination, (source + ports / 2) % ports);
            destinations.push(destination);
        }
        destinations.sort_unstable();
        prop_assert_eq!(destinations, (0..ports).collect::<Vec<_>>());
    }

    #[test]
    fn bit_complement_is_an_involution(ports in 2_usize..128) {
        let pattern = TrafficPattern::BitComplement;
        for (source, destination) in fixed_map(pattern, ports) {
            prop_assert_ne!(destination, source);
            // Applying the complement twice returns to the source.
            prop_assert_eq!(pattern.fixed_destination(destination, ports), Some(source));
        }
        // Only the middle port of an odd port count falls back to uniform.
        let fallbacks = ports - fixed_map(pattern, ports).len();
        prop_assert_eq!(fallbacks, ports % 2);
    }

    #[test]
    fn transpose_is_an_involution_off_the_diagonal(side in 2_usize..12) {
        let ports = side * side;
        let pattern = TrafficPattern::Transpose;
        let map = fixed_map(pattern, ports);
        // Exactly the `side` diagonal sources fall back to uniform.
        prop_assert_eq!(map.len(), ports - side);
        for (source, destination) in map {
            let (row, column) = (source / side, source % side);
            prop_assert_eq!(destination, column * side + row);
            prop_assert_ne!(destination, source);
            prop_assert_eq!(pattern.fixed_destination(destination, ports), Some(source));
        }
    }

    #[test]
    fn transpose_needs_a_perfect_square(ports in 2_usize..200) {
        let side = (ports as f64).sqrt().round() as usize;
        let is_square = side * side == ports;
        let any_fixed = !fixed_map(TrafficPattern::Transpose, ports).is_empty();
        prop_assert_eq!(any_fixed, is_square && ports > 1);
    }

    #[test]
    fn stochastic_patterns_have_no_fixed_destination(source in 0_usize..16) {
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Hotspot { port: 3, fraction: 0.5 },
            TrafficPattern::Bursty { on_load: 0.8, off_load: 0.1, mean_burst: 20.0 },
        ];
        for pattern in patterns {
            prop_assert_eq!(pattern.fixed_destination(source, 16), None);
        }
    }
}

#[test]
fn transpose_generator_swaps_rows_and_columns_on_a_square_count() {
    let mut generator = TrafficGenerator::new(16, 1.0, 1, TrafficPattern::Transpose, 11);
    for source in 0..16 {
        let (row, column) = (source / 4, source % 4);
        for cycle in 0..50 {
            if let Some(packet) = generator.arrivals(source, cycle) {
                if row == column {
                    // Diagonal sources fall back to uniform destinations.
                    assert_ne!(packet.destination, source);
                } else {
                    assert_eq!(packet.destination, column * 4 + row);
                }
            }
        }
    }
}

#[test]
fn transpose_generator_degrades_to_uniform_on_a_non_square_count() {
    let mut generator = TrafficGenerator::new(8, 1.0, 1, TrafficPattern::Transpose, 12);
    let mut seen = std::collections::HashSet::new();
    for cycle in 0..2000 {
        if let Some(packet) = generator.arrivals(0, cycle) {
            assert_ne!(packet.destination, 0);
            seen.insert(packet.destination);
        }
    }
    assert_eq!(seen.len(), 7, "uniform fallback covers every other port");
}

#[test]
fn bursty_mean_burst_length_matches_the_dwell_parameter() {
    // ON at load 1.0 with single-word packets arrives every ON cycle;
    // OFF at load ~0 never arrives — so the per-port arrival run lengths
    // expose the hidden two-state chain directly, and their mean must track
    // `mean_burst` (geometric dwell ⇒ mean run length = mean_burst).
    let mean_burst = 25.0;
    let pattern = TrafficPattern::Bursty {
        on_load: 1.0,
        off_load: 0.0,
        mean_burst,
    };
    let mut generator = TrafficGenerator::new(2, 0.5, 1, pattern, 13);
    let cycles = 60_000_u64;
    let mut runs = 0_u64;
    let mut on_cycles = 0_u64;
    let mut previous_arrived = false;
    for cycle in 0..cycles {
        for port in 0..2 {
            let arrived = generator.arrivals(port, cycle).is_some();
            if port == 0 {
                if arrived {
                    on_cycles += 1;
                    if !previous_arrived {
                        runs += 1;
                    }
                }
                previous_arrived = arrived;
            }
        }
    }
    assert!(runs > 100, "expected many bursts, saw {runs}");
    let measured = on_cycles as f64 / runs as f64;
    assert!(
        (measured - mean_burst).abs() < mean_burst * 0.25,
        "mean burst length {measured}, expected ≈ {mean_burst}"
    );
}
