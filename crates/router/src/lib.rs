//! # fabric-power-router
//!
//! The bit-level, cycle-driven network-router simulation platform of the
//! DAC 2002 paper (its Simulink/C++ S-function environment rebuilt in Rust):
//! ingress/egress process units, a first-come-first-serve round-robin
//! arbiter with input buffering, synthetic TCP/IP-like traffic, and per-bit
//! energy tracing through any of the four switch-fabric architectures.
//!
//! * [`packet`] — packets with real random payload bits;
//! * [`traffic`] — offered-load-controlled packet generation (uniform,
//!   hot-spot and permutation destination patterns);
//! * [`energy`] — the three-component energy account (switches, buffers,
//!   wires);
//! * [`metrics`] — streaming latency-distribution metrics: a deterministic
//!   fixed-bin histogram behind the report's p50/p95/p99 fields;
//! * [`config`] — simulation configuration and the per-run report;
//! * [`node`] — the reusable per-tick switching core of one router
//!   (injected traffic, shared with the `fabric-power-noc` network layer);
//! * [`sim`] — the single-router driver built on it.
//!
//! # Examples
//!
//! Reproduce one point of the paper's Figure 9 (16×16 Banyan at 30 % load):
//!
//! ```
//! use fabric_power_fabric::{Architecture, FabricEnergyModel};
//! use fabric_power_router::config::SimulationConfig;
//! use fabric_power_router::sim::RouterSimulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SimulationConfig::quick(Architecture::Banyan, 16, 0.3);
//! let model = FabricEnergyModel::paper(16)?;
//! let report = RouterSimulator::new(config, model)?.run();
//! println!(
//!     "throughput {:.2}, power {}",
//!     report.measured_throughput(),
//!     report.average_power()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod energy;
pub mod metrics;
pub mod node;
pub mod packet;
pub mod sim;
pub mod traffic;

pub use config::{SimulationConfig, SimulationReport};
pub use energy::EnergyAccount;
pub use metrics::{HistogramMergeError, LatencyHistogram, SparseLatencyHistogram};
pub use node::RouterNode;
pub use packet::Packet;
pub use sim::{simulate, RouterSimulator, SimulationError};
pub use traffic::{TrafficGenerator, TrafficPattern};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimulationConfig>();
        assert_send_sync::<SimulationReport>();
        assert_send_sync::<RouterSimulator>();
        assert_send_sync::<EnergyAccount>();
    }
}
