//! Streaming latency-distribution metrics.
//!
//! The simulator used to accumulate a single latency *sum*, which can only
//! ever report a mean — useless for tail behavior, which is what any
//! traffic-serving deployment actually provisions for.  [`LatencyHistogram`]
//! replaces it: a fixed-bin streaming histogram that records each delivered
//! packet's latency as it completes, in O(1) per sample and a fixed memory
//! footprint, and answers percentile queries afterwards.
//!
//! # Determinism
//!
//! Every field is an integer counter and the bin layout is a compile-time
//! constant, so two simulations that deliver the same packets produce
//! bit-identical histograms — regardless of thread count, platform or the
//! order in which cells of a sweep were scheduled.  Percentiles are computed
//! with the nearest-rank method over integer cumulative counts (no
//! interpolation, no floating-point accumulation), so they inherit that
//! determinism.

use serde::{Deserialize, Serialize};

/// Two histograms with different bin layouts cannot be merged.
///
/// A histogram deserialized from a document that was produced under a
/// different [`LATENCY_BINS`] (an older build, a foreign worker) carries a
/// `bins` vector of a different length.  Folding it in bin-by-bin would
/// silently drop the excess counts while still adding `count` and `sum`,
/// leaving a histogram whose mean and percentiles disagree — so the mismatch
/// is a hard error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramMergeError {
    /// Bin count of the histogram being merged into.
    pub ours: usize,
    /// Bin count of the histogram being merged in.
    pub theirs: usize,
}

impl std::fmt::Display for HistogramMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge latency histograms with different bin layouts: \
             {} bin(s) vs {} bin(s) (recorded under different LATENCY_BINS?)",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for HistogramMergeError {}

/// Latencies below this many cycles land in their own exact one-cycle bin;
/// larger latencies share the overflow bin (represented by the observed
/// maximum).  4096 cycles comfortably covers every sub-saturation operating
/// point of the paper's grids (packet transfer alone is 16 cycles; queueing
/// under heavy load adds hundreds, not thousands).
pub const LATENCY_BINS: usize = 4096;

/// A deterministic fixed-bin histogram of packet latencies in cycles.
///
/// Bin `i` counts packets whose latency was exactly `i` cycles
/// (`i < LATENCY_BINS`); everything above is pooled in an overflow bin whose
/// representative value is the maximum latency observed.
///
/// # Examples
///
/// ```
/// use fabric_power_router::metrics::LatencyHistogram;
///
/// let mut histogram = LatencyHistogram::new();
/// for latency in [16, 17, 17, 20, 90] {
///     histogram.record(latency);
/// }
/// assert_eq!(histogram.count(), 5);
/// assert_eq!(histogram.percentile(50.0), 17.0);
/// assert_eq!(histogram.percentile(99.0), 90.0);
/// assert!((histogram.mean() - 32.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// One exact count per latency value below [`LATENCY_BINS`].
    bins: Vec<u64>,
    /// Samples at or above [`LATENCY_BINS`] cycles.
    overflow: u64,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all recorded latencies (integers, so no rounding).
    sum: u64,
    /// Largest latency recorded (the overflow bin's representative).
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bins: vec![0; LATENCY_BINS],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one packet latency in cycles.
    pub fn record(&mut self, latency_cycles: u64) {
        match usize::try_from(latency_cycles) {
            Ok(index) if index < LATENCY_BINS => self.bins[index] += 1,
            _ => self.overflow += 1,
        }
        self.count += 1;
        self.sum += latency_cycles;
        self.max = self.max.max(latency_cycles);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded latencies.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest latency recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples pooled in the overflow bin (latency ≥ [`LATENCY_BINS`]).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean latency in cycles (0 when empty).
    ///
    /// The sum is an exact integer, so this matches a running floating-point
    /// sum of the same samples bit for bit (every partial sum of cycle counts
    /// is far below 2^53).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-th percentile latency in cycles, by the nearest-rank method:
    /// the smallest recorded latency whose cumulative count reaches
    /// `ceil(q/100 × count)`.
    ///
    /// Returns 0 for an empty histogram.  Samples in the overflow bin are
    /// represented by the maximum latency observed.  Because the rank is
    /// monotone in `q`, `percentile(50) ≤ percentile(95) ≤ percentile(99)`
    /// always holds.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 100.0);
        // Integer rank: ceil(q/100 * count), at least 1.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0_u64;
        for (latency, &bucket) in self.bins.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return latency as f64;
            }
        }
        // The rank falls in the overflow bin.
        self.max as f64
    }

    /// Folds another histogram into this one (counts add bin by bin).
    ///
    /// Merging is commutative and associative: histograms recorded over
    /// disjoint sample streams combine to exactly the histogram one recorder
    /// would have produced over the union.  (The sweep pipeline currently
    /// merges per-cell summary percentiles, not histograms; this is the
    /// primitive for shipping whole distributions in shard documents — see
    /// the ROADMAP follow-on.)
    ///
    /// # Errors
    ///
    /// Returns [`HistogramMergeError`] — and leaves `self` untouched — when
    /// the bin layouts differ (e.g. `other` was deserialized from a document
    /// recorded under a different [`LATENCY_BINS`]).  Truncating instead
    /// would still add `count` and `sum`, corrupting the histogram so its
    /// mean and percentiles disagree.
    pub fn merge(&mut self, other: &Self) -> Result<(), HistogramMergeError> {
        if self.bins.len() != other.bins.len() {
            return Err(HistogramMergeError {
                ours: self.bins.len(),
                theirs: other.bins.len(),
            });
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// The three tail summary values carried by simulation reports and sweep
    /// points, in order: p50, p95, p99.
    #[must_use]
    pub fn summary(&self) -> [f64; 3] {
        [
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
        ]
    }

    /// Exports the distribution in the sparse form documents carry: only the
    /// non-zero bins, as ascending `(latency, count)` pairs.  Lossless — see
    /// [`SparseLatencyHistogram::expand`] for the inverse.
    #[must_use]
    pub fn to_sparse(&self) -> SparseLatencyHistogram {
        SparseLatencyHistogram {
            bins: self
                .bins
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(latency, &count)| (latency as u64, count))
                .collect(),
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// The sparse, document-friendly form of a [`LatencyHistogram`].
///
/// A dense histogram is almost entirely zeros ([`LATENCY_BINS`] bins, of
/// which a typical sub-saturation cell populates a few dozen), so sweep
/// documents carry only the non-zero `(latency, count)` pairs plus the same
/// exact totals the dense form keeps.  The conversion round-trips losslessly
/// ([`LatencyHistogram::to_sparse`] / [`SparseLatencyHistogram::expand`]),
/// and an empty value — what a document written before this field existed
/// deserializes to via `#[serde(default)]` — expands to an empty histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparseLatencyHistogram {
    /// `(latency in cycles, samples)` for every non-zero exact bin,
    /// ascending by latency.
    #[serde(default)]
    pub bins: Vec<(u64, u64)>,
    /// Samples at or above [`LATENCY_BINS`] cycles (represented by `max`).
    #[serde(default)]
    pub overflow: u64,
    /// Total samples recorded.
    #[serde(default)]
    pub count: u64,
    /// Exact sum of all recorded latencies.
    #[serde(default)]
    pub sum: u64,
    /// Largest latency recorded.
    #[serde(default)]
    pub max: u64,
}

impl SparseLatencyHistogram {
    /// Whether nothing was recorded (also what old documents without the
    /// field read back as).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Reconstructs the dense [`LatencyHistogram`] this was exported from.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramMergeError`] when a bin's latency does not fit the
    /// current [`LATENCY_BINS`] layout (a document recorded under a larger
    /// bin count) — expanding it would silently move exact counts into the
    /// overflow bin, the same corruption dense merging refuses.
    pub fn expand(&self) -> Result<LatencyHistogram, HistogramMergeError> {
        let mut dense = LatencyHistogram::new();
        for &(latency, count) in &self.bins {
            let index = usize::try_from(latency)
                .ok()
                .filter(|&i| i < LATENCY_BINS)
                .ok_or(HistogramMergeError {
                    ours: LATENCY_BINS,
                    theirs: usize::try_from(latency).map_or(usize::MAX, |i| i + 1),
                })?;
            dense.bins[index] = count;
        }
        dense.overflow = self.overflow;
        dense.count = self.count;
        dense.sum = self.sum;
        dense.max = self.max;
        Ok(dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.mean(), 0.0);
        assert_eq!(histogram.percentile(50.0), 0.0);
        assert_eq!(histogram.percentile(99.0), 0.0);
        assert_eq!(histogram.max(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(23);
        for q in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(histogram.percentile(q), 23.0, "q = {q}");
        }
        assert_eq!(histogram.mean(), 23.0);
    }

    #[test]
    fn nearest_rank_matches_a_sorted_reference() {
        // 1..=100: pN is exactly N by the nearest-rank definition.
        let mut histogram = LatencyHistogram::new();
        for latency in 1..=100 {
            histogram.record(latency);
        }
        assert_eq!(histogram.percentile(50.0), 50.0);
        assert_eq!(histogram.percentile(95.0), 95.0);
        assert_eq!(histogram.percentile(99.0), 99.0);
        assert_eq!(histogram.percentile(100.0), 100.0);
        assert_eq!(histogram.percentile(1.0), 1.0);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut histogram = LatencyHistogram::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            histogram.record(state % 700);
        }
        let [p50, p95, p99] = histogram.summary();
        assert!(p50 <= p95, "{p50} vs {p95}");
        assert!(p95 <= p99, "{p95} vs {p99}");
        assert!(p99 <= histogram.max() as f64);
    }

    #[test]
    fn overflow_samples_report_the_observed_maximum() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(10);
        histogram.record(LATENCY_BINS as u64 + 500);
        histogram.record(LATENCY_BINS as u64 + 900);
        assert_eq!(histogram.overflow(), 2);
        assert_eq!(
            histogram.percentile(99.0),
            (LATENCY_BINS as u64 + 900) as f64
        );
        assert_eq!(histogram.percentile(1.0), 10.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let samples_a = [5_u64, 16, 16, 4100, 90];
        let samples_b = [7_u64, 16, 5000, 3];
        let mut merged = LatencyHistogram::new();
        let mut part_a = LatencyHistogram::new();
        let mut part_b = LatencyHistogram::new();
        for &s in &samples_a {
            merged.record(s);
            part_a.record(s);
        }
        for &s in &samples_b {
            merged.record(s);
            part_b.record(s);
        }
        let mut combined = part_a.clone();
        combined.merge(&part_b).expect("same bin layout");
        assert_eq!(combined, merged);
        // And merge order does not matter.
        let mut reversed = part_b;
        reversed.merge(&part_a).expect("same bin layout");
        assert_eq!(reversed, merged);
    }

    #[test]
    fn merging_mismatched_bin_layouts_is_an_error_and_a_no_op() {
        // A histogram "recorded under a different LATENCY_BINS": the only way
        // one reaches this process is deserialization, so forge it that way.
        let mut foreign = LatencyHistogram::new();
        foreign.record(3);
        foreign.record(7);
        let mut truncated: LatencyHistogram = {
            let json = serde_json::to_string(&foreign).expect("serialize");
            // Shrink the bins array to 8 entries (as if LATENCY_BINS = 8).
            let short_bins: Vec<u64> = foreign.bins[..8].to_vec();
            let json = json.replace(
                &serde_json::to_string(&foreign.bins).unwrap(),
                &serde_json::to_string(&short_bins).unwrap(),
            );
            serde_json::from_str(&json).expect("short document still parses")
        };
        assert_eq!(truncated.bins.len(), 8);

        let mut ours = LatencyHistogram::new();
        ours.record(100);
        let before = ours.clone();
        let err = ours.merge(&truncated).unwrap_err();
        assert_eq!(
            err,
            HistogramMergeError {
                ours: LATENCY_BINS,
                theirs: 8
            }
        );
        assert!(err.to_string().contains("different bin layouts"));
        // The failed merge must not have half-applied: counts are untouched.
        assert_eq!(ours, before);
        // The mirror direction fails symmetrically.
        assert!(truncated.merge(&before).is_err());
        assert_eq!(truncated.count(), 2, "foreign histogram also untouched");
    }

    #[test]
    fn sparse_export_round_trips_losslessly() {
        let mut histogram = LatencyHistogram::new();
        for latency in [16, 16, 17, 20, 20, 20, 4100, 9000] {
            histogram.record(latency);
        }
        let sparse = histogram.to_sparse();
        assert_eq!(sparse.bins, vec![(16, 2), (17, 1), (20, 3)]);
        assert_eq!(sparse.overflow, 2);
        assert_eq!(sparse.count, 8);
        assert_eq!(sparse.max, 9000);
        assert!(!sparse.is_empty());
        assert_eq!(sparse.expand().expect("expand"), histogram);
        // And through JSON, which is how documents carry it.
        let json = serde_json::to_string(&sparse).expect("serialize");
        let back: SparseLatencyHistogram = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, sparse);
        assert_eq!(back.expand().expect("expand"), histogram);
    }

    #[test]
    fn empty_sparse_histogram_is_default_and_expands_empty() {
        let sparse = SparseLatencyHistogram::default();
        assert!(sparse.is_empty());
        assert_eq!(sparse.expand().expect("expand"), LatencyHistogram::new());
        assert_eq!(LatencyHistogram::new().to_sparse(), sparse);
        // `{}` — the serde(default) shape of a pre-field document — parses.
        let back: SparseLatencyHistogram = serde_json::from_str("{}").expect("parse");
        assert_eq!(back, sparse);
    }

    #[test]
    fn sparse_bins_beyond_the_layout_refuse_to_expand() {
        let sparse = SparseLatencyHistogram {
            bins: vec![(LATENCY_BINS as u64, 1)],
            overflow: 0,
            count: 1,
            sum: LATENCY_BINS as u64,
            max: LATENCY_BINS as u64,
        };
        let err = sparse.expand().unwrap_err();
        assert_eq!(err.ours, LATENCY_BINS);
        assert!(err.theirs > LATENCY_BINS);
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let mut histogram = LatencyHistogram::new();
        for latency in [1, 2, 3, 9000] {
            histogram.record(latency);
        }
        let json = serde_json::to_string(&histogram).expect("serialize");
        let back: LatencyHistogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(histogram, back);
    }
}
