//! Packets and their bit-level payload.
//!
//! The simulation platform traces energy with bit-level accuracy, so packets
//! carry their actual payload words: wire energy is charged only for the bits
//! that flip polarity relative to the previous word on the same link
//! (paper §3.3), which requires knowing the real bit patterns.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fixed-size packet travelling through the router.
///
/// The ingress process unit has already parallelized the serial line into
/// `bus width`-bit words and translated the IP destination into an egress
/// port index (paper §5.2), so the packet here is simply a destination plus a
/// list of payload words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonically increasing packet identifier.
    pub id: u64,
    /// Ingress port the packet arrived on.
    pub source: usize,
    /// Egress port the packet must leave on.
    pub destination: usize,
    /// Payload words (one word crosses the fabric per clock cycle).
    pub payload: Vec<u64>,
    /// Cycle at which the packet arrived at the ingress queue.
    pub arrival_cycle: u64,
}

impl Packet {
    /// Number of payload words (equals the number of cycles the packet needs
    /// on a contention-free path).
    #[must_use]
    pub fn words(&self) -> usize {
        self.payload.len()
    }

    /// Number of payload bits given the bus width.
    #[must_use]
    pub fn bits(&self, bus_width: u32) -> u64 {
        self.words() as u64 * u64::from(bus_width)
    }

    /// Generates a packet with uniformly random payload words.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        id: u64,
        source: usize,
        destination: usize,
        words: usize,
        arrival_cycle: u64,
    ) -> Self {
        Self {
            id,
            source,
            destination,
            payload: (0..words).map(|_| rng.gen::<u64>()).collect(),
            arrival_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_packet_has_requested_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let packet = Packet::random(&mut rng, 42, 1, 3, 16, 100);
        assert_eq!(packet.id, 42);
        assert_eq!(packet.source, 1);
        assert_eq!(packet.destination, 3);
        assert_eq!(packet.words(), 16);
        assert_eq!(packet.bits(32), 512);
        assert_eq!(packet.arrival_cycle, 100);
    }

    #[test]
    fn random_payload_is_reproducible_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let pa = Packet::random(&mut a, 0, 0, 0, 8, 0);
        let pb = Packet::random(&mut b, 0, 0, 0, 8, 0);
        assert_eq!(pa, pb);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let pc = Packet::random(&mut c, 0, 0, 0, 8, 0);
        assert_ne!(pa.payload, pc.payload);
    }

    #[test]
    fn payload_words_are_not_all_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let packet = Packet::random(&mut rng, 0, 0, 0, 32, 0);
        let first = packet.payload[0];
        assert!(packet.payload.iter().any(|&w| w != first));
    }
}
