//! Simulation configuration and result reporting.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::Architecture;
use fabric_power_tech::constants::BANYAN_NODE_BUFFER_BITS;
use fabric_power_tech::units::{Power, TimeSpan};
use fabric_power_tech::Frequency;

use crate::energy::EnergyAccount;
use crate::metrics::SparseLatencyHistogram;
use crate::traffic::TrafficPattern;

/// Configuration of one simulation run.
///
/// Defaults mirror the paper's setup: 32-bit bus words, 16-word packets
/// (one 64-byte TCP/IP-sized payload), uniform random destinations, a
/// 4 Kbit buffer per Banyan node switch and a 133 MHz clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// The fabric architecture being simulated.
    pub architecture: Architecture,
    /// Number of ingress/egress ports.
    pub ports: usize,
    /// Offered load per ingress port, as a fraction of line rate (0, 1].
    pub offered_load: f64,
    /// Payload words per packet.
    pub packet_words: usize,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles over which throughput and energy are measured.
    pub measure_cycles: u64,
    /// Random seed (traffic and payload bits).
    pub seed: u64,
    /// Destination distribution.
    pub pattern: TrafficPattern,
    /// Buffer capacity per Banyan node switch, in bits.
    pub node_buffer_bits: u64,
    /// Fabric clock.
    pub clock: Frequency,
}

impl SimulationConfig {
    /// Creates a configuration with the paper's defaults for the given
    /// architecture, size and offered load.
    #[must_use]
    pub fn new(architecture: Architecture, ports: usize, offered_load: f64) -> Self {
        Self {
            architecture,
            ports,
            offered_load,
            packet_words: 16,
            warmup_cycles: 500,
            measure_cycles: 4000,
            seed: 0xDAC_2002,
            pattern: TrafficPattern::UniformRandom,
            node_buffer_bits: BANYAN_NODE_BUFFER_BITS,
            clock: Frequency::from_megahertz(133.0),
        }
    }

    /// A shorter run for unit tests and examples.
    #[must_use]
    pub fn quick(architecture: Architecture, ports: usize, offered_load: f64) -> Self {
        Self {
            warmup_cycles: 100,
            measure_cycles: 800,
            ..Self::new(architecture, ports, offered_load)
        }
    }

    /// Overrides the traffic pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Overrides the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the packet length in words.
    #[must_use]
    pub fn with_packet_words(mut self, packet_words: usize) -> Self {
        self.packet_words = packet_words;
        self
    }

    /// Overrides the warmup/measurement window.
    #[must_use]
    pub fn with_cycles(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_cycles = warmup;
        self.measure_cycles = measure;
        self
    }

    /// Duration of one clock cycle.
    #[must_use]
    pub fn cycle_time(&self) -> TimeSpan {
        self.clock.period()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The architecture that was simulated.
    pub architecture: Architecture,
    /// Number of ports.
    pub ports: usize,
    /// Offered load per port requested by the configuration.
    pub offered_load: f64,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Payload words delivered at egress ports during measurement.
    pub words_delivered: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Words written to (and later read from) internal buffers because of
    /// interconnect contention.
    pub buffered_words: u64,
    /// Number of cycles in which a node buffer exceeded its configured
    /// capacity (congestion indicator).
    pub buffer_overflow_cycles: u64,
    /// Mean packet latency (arrival to last word delivered), in cycles.
    pub average_latency_cycles: f64,
    /// Median (50th-percentile) packet latency in cycles, from the
    /// simulator's fixed-bin latency histogram (nearest-rank method).
    /// Defaults keep reports serialized before the percentile fields
    /// existed parseable (they read back as 0).
    #[serde(default)]
    pub latency_p50: f64,
    /// 95th-percentile packet latency in cycles.
    #[serde(default)]
    pub latency_p95: f64,
    /// 99th-percentile packet latency in cycles.
    #[serde(default)]
    pub latency_p99: f64,
    /// The full latency distribution, sparse over non-zero bins — the
    /// summary percentiles above are derived from exactly this.  Defaults
    /// (to empty) keep reports serialized before the field existed
    /// parseable.
    #[serde(default)]
    pub latency_histogram: SparseLatencyHistogram,
    /// Accumulated energy, by component.
    pub energy: EnergyAccount,
    /// Duration of one clock cycle (for power computation).
    pub cycle_time: TimeSpan,
}

impl SimulationReport {
    /// Measured egress throughput as a fraction of aggregate line rate:
    /// `words delivered / (cycles × ports)` (the paper measures throughput at
    /// the egress process units).
    #[must_use]
    pub fn measured_throughput(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.words_delivered as f64 / (self.measured_cycles * self.ports as u64) as f64
        }
    }

    /// Average fabric power over the measurement window.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.energy
            .average_power(self.measured_cycles, self.cycle_time)
    }

    /// Average energy per delivered payload bit (a size-independent figure of
    /// merit).
    #[must_use]
    pub fn energy_per_delivered_bit(&self, bus_width: u32) -> fabric_power_tech::units::Energy {
        let bits = self.words_delivered * u64::from(bus_width);
        if bits == 0 {
            fabric_power_tech::units::Energy::ZERO
        } else {
            self.energy.total() / bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_power_tech::units::Energy;

    #[test]
    fn defaults_follow_the_paper() {
        let config = SimulationConfig::new(Architecture::Banyan, 16, 0.3);
        assert_eq!(config.packet_words, 16);
        assert_eq!(config.node_buffer_bits, 4096);
        assert!((config.clock.as_megahertz() - 133.0).abs() < 1e-9);
        assert_eq!(config.pattern, TrafficPattern::UniformRandom);
        assert!(config.cycle_time().as_nanoseconds() > 7.0);
    }

    #[test]
    fn builder_style_overrides() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 4, 0.5)
            .with_seed(7)
            .with_packet_words(8)
            .with_cycles(10, 100)
            .with_pattern(TrafficPattern::Permutation { shift: 1 });
        assert_eq!(config.seed, 7);
        assert_eq!(config.packet_words, 8);
        assert_eq!(config.warmup_cycles, 10);
        assert_eq!(config.measure_cycles, 100);
        assert_eq!(config.pattern, TrafficPattern::Permutation { shift: 1 });
    }

    #[test]
    fn report_derived_metrics() {
        let report = SimulationReport {
            architecture: Architecture::Crossbar,
            ports: 4,
            offered_load: 0.5,
            measured_cycles: 1000,
            words_delivered: 1000,
            packets_delivered: 62,
            buffered_words: 0,
            buffer_overflow_cycles: 0,
            average_latency_cycles: 20.0,
            latency_p50: 19.0,
            latency_p95: 28.0,
            latency_p99: 31.0,
            latency_histogram: SparseLatencyHistogram::default(),
            energy: EnergyAccount {
                switches: Energy::from_nanojoules(1.0),
                buffers: Energy::ZERO,
                wires: Energy::from_nanojoules(1.0),
            },
            cycle_time: TimeSpan::from_nanoseconds(10.0),
        };
        assert!((report.measured_throughput() - 0.25).abs() < 1e-12);
        // 2 nJ over 10 us = 0.2 mW.
        assert!((report.average_power().as_milliwatts() - 0.2).abs() < 1e-9);
        assert!(report.energy_per_delivered_bit(32).as_picojoules() > 0.0);
    }

    #[test]
    fn zero_cycle_report_is_safe() {
        let report = SimulationReport {
            architecture: Architecture::Banyan,
            ports: 4,
            offered_load: 0.1,
            measured_cycles: 0,
            words_delivered: 0,
            packets_delivered: 0,
            buffered_words: 0,
            buffer_overflow_cycles: 0,
            average_latency_cycles: 0.0,
            latency_p50: 0.0,
            latency_p95: 0.0,
            latency_p99: 0.0,
            latency_histogram: SparseLatencyHistogram::default(),
            energy: EnergyAccount::new(),
            cycle_time: TimeSpan::from_nanoseconds(10.0),
        };
        assert_eq!(report.measured_throughput(), 0.0);
        assert_eq!(report.energy_per_delivered_bit(32), Energy::ZERO);
    }
}
