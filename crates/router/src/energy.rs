//! Energy bookkeeping for the simulation platform.
//!
//! The three components of the bit-energy model (node switches, internal
//! buffers, interconnect wires — paper §3) are accumulated separately so the
//! experiments can show which one dominates under which conditions.

use serde::{Deserialize, Serialize};

use fabric_power_tech::units::{Energy, Power, TimeSpan};

/// Accumulated energy, broken down by the paper's three components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    /// Energy consumed inside node switches (`E_S`).
    pub switches: Energy,
    /// Energy consumed by internal-buffer accesses (`E_B`).
    pub buffers: Energy,
    /// Energy consumed on interconnect wires (`E_W`).
    pub wires: Energy,
}

impl EnergyAccount {
    /// An empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy across the three components.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.switches + self.buffers + self.wires
    }

    /// Fraction of the total contributed by internal buffers (the "buffer
    /// penalty" indicator). Zero when nothing has been accumulated.
    #[must_use]
    pub fn buffer_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.buffers / total
        }
    }

    /// Average power when this energy is spent over `cycles` cycles of
    /// duration `cycle_time` each.
    #[must_use]
    pub fn average_power(&self, cycles: u64, cycle_time: TimeSpan) -> Power {
        self.total().over(TimeSpan::from_seconds(
            cycle_time.as_seconds() * cycles as f64,
        ))
    }

    /// Adds another account component-wise.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.switches += other.switches;
        self.buffers += other.buffers;
        self.wires += other.wires;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let account = EnergyAccount {
            switches: Energy::from_picojoules(1.0),
            buffers: Energy::from_picojoules(3.0),
            wires: Energy::from_picojoules(1.0),
        };
        assert!((account.total().as_picojoules() - 5.0).abs() < 1e-12);
        assert!((account.buffer_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(EnergyAccount::new().buffer_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates_componentwise() {
        let mut a = EnergyAccount {
            switches: Energy::from_picojoules(1.0),
            buffers: Energy::ZERO,
            wires: Energy::from_picojoules(2.0),
        };
        let b = EnergyAccount {
            switches: Energy::from_picojoules(0.5),
            buffers: Energy::from_picojoules(1.5),
            wires: Energy::ZERO,
        };
        a.merge(&b);
        assert!((a.total().as_picojoules() - 5.0).abs() < 1e-12);
        assert!((a.buffers.as_picojoules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn average_power_uses_total_duration() {
        let account = EnergyAccount {
            switches: Energy::from_picojoules(100.0),
            buffers: Energy::ZERO,
            wires: Energy::ZERO,
        };
        let power = account.average_power(100, TimeSpan::from_nanoseconds(10.0));
        // 100 pJ over 1 us = 0.1 mW.
        assert!((power.as_milliwatts() - 0.1).abs() < 1e-9);
    }
}
