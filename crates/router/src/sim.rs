//! The bit-level, cycle-driven router simulation platform (paper §5.2).
//!
//! This is the Rust replacement for the paper's Simulink/C++ S-function
//! platform.  Every clock cycle:
//!
//! 1. new packets arrive at the ingress process units (input buffering —
//!    these queues sit outside the switch fabric and are not charged);
//! 2. the arbiter grants head-of-line packets to free egress ports with a
//!    first-come-first-serve round-robin policy, which resolves destination
//!    contention before packets enter the fabric (paper §3.2);
//! 3. every in-flight packet pushes one payload word along its path; the
//!    simulator charges node-switch energy from the input-vector LUTs, wire
//!    energy for every bit that flips polarity on every interconnect segment,
//!    and — inside the Banyan — buffer energy whenever interconnect
//!    contention forces a word into a node buffer.
//!
//! Throughput is measured at the egress ports, exactly as in the paper.

use std::sync::Arc;

use fabric_power_fabric::energy_model::{EnergyModelError, FabricEnergyModel};
use fabric_power_fabric::provider::{ModelProvider, ModelSpec};
use fabric_power_fabric::topology::TopologyError;

use crate::config::{SimulationConfig, SimulationReport};
use crate::metrics::LatencyHistogram;
use crate::node::RouterNode;
use crate::traffic::TrafficGenerator;

/// Errors raised when constructing a [`RouterSimulator`].
#[derive(Debug)]
pub enum SimulationError {
    /// The topology could not be built (bad port count).
    Topology(TopologyError),
    /// Acquiring the energy model from a provider failed.
    Model(EnergyModelError),
    /// The energy model was built for a different port count than the
    /// configuration requests.
    PortMismatch {
        /// Ports in the configuration.
        config_ports: usize,
        /// Ports the energy model was built for.
        model_ports: usize,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Topology(e) => write!(f, "topology: {e}"),
            Self::Model(e) => write!(f, "energy model: {e}"),
            Self::PortMismatch {
                config_ports,
                model_ports,
            } => write!(
                f,
                "configuration requests {config_ports} ports but the energy model was built for {model_ports}"
            ),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Topology(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::PortMismatch { .. } => None,
        }
    }
}

impl From<TopologyError> for SimulationError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl From<EnergyModelError> for SimulationError {
    fn from(e: EnergyModelError) -> Self {
        Self::Model(e)
    }
}

/// The bit-level router simulator.
///
/// # Examples
///
/// ```
/// use fabric_power_fabric::{Architecture, FabricEnergyModel};
/// use fabric_power_router::config::SimulationConfig;
/// use fabric_power_router::sim::RouterSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.3);
/// let model = FabricEnergyModel::paper(4)?;
/// let report = RouterSimulator::new(config, model)?.run();
/// assert!(report.measured_throughput() > 0.0);
/// assert!(report.energy.total().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RouterSimulator {
    config: SimulationConfig,
    /// The per-tick switching core (queues, arbiter, flows, energy): shared
    /// with the NoC layer, which drives a whole mesh of them.
    node: RouterNode,
    traffic: TrafficGenerator,

    cycle: u64,
    measuring: bool,
    measured_cycles: u64,
    packets_delivered: u64,
    latency: LatencyHistogram,
}

impl RouterSimulator {
    /// Creates a simulator from a configuration and a matching energy model.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the port count is invalid or does not
    /// match the energy model.
    pub fn new(
        config: SimulationConfig,
        model: FabricEnergyModel,
    ) -> Result<Self, SimulationError> {
        Self::with_shared_model(config, Arc::new(model))
    }

    /// Creates a simulator whose energy model is acquired through a
    /// [`ModelProvider`] — the standard construction path since the
    /// model-provider layer owns all model acquisition (memoized in memory,
    /// optionally persisted in a content-addressed on-disk cache).
    ///
    /// The model stays [`Arc`]-shared: repeated simulations of the same spec
    /// reuse one allocation, whether or not they share a thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the model cannot be built, the port
    /// count is invalid, or the spec's port count does not match the
    /// configuration's.
    pub fn from_provider(
        config: SimulationConfig,
        provider: &ModelProvider,
        spec: &ModelSpec,
    ) -> Result<Self, SimulationError> {
        let model = provider.get(spec)?;
        Self::with_shared_model(config, model)
    }

    /// Creates a simulator from a configuration and a shared energy model.
    ///
    /// This is the constructor parameter sweeps use: one immutable model per
    /// fabric size, shared across every simulation (and worker thread) via
    /// [`Arc`] instead of being cloned per operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the port count is invalid or does not
    /// match the energy model.
    pub fn with_shared_model(
        config: SimulationConfig,
        model: Arc<FabricEnergyModel>,
    ) -> Result<Self, SimulationError> {
        let node = RouterNode::new(
            config.architecture,
            config.ports,
            config.node_buffer_bits,
            model,
        )?;
        let traffic = TrafficGenerator::new(
            config.ports,
            config.offered_load,
            config.packet_words,
            config.pattern,
            config.seed,
        );
        Ok(Self {
            node,
            traffic,
            cycle: 0,
            measuring: false,
            measured_cycles: 0,
            packets_delivered: 0,
            latency: LatencyHistogram::new(),
            config,
        })
    }

    /// Runs the configured warmup and measurement windows and returns the
    /// report.
    #[must_use]
    pub fn run(mut self) -> SimulationReport {
        let total = self.config.warmup_cycles + self.config.measure_cycles;
        for _ in 0..total {
            self.step();
        }
        self.report()
    }

    /// Simulates a single clock cycle. Exposed so tests and interactive tools
    /// can drive the simulator incrementally; most callers want
    /// [`RouterSimulator::run`].
    pub fn step(&mut self) {
        if self.cycle == self.config.warmup_cycles {
            self.begin_measurement();
        }
        if self.measuring {
            self.measured_cycles += 1;
        }

        for port in 0..self.config.ports {
            if let Some(packet) = self.traffic.arrivals(port, self.cycle) {
                self.node.inject(port, packet);
            }
        }
        for packet in self.node.step(self.cycle) {
            if self.measuring {
                self.packets_delivered += 1;
                self.latency.record(self.cycle + 1 - packet.arrival_cycle);
            }
        }

        self.cycle += 1;
    }

    /// Builds the report for everything measured so far.
    #[must_use]
    pub fn report(&self) -> SimulationReport {
        let [latency_p50, latency_p95, latency_p99] = self.latency.summary();
        SimulationReport {
            architecture: self.config.architecture,
            ports: self.config.ports,
            offered_load: self.config.offered_load,
            measured_cycles: self.measured_cycles,
            words_delivered: self.node.words_delivered(),
            packets_delivered: self.packets_delivered,
            buffered_words: self.node.buffered_words(),
            buffer_overflow_cycles: self.node.buffer_overflow_cycles(),
            average_latency_cycles: self.latency.mean(),
            latency_p50,
            latency_p95,
            latency_p99,
            latency_histogram: self.latency.to_sparse(),
            energy: self.node.energy(),
            cycle_time: self.config.cycle_time(),
        }
    }

    /// The latency distribution recorded so far (one sample per packet
    /// delivered during the measurement window).
    #[must_use]
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    fn begin_measurement(&mut self) {
        self.measuring = true;
        self.measured_cycles = 0;
        self.packets_delivered = 0;
        self.latency = LatencyHistogram::new();
        self.node.begin_measurement();
    }
}

/// Convenience wrapper: obtain the paper-reference energy model for the
/// configuration's port count from the process-wide shared
/// [`ModelProvider`], run the simulation and return the report.
///
/// # Errors
///
/// Propagates energy-model and simulator construction failures.
pub fn simulate(
    config: SimulationConfig,
) -> Result<SimulationReport, Box<dyn std::error::Error + Send + Sync>> {
    let spec = ModelSpec::paper(config.ports);
    let simulator = RouterSimulator::from_provider(config, &ModelProvider::shared(), &spec)?;
    Ok(simulator.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use fabric_power_fabric::Architecture;

    fn run(architecture: Architecture, ports: usize, load: f64) -> SimulationReport {
        simulate(SimulationConfig::quick(architecture, ports, load)).expect("simulation runs")
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        for architecture in Architecture::ALL {
            let report = run(architecture, 8, 0.2);
            let measured = report.measured_throughput();
            assert!(
                (measured - 0.2).abs() < 0.07,
                "{architecture}: offered 0.2, measured {measured}"
            );
        }
    }

    #[test]
    fn throughput_saturates_near_the_input_buffer_limit() {
        // Offered load far above the 58.6% head-of-line blocking limit: the
        // measured egress throughput must saturate below ~65%.
        let config =
            SimulationConfig::quick(Architecture::Crossbar, 8, 0.95).with_cycles(300, 2500);
        let report = simulate(config).unwrap();
        let measured = report.measured_throughput();
        assert!(measured < 0.70, "measured {measured} should saturate");
        assert!(measured > 0.40, "measured {measured} suspiciously low");
    }

    #[test]
    fn energy_scales_with_offered_load() {
        let low = run(Architecture::Crossbar, 8, 0.1);
        let high = run(Architecture::Crossbar, 8, 0.4);
        assert!(high.energy.total() > low.energy.total() * 2.0);
        assert!(high.average_power() > low.average_power());
    }

    #[test]
    fn only_banyan_accumulates_buffer_energy() {
        let banyan = run(Architecture::Banyan, 8, 0.4);
        assert!(banyan.buffered_words > 0);
        assert!(banyan.energy.buffers.as_joules() > 0.0);
        for architecture in [
            Architecture::Crossbar,
            Architecture::FullyConnected,
            Architecture::BatcherBanyan,
        ] {
            let report = run(architecture, 8, 0.4);
            assert_eq!(report.buffered_words, 0, "{architecture}");
            assert!(report.energy.buffers.is_zero(), "{architecture}");
        }
    }

    #[test]
    fn banyan_buffer_fraction_grows_with_load() {
        let low = run(Architecture::Banyan, 8, 0.1);
        let high = run(Architecture::Banyan, 8, 0.5);
        assert!(high.energy.buffer_fraction() > low.energy.buffer_fraction());
    }

    #[test]
    fn fully_connected_is_cheapest_at_moderate_load() {
        let ports = 8;
        let load = 0.4;
        let fully = run(Architecture::FullyConnected, ports, load).average_power();
        for architecture in [Architecture::Crossbar, Architecture::BatcherBanyan] {
            let other = run(architecture, ports, load).average_power();
            assert!(
                fully < other,
                "fully connected {fully} should beat {architecture} {other}"
            );
        }
    }

    #[test]
    fn permutation_traffic_avoids_destination_contention() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 8, 0.5)
            .with_pattern(TrafficPattern::Permutation { shift: 1 });
        let report = simulate(config).unwrap();
        // Without head-of-line blocking the measured throughput tracks the
        // offered load closely even at 50%.
        assert!((report.measured_throughput() - 0.5).abs() < 0.07);
    }

    #[test]
    fn simulation_is_reproducible_for_a_fixed_seed() {
        let a = run(Architecture::Banyan, 4, 0.3);
        let b = run(Architecture::Banyan, 4, 0.3);
        assert_eq!(a.words_delivered, b.words_delivered);
        assert_eq!(a.energy, b.energy);
        let c =
            simulate(SimulationConfig::quick(Architecture::Banyan, 4, 0.3).with_seed(99)).unwrap();
        assert_ne!(a.words_delivered, c.words_delivered);
    }

    #[test]
    fn latency_exceeds_packet_length() {
        let report = run(Architecture::Crossbar, 4, 0.3);
        assert!(report.packets_delivered > 0);
        assert!(report.average_latency_cycles >= 16.0);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_bracket_the_mean() {
        let report = run(Architecture::Crossbar, 8, 0.4);
        assert!(report.packets_delivered > 0);
        // A packet needs at least its 16 transfer cycles.
        assert!(report.latency_p50 >= 16.0);
        assert!(report.latency_p50 <= report.latency_p95);
        assert!(report.latency_p95 <= report.latency_p99);
        // The mean of a right-skewed queueing distribution sits between the
        // median and the extreme tail.
        assert!(report.average_latency_cycles <= report.latency_p99);
    }

    #[test]
    fn latency_histogram_count_matches_delivered_packets() {
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.4);
        let model = FabricEnergyModel::paper(4).unwrap();
        let mut sim = RouterSimulator::new(config.clone(), model).unwrap();
        let total = config.warmup_cycles + config.measure_cycles;
        for _ in 0..total {
            sim.step();
        }
        let report = sim.report();
        assert_eq!(sim.latency_histogram().count(), report.packets_delivered);
        assert!((sim.latency_histogram().mean() - report.average_latency_cycles).abs() < 1e-12);
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 8, 0.2);
        let model = FabricEnergyModel::paper(4).unwrap();
        assert!(matches!(
            RouterSimulator::new(config, model),
            Err(SimulationError::PortMismatch { .. })
        ));
    }

    #[test]
    fn provider_constructed_simulator_matches_direct_construction() {
        let provider = ModelProvider::in_memory();
        let spec = ModelSpec::paper(4);
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.3);
        let via_provider = RouterSimulator::from_provider(config.clone(), &provider, &spec)
            .unwrap()
            .run();
        let direct = RouterSimulator::new(config, FabricEnergyModel::paper(4).unwrap())
            .unwrap()
            .run();
        assert_eq!(via_provider.energy, direct.energy);
        assert_eq!(via_provider.words_delivered, direct.words_delivered);

        // Model failures surface as SimulationError::Model…
        let bad = SimulationConfig::quick(Architecture::Crossbar, 6, 0.2);
        assert!(matches!(
            RouterSimulator::from_provider(bad, &provider, &ModelSpec::paper(6)),
            Err(SimulationError::Model(_))
        ));
        // …and a spec/config port disagreement stays a PortMismatch.
        let mismatched = SimulationConfig::quick(Architecture::Crossbar, 8, 0.2);
        assert!(matches!(
            RouterSimulator::from_provider(mismatched, &provider, &ModelSpec::paper(4)),
            Err(SimulationError::PortMismatch { .. })
        ));
    }

    #[test]
    fn step_can_be_driven_manually() {
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.5);
        let model = FabricEnergyModel::paper(4).unwrap();
        let mut sim = RouterSimulator::new(config, model).unwrap();
        for _ in 0..50 {
            sim.step();
        }
        let report = sim.report();
        assert_eq!(report.measured_cycles, 0, "still inside warmup");
    }
}
