//! The bit-level, cycle-driven router simulation platform (paper §5.2).
//!
//! This is the Rust replacement for the paper's Simulink/C++ S-function
//! platform.  Every clock cycle:
//!
//! 1. new packets arrive at the ingress process units (input buffering —
//!    these queues sit outside the switch fabric and are not charged);
//! 2. the arbiter grants head-of-line packets to free egress ports with a
//!    first-come-first-serve round-robin policy, which resolves destination
//!    contention before packets enter the fabric (paper §3.2);
//! 3. every in-flight packet pushes one payload word along its path; the
//!    simulator charges node-switch energy from the input-vector LUTs, wire
//!    energy for every bit that flips polarity on every interconnect segment,
//!    and — inside the Banyan — buffer energy whenever interconnect
//!    contention forces a word into a node buffer.
//!
//! Throughput is measured at the egress ports, exactly as in the paper.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric_power_fabric::energy_model::{EnergyModelError, FabricEnergyModel};
use fabric_power_fabric::provider::{ModelProvider, ModelSpec};
use fabric_power_fabric::topology::{ElementId, FabricTopology, RoutePath, TopologyError};
use fabric_power_tech::wire::polarity_flips;

use crate::config::{SimulationConfig, SimulationReport};
use crate::energy::EnergyAccount;
use crate::metrics::LatencyHistogram;
use crate::packet::Packet;
use crate::traffic::TrafficGenerator;

/// A link inside the fabric, used to track per-wire polarity state and to
/// detect interconnect contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LinkKey {
    /// The dedicated ingress segment of one input port.
    Ingress(usize),
    /// The output link of a node switch.
    Hop(ElementId, usize),
}

/// One packet currently crossing the fabric.
#[derive(Debug, Clone)]
struct ActiveFlow {
    packet: Packet,
    path: RoutePath,
    words_delivered: usize,
    /// Words currently parked in a node buffer because of contention.
    backlog: u64,
    /// The node the backlog is parked at (first contended hop).
    backlog_element: Option<ElementId>,
    blocked: bool,
}

impl ActiveFlow {
    fn is_complete(&self) -> bool {
        self.words_delivered >= self.packet.words()
    }
}

/// Errors raised when constructing a [`RouterSimulator`].
#[derive(Debug)]
pub enum SimulationError {
    /// The topology could not be built (bad port count).
    Topology(TopologyError),
    /// Acquiring the energy model from a provider failed.
    Model(EnergyModelError),
    /// The energy model was built for a different port count than the
    /// configuration requests.
    PortMismatch {
        /// Ports in the configuration.
        config_ports: usize,
        /// Ports the energy model was built for.
        model_ports: usize,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Topology(e) => write!(f, "topology: {e}"),
            Self::Model(e) => write!(f, "energy model: {e}"),
            Self::PortMismatch {
                config_ports,
                model_ports,
            } => write!(
                f,
                "configuration requests {config_ports} ports but the energy model was built for {model_ports}"
            ),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Topology(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::PortMismatch { .. } => None,
        }
    }
}

impl From<TopologyError> for SimulationError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl From<EnergyModelError> for SimulationError {
    fn from(e: EnergyModelError) -> Self {
        Self::Model(e)
    }
}

/// The bit-level router simulator.
///
/// # Examples
///
/// ```
/// use fabric_power_fabric::{Architecture, FabricEnergyModel};
/// use fabric_power_router::config::SimulationConfig;
/// use fabric_power_router::sim::RouterSimulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.3);
/// let model = FabricEnergyModel::paper(4)?;
/// let report = RouterSimulator::new(config, model)?.run();
/// assert!(report.measured_throughput() > 0.0);
/// assert!(report.energy.total().as_joules() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RouterSimulator {
    config: SimulationConfig,
    /// Shared immutable energy model: parameter sweeps evaluate many
    /// operating points per fabric size, so the model is behind an [`Arc`]
    /// and shared across simulators (and worker threads) instead of being
    /// cloned per run.
    model: Arc<FabricEnergyModel>,
    topology: FabricTopology,
    traffic: TrafficGenerator,

    input_queues: Vec<VecDeque<Packet>>,
    input_busy: Vec<bool>,
    output_busy: Vec<bool>,
    grant_pointer: Vec<usize>,
    flows: Vec<ActiveFlow>,
    link_last_word: HashMap<LinkKey, u64>,
    node_buffer_words: HashMap<ElementId, u64>,

    cycle: u64,
    measuring: bool,
    measured_cycles: u64,
    words_delivered: u64,
    packets_delivered: u64,
    buffered_words: u64,
    buffer_overflow_cycles: u64,
    latency: LatencyHistogram,
    energy: EnergyAccount,
}

impl RouterSimulator {
    /// Creates a simulator from a configuration and a matching energy model.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the port count is invalid or does not
    /// match the energy model.
    pub fn new(
        config: SimulationConfig,
        model: FabricEnergyModel,
    ) -> Result<Self, SimulationError> {
        Self::with_shared_model(config, Arc::new(model))
    }

    /// Creates a simulator whose energy model is acquired through a
    /// [`ModelProvider`] — the standard construction path since the
    /// model-provider layer owns all model acquisition (memoized in memory,
    /// optionally persisted in a content-addressed on-disk cache).
    ///
    /// The model stays [`Arc`]-shared: repeated simulations of the same spec
    /// reuse one allocation, whether or not they share a thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the model cannot be built, the port
    /// count is invalid, or the spec's port count does not match the
    /// configuration's.
    pub fn from_provider(
        config: SimulationConfig,
        provider: &ModelProvider,
        spec: &ModelSpec,
    ) -> Result<Self, SimulationError> {
        let model = provider.get(spec)?;
        Self::with_shared_model(config, model)
    }

    /// Creates a simulator from a configuration and a shared energy model.
    ///
    /// This is the constructor parameter sweeps use: one immutable model per
    /// fabric size, shared across every simulation (and worker thread) via
    /// [`Arc`] instead of being cloned per operating point.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the port count is invalid or does not
    /// match the energy model.
    pub fn with_shared_model(
        config: SimulationConfig,
        model: Arc<FabricEnergyModel>,
    ) -> Result<Self, SimulationError> {
        if model.ports() != config.ports {
            return Err(SimulationError::PortMismatch {
                config_ports: config.ports,
                model_ports: model.ports(),
            });
        }
        let topology = FabricTopology::new(config.architecture, config.ports)?;
        let traffic = TrafficGenerator::new(
            config.ports,
            config.offered_load,
            config.packet_words,
            config.pattern,
            config.seed,
        );
        Ok(Self {
            input_queues: vec![VecDeque::new(); config.ports],
            input_busy: vec![false; config.ports],
            output_busy: vec![false; config.ports],
            grant_pointer: vec![0; config.ports],
            flows: Vec::new(),
            link_last_word: HashMap::new(),
            node_buffer_words: HashMap::new(),
            cycle: 0,
            measuring: false,
            measured_cycles: 0,
            words_delivered: 0,
            packets_delivered: 0,
            buffered_words: 0,
            buffer_overflow_cycles: 0,
            latency: LatencyHistogram::new(),
            energy: EnergyAccount::new(),
            topology,
            traffic,
            config,
            model,
        })
    }

    /// Runs the configured warmup and measurement windows and returns the
    /// report.
    #[must_use]
    pub fn run(mut self) -> SimulationReport {
        let total = self.config.warmup_cycles + self.config.measure_cycles;
        for _ in 0..total {
            self.step();
        }
        self.report()
    }

    /// Simulates a single clock cycle. Exposed so tests and interactive tools
    /// can drive the simulator incrementally; most callers want
    /// [`RouterSimulator::run`].
    pub fn step(&mut self) {
        if self.cycle == self.config.warmup_cycles {
            self.begin_measurement();
        }
        if self.measuring {
            self.measured_cycles += 1;
        }

        self.accept_arrivals();
        self.arbitrate();
        self.resolve_contention();
        self.transmit();
        self.complete_flows();

        self.cycle += 1;
    }

    /// Builds the report for everything measured so far.
    #[must_use]
    pub fn report(&self) -> SimulationReport {
        let [latency_p50, latency_p95, latency_p99] = self.latency.summary();
        SimulationReport {
            architecture: self.config.architecture,
            ports: self.config.ports,
            offered_load: self.config.offered_load,
            measured_cycles: self.measured_cycles,
            words_delivered: self.words_delivered,
            packets_delivered: self.packets_delivered,
            buffered_words: self.buffered_words,
            buffer_overflow_cycles: self.buffer_overflow_cycles,
            average_latency_cycles: self.latency.mean(),
            latency_p50,
            latency_p95,
            latency_p99,
            latency_histogram: self.latency.to_sparse(),
            energy: self.energy,
            cycle_time: self.config.cycle_time(),
        }
    }

    /// The latency distribution recorded so far (one sample per packet
    /// delivered during the measurement window).
    #[must_use]
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    fn begin_measurement(&mut self) {
        self.measuring = true;
        self.measured_cycles = 0;
        self.words_delivered = 0;
        self.packets_delivered = 0;
        self.buffered_words = 0;
        self.buffer_overflow_cycles = 0;
        self.latency = LatencyHistogram::new();
        self.energy = EnergyAccount::new();
    }

    fn accept_arrivals(&mut self) {
        for port in 0..self.config.ports {
            if let Some(packet) = self.traffic.arrivals(port, self.cycle) {
                self.input_queues[port].push_back(packet);
            }
        }
    }

    /// First-come-first-serve arbitration with a round-robin tie-break per
    /// egress port: destination contention is resolved here, before packets
    /// enter the fabric (paper §3.2).
    fn arbitrate(&mut self) {
        let ports = self.config.ports;
        for output in 0..ports {
            if self.output_busy[output] {
                continue;
            }
            let start = self.grant_pointer[output];
            for offset in 0..ports {
                let input = (start + offset) % ports;
                if self.input_busy[input] {
                    continue;
                }
                let Some(head) = self.input_queues[input].front() else {
                    continue;
                };
                if head.destination != output {
                    continue;
                }
                let packet = self.input_queues[input].pop_front().expect("head exists");
                let path = self.topology.route(input, output);
                self.flows.push(ActiveFlow {
                    packet,
                    path,
                    words_delivered: 0,
                    backlog: 0,
                    backlog_element: None,
                    blocked: false,
                });
                self.input_busy[input] = true;
                self.output_busy[output] = true;
                self.grant_pointer[output] = (input + 1) % ports;
                break;
            }
        }
    }

    /// Detects interconnect contention (internal blocking) for fabrics whose
    /// paths can share links — only the Banyan in the paper's set.  Flows are
    /// examined in a rotating priority order; a flow that cannot claim every
    /// link of its path is blocked for this cycle and its incoming word is
    /// absorbed by the node buffer at the first contended hop.
    fn resolve_contention(&mut self) {
        for flow in &mut self.flows {
            flow.blocked = false;
        }
        if self.flows.is_empty() {
            return;
        }
        let mut claimed: HashMap<LinkKey, usize> = HashMap::new();
        let count = self.flows.len();
        let start = (self.cycle as usize) % count;
        for offset in 0..count {
            let index = (start + offset) % count;
            let flow = &self.flows[index];
            if flow.is_complete() {
                continue;
            }
            let contendable = flow.path.hops.iter().any(|h| h.buffered_on_contention);
            if !contendable {
                continue;
            }
            let mut blocking_element = None;
            for hop in flow.path.hops.iter().filter(|h| h.buffered_on_contention) {
                let key = LinkKey::Hop(hop.element, hop.output_port);
                if claimed.contains_key(&key) {
                    blocking_element = Some(hop.element);
                    break;
                }
            }
            if let Some(element) = blocking_element {
                let flow = &mut self.flows[index];
                flow.blocked = true;
                flow.backlog_element = Some(element);
            } else {
                for hop in self.flows[index]
                    .path
                    .hops
                    .iter()
                    .filter(|h| h.buffered_on_contention)
                {
                    claimed.insert(LinkKey::Hop(hop.element, hop.output_port), index);
                }
            }
        }
    }

    /// Advances every flow by one word, charging energy as it goes.
    fn transmit(&mut self) {
        let bus_width = f64::from(self.model.bus_width_bits());
        let word_mask = if self.model.bus_width_bits() >= 64 {
            u64::MAX
        } else {
            (1_u64 << self.model.bus_width_bits()) - 1
        };

        // Per-element occupancy of flows that transmit this cycle (the input
        // vector the node-switch LUT is indexed with).
        let mut occupancy: HashMap<ElementId, usize> = HashMap::new();
        for flow in &self.flows {
            if flow.blocked || flow.is_complete() {
                continue;
            }
            for hop in &flow.path.hops {
                *occupancy.entry(hop.element).or_insert(0) += 1;
            }
        }

        let mut switch_energy = fabric_power_tech::units::Energy::ZERO;
        let mut wire_energy = fabric_power_tech::units::Energy::ZERO;
        let mut buffer_energy = fabric_power_tech::units::Energy::ZERO;

        for flow in &mut self.flows {
            if flow.is_complete() {
                continue;
            }
            if flow.blocked {
                // The word arriving at the contended node this cycle is written
                // into (and will later be read back from) the node buffer.
                buffer_energy += self.model.buffer_bit_energy() * bus_width;
                flow.backlog += 1;
                if self.measuring {
                    self.buffered_words += 1;
                }
                if let Some(element) = flow.backlog_element {
                    let entry = self.node_buffer_words.entry(element).or_insert(0);
                    *entry += 1;
                    if *entry * u64::from(self.model.bus_width_bits())
                        > self.config.node_buffer_bits
                        && self.measuring
                    {
                        self.buffer_overflow_cycles += 1;
                    }
                }
                continue;
            }

            let word = flow.packet.payload[flow.words_delivered] & word_mask;

            // Wire energy: only bits that flip polarity on each interconnect
            // segment dissipate energy (paper Eq. 2).
            let ingress_key = LinkKey::Ingress(flow.packet.source);
            let previous = self.link_last_word.insert(ingress_key, word).unwrap_or(0);
            let flips = f64::from(polarity_flips(previous, word));
            wire_energy +=
                self.model.grid_bit_energy() * (flips * flow.path.wire_grids_before as f64);
            for hop in &flow.path.hops {
                let key = LinkKey::Hop(hop.element, hop.output_port);
                let previous = self.link_last_word.insert(key, word).unwrap_or(0);
                let flips = f64::from(polarity_flips(previous, word));
                wire_energy += self.model.grid_bit_energy() * (flips * hop.wire_grids_after as f64);
            }

            // Node-switch energy from the input-vector LUT.
            for hop in &flow.path.hops {
                if hop.charged_inputs > 1 {
                    // Crossbar row: the bit toggles the inputs of all N
                    // crosspoints (Eq. 3's N·E_S term).
                    switch_energy += self.model.switch_bit_energy(hop.class, 1)
                        * (bus_width * hop.charged_inputs as f64);
                } else {
                    let occupants = occupancy.get(&hop.element).copied().unwrap_or(1).max(1);
                    // The LUT value is the whole switch's per-bit-slot energy
                    // under that occupancy; split it evenly between the
                    // packets sharing the switch so it is charged exactly once.
                    switch_energy += self.model.switch_bit_energy(hop.class, occupants)
                        * (bus_width / occupants as f64);
                }
            }

            // A word previously parked in the node buffer drains along with
            // this one (its read access was already charged on the write).
            if flow.backlog > 0 {
                flow.backlog -= 1;
                if let Some(element) = flow.backlog_element {
                    if let Some(entry) = self.node_buffer_words.get_mut(&element) {
                        *entry = entry.saturating_sub(1);
                    }
                }
            }

            flow.words_delivered += 1;
            if self.measuring {
                self.words_delivered += 1;
            }
        }

        if self.measuring {
            self.energy.switches += switch_energy;
            self.energy.wires += wire_energy;
            self.energy.buffers += buffer_energy;
        }
    }

    fn complete_flows(&mut self) {
        let cycle = self.cycle;
        let measuring = self.measuring;
        let mut completed_latency = Vec::new();
        self.flows.retain(|flow| {
            if flow.is_complete() {
                completed_latency.push((
                    flow.packet.source,
                    flow.packet.destination,
                    cycle + 1 - flow.packet.arrival_cycle,
                ));
                false
            } else {
                true
            }
        });
        for (source, destination, latency) in completed_latency {
            self.input_busy[source] = false;
            self.output_busy[destination] = false;
            if measuring {
                self.packets_delivered += 1;
                self.latency.record(latency);
            }
        }
    }
}

/// Convenience wrapper: obtain the paper-reference energy model for the
/// configuration's port count from the process-wide shared
/// [`ModelProvider`], run the simulation and return the report.
///
/// # Errors
///
/// Propagates energy-model and simulator construction failures.
pub fn simulate(
    config: SimulationConfig,
) -> Result<SimulationReport, Box<dyn std::error::Error + Send + Sync>> {
    let spec = ModelSpec::paper(config.ports);
    let simulator = RouterSimulator::from_provider(config, &ModelProvider::shared(), &spec)?;
    Ok(simulator.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use fabric_power_fabric::Architecture;

    fn run(architecture: Architecture, ports: usize, load: f64) -> SimulationReport {
        simulate(SimulationConfig::quick(architecture, ports, load)).expect("simulation runs")
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        for architecture in Architecture::ALL {
            let report = run(architecture, 8, 0.2);
            let measured = report.measured_throughput();
            assert!(
                (measured - 0.2).abs() < 0.07,
                "{architecture}: offered 0.2, measured {measured}"
            );
        }
    }

    #[test]
    fn throughput_saturates_near_the_input_buffer_limit() {
        // Offered load far above the 58.6% head-of-line blocking limit: the
        // measured egress throughput must saturate below ~65%.
        let config =
            SimulationConfig::quick(Architecture::Crossbar, 8, 0.95).with_cycles(300, 2500);
        let report = simulate(config).unwrap();
        let measured = report.measured_throughput();
        assert!(measured < 0.70, "measured {measured} should saturate");
        assert!(measured > 0.40, "measured {measured} suspiciously low");
    }

    #[test]
    fn energy_scales_with_offered_load() {
        let low = run(Architecture::Crossbar, 8, 0.1);
        let high = run(Architecture::Crossbar, 8, 0.4);
        assert!(high.energy.total() > low.energy.total() * 2.0);
        assert!(high.average_power() > low.average_power());
    }

    #[test]
    fn only_banyan_accumulates_buffer_energy() {
        let banyan = run(Architecture::Banyan, 8, 0.4);
        assert!(banyan.buffered_words > 0);
        assert!(banyan.energy.buffers.as_joules() > 0.0);
        for architecture in [
            Architecture::Crossbar,
            Architecture::FullyConnected,
            Architecture::BatcherBanyan,
        ] {
            let report = run(architecture, 8, 0.4);
            assert_eq!(report.buffered_words, 0, "{architecture}");
            assert!(report.energy.buffers.is_zero(), "{architecture}");
        }
    }

    #[test]
    fn banyan_buffer_fraction_grows_with_load() {
        let low = run(Architecture::Banyan, 8, 0.1);
        let high = run(Architecture::Banyan, 8, 0.5);
        assert!(high.energy.buffer_fraction() > low.energy.buffer_fraction());
    }

    #[test]
    fn fully_connected_is_cheapest_at_moderate_load() {
        let ports = 8;
        let load = 0.4;
        let fully = run(Architecture::FullyConnected, ports, load).average_power();
        for architecture in [Architecture::Crossbar, Architecture::BatcherBanyan] {
            let other = run(architecture, ports, load).average_power();
            assert!(
                fully < other,
                "fully connected {fully} should beat {architecture} {other}"
            );
        }
    }

    #[test]
    fn permutation_traffic_avoids_destination_contention() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 8, 0.5)
            .with_pattern(TrafficPattern::Permutation { shift: 1 });
        let report = simulate(config).unwrap();
        // Without head-of-line blocking the measured throughput tracks the
        // offered load closely even at 50%.
        assert!((report.measured_throughput() - 0.5).abs() < 0.07);
    }

    #[test]
    fn simulation_is_reproducible_for_a_fixed_seed() {
        let a = run(Architecture::Banyan, 4, 0.3);
        let b = run(Architecture::Banyan, 4, 0.3);
        assert_eq!(a.words_delivered, b.words_delivered);
        assert_eq!(a.energy, b.energy);
        let c =
            simulate(SimulationConfig::quick(Architecture::Banyan, 4, 0.3).with_seed(99)).unwrap();
        assert_ne!(a.words_delivered, c.words_delivered);
    }

    #[test]
    fn latency_exceeds_packet_length() {
        let report = run(Architecture::Crossbar, 4, 0.3);
        assert!(report.packets_delivered > 0);
        assert!(report.average_latency_cycles >= 16.0);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_bracket_the_mean() {
        let report = run(Architecture::Crossbar, 8, 0.4);
        assert!(report.packets_delivered > 0);
        // A packet needs at least its 16 transfer cycles.
        assert!(report.latency_p50 >= 16.0);
        assert!(report.latency_p50 <= report.latency_p95);
        assert!(report.latency_p95 <= report.latency_p99);
        // The mean of a right-skewed queueing distribution sits between the
        // median and the extreme tail.
        assert!(report.average_latency_cycles <= report.latency_p99);
    }

    #[test]
    fn latency_histogram_count_matches_delivered_packets() {
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.4);
        let model = FabricEnergyModel::paper(4).unwrap();
        let mut sim = RouterSimulator::new(config.clone(), model).unwrap();
        let total = config.warmup_cycles + config.measure_cycles;
        for _ in 0..total {
            sim.step();
        }
        let report = sim.report();
        assert_eq!(sim.latency_histogram().count(), report.packets_delivered);
        assert!((sim.latency_histogram().mean() - report.average_latency_cycles).abs() < 1e-12);
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 8, 0.2);
        let model = FabricEnergyModel::paper(4).unwrap();
        assert!(matches!(
            RouterSimulator::new(config, model),
            Err(SimulationError::PortMismatch { .. })
        ));
    }

    #[test]
    fn provider_constructed_simulator_matches_direct_construction() {
        let provider = ModelProvider::in_memory();
        let spec = ModelSpec::paper(4);
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.3);
        let via_provider = RouterSimulator::from_provider(config.clone(), &provider, &spec)
            .unwrap()
            .run();
        let direct = RouterSimulator::new(config, FabricEnergyModel::paper(4).unwrap())
            .unwrap()
            .run();
        assert_eq!(via_provider.energy, direct.energy);
        assert_eq!(via_provider.words_delivered, direct.words_delivered);

        // Model failures surface as SimulationError::Model…
        let bad = SimulationConfig::quick(Architecture::Crossbar, 6, 0.2);
        assert!(matches!(
            RouterSimulator::from_provider(bad, &provider, &ModelSpec::paper(6)),
            Err(SimulationError::Model(_))
        ));
        // …and a spec/config port disagreement stays a PortMismatch.
        let mismatched = SimulationConfig::quick(Architecture::Crossbar, 8, 0.2);
        assert!(matches!(
            RouterSimulator::from_provider(mismatched, &provider, &ModelSpec::paper(4)),
            Err(SimulationError::PortMismatch { .. })
        ));
    }

    #[test]
    fn step_can_be_driven_manually() {
        let config = SimulationConfig::quick(Architecture::Banyan, 4, 0.5);
        let model = FabricEnergyModel::paper(4).unwrap();
        let mut sim = RouterSimulator::new(config, model).unwrap();
        for _ in 0..50 {
            sim.step();
        }
        let report = sim.report();
        assert_eq!(report.measured_cycles, 0, "still inside warmup");
    }
}
