//! The reusable per-tick switching core of one router.
//!
//! [`RouterNode`] is the per-cycle body that used to live inside
//! `RouterSimulator::step`: accept injected packets, arbitrate head-of-line
//! packets onto free egress ports, resolve interconnect contention, push one
//! payload word per in-flight packet while charging switch/wire/buffer
//! energy, and hand back the packets that finished crossing the fabric this
//! cycle.  Traffic is *injected* ([`RouterNode::inject`]) rather than
//! self-generated, so the same core serves both the single-router driver
//! (`RouterSimulator`, which feeds it from a `TrafficGenerator`) and a
//! network node (`fabric-power-noc`, which feeds it from inter-router
//! links).
//!
//! The node knows nothing about warmup windows, latency bookkeeping or
//! traffic patterns: the driver owns the clock and calls
//! [`RouterNode::step`] once per cycle, then interprets the returned
//! completions (recording end-to-end latency, or forwarding the packet to
//! its next hop).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric_power_fabric::energy_model::FabricEnergyModel;
use fabric_power_fabric::topology::{ElementId, FabricTopology, RoutePath};
use fabric_power_fabric::Architecture;
use fabric_power_tech::wire::polarity_flips;

use crate::energy::EnergyAccount;
use crate::packet::Packet;
use crate::sim::SimulationError;

/// A link inside the fabric, used to track per-wire polarity state and to
/// detect interconnect contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LinkKey {
    /// The dedicated ingress segment of one input port.
    Ingress(usize),
    /// The output link of a node switch.
    Hop(ElementId, usize),
}

/// One packet currently crossing the fabric.
#[derive(Debug, Clone)]
struct ActiveFlow {
    packet: Packet,
    path: RoutePath,
    words_delivered: usize,
    /// Words currently parked in a node buffer because of contention.
    backlog: u64,
    /// The node the backlog is parked at (first contended hop).
    backlog_element: Option<ElementId>,
    blocked: bool,
}

impl ActiveFlow {
    fn is_complete(&self) -> bool {
        self.words_delivered >= self.packet.words()
    }
}

/// The per-tick switching core of one router: input queues, the
/// first-come-first-serve round-robin arbiter, the in-fabric flows with
/// their per-link polarity state, and the three-component energy account.
#[derive(Debug)]
pub struct RouterNode {
    ports: usize,
    node_buffer_bits: u64,
    /// Shared immutable energy model (one per distinct node configuration,
    /// [`Arc`]-shared across nodes and worker threads).
    model: Arc<FabricEnergyModel>,
    topology: FabricTopology,

    input_queues: Vec<VecDeque<Packet>>,
    input_busy: Vec<bool>,
    output_busy: Vec<bool>,
    grant_pointer: Vec<usize>,
    flows: Vec<ActiveFlow>,
    link_last_word: HashMap<LinkKey, u64>,
    node_buffer_words: HashMap<ElementId, u64>,

    measuring: bool,
    words_delivered: u64,
    buffered_words: u64,
    buffer_overflow_cycles: u64,
    energy: EnergyAccount,
}

impl RouterNode {
    /// Creates a node for the given fabric architecture and port count.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] if the port count is invalid for the
    /// architecture or does not match the energy model.
    pub fn new(
        architecture: Architecture,
        ports: usize,
        node_buffer_bits: u64,
        model: Arc<FabricEnergyModel>,
    ) -> Result<Self, SimulationError> {
        if model.ports() != ports {
            return Err(SimulationError::PortMismatch {
                config_ports: ports,
                model_ports: model.ports(),
            });
        }
        let topology = FabricTopology::new(architecture, ports)?;
        Ok(Self {
            ports,
            node_buffer_bits,
            model,
            topology,
            input_queues: vec![VecDeque::new(); ports],
            input_busy: vec![false; ports],
            output_busy: vec![false; ports],
            grant_pointer: vec![0; ports],
            flows: Vec::new(),
            link_last_word: HashMap::new(),
            node_buffer_words: HashMap::new(),
            measuring: false,
            words_delivered: 0,
            buffered_words: 0,
            buffer_overflow_cycles: 0,
            energy: EnergyAccount::new(),
        })
    }

    /// Number of switch-fabric ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The energy model this node charges against.
    #[must_use]
    pub fn model(&self) -> &FabricEnergyModel {
        &self.model
    }

    /// Enqueues a packet at an input port.  The packet's `source` and
    /// `destination` are *local* port indices on this node; a network layer
    /// rewrites them per hop.
    pub fn inject(&mut self, port: usize, packet: Packet) {
        self.input_queues[port].push_back(packet);
    }

    /// Packets currently waiting in the given input queue (head-of-line
    /// packet included, in-fabric flows excluded).  Network links use this
    /// for backpressure.
    #[must_use]
    pub fn input_queue_len(&self, port: usize) -> usize {
        self.input_queues[port].len()
    }

    /// Starts the measurement window: zeroes the delivered-word, buffering
    /// and energy accounts.  In-flight state (queues, flows, per-link
    /// polarity) is deliberately kept — warmup exists precisely to populate
    /// it.
    pub fn begin_measurement(&mut self) {
        self.measuring = true;
        self.words_delivered = 0;
        self.buffered_words = 0;
        self.buffer_overflow_cycles = 0;
        self.energy = EnergyAccount::new();
    }

    /// Payload words that left through egress ports during the measurement
    /// window.
    #[must_use]
    pub fn words_delivered(&self) -> u64 {
        self.words_delivered
    }

    /// Words parked in node buffers by interconnect contention during the
    /// measurement window.
    #[must_use]
    pub fn buffered_words(&self) -> u64 {
        self.buffered_words
    }

    /// Cycles during which a node buffer exceeded its configured capacity.
    #[must_use]
    pub fn buffer_overflow_cycles(&self) -> u64 {
        self.buffer_overflow_cycles
    }

    /// The switch/buffer/wire energy charged during the measurement window.
    #[must_use]
    pub fn energy(&self) -> EnergyAccount {
        self.energy
    }

    /// Runs one clock cycle — arbitration, contention resolution, word
    /// transmission, flow completion — and returns the packets that finished
    /// crossing the fabric this cycle, in completion order.
    ///
    /// The caller owns the clock: `cycle` only seeds the rotating contention
    /// priority and is echoed nowhere else.
    pub fn step(&mut self, cycle: u64) -> Vec<Packet> {
        self.arbitrate();
        self.resolve_contention(cycle);
        self.transmit();
        self.complete_flows()
    }

    /// First-come-first-serve arbitration with a round-robin tie-break per
    /// egress port: destination contention is resolved here, before packets
    /// enter the fabric (paper §3.2).
    fn arbitrate(&mut self) {
        let ports = self.ports;
        for output in 0..ports {
            if self.output_busy[output] {
                continue;
            }
            let start = self.grant_pointer[output];
            for offset in 0..ports {
                let input = (start + offset) % ports;
                if self.input_busy[input] {
                    continue;
                }
                let Some(head) = self.input_queues[input].front() else {
                    continue;
                };
                if head.destination != output {
                    continue;
                }
                let packet = self.input_queues[input].pop_front().expect("head exists");
                let path = self.topology.route(input, output);
                self.flows.push(ActiveFlow {
                    packet,
                    path,
                    words_delivered: 0,
                    backlog: 0,
                    backlog_element: None,
                    blocked: false,
                });
                self.input_busy[input] = true;
                self.output_busy[output] = true;
                self.grant_pointer[output] = (input + 1) % ports;
                break;
            }
        }
    }

    /// Detects interconnect contention (internal blocking) for fabrics whose
    /// paths can share links — only the Banyan in the paper's set.  Flows are
    /// examined in a rotating priority order; a flow that cannot claim every
    /// link of its path is blocked for this cycle and its incoming word is
    /// absorbed by the node buffer at the first contended hop.
    fn resolve_contention(&mut self, cycle: u64) {
        for flow in &mut self.flows {
            flow.blocked = false;
        }
        if self.flows.is_empty() {
            return;
        }
        let mut claimed: HashMap<LinkKey, usize> = HashMap::new();
        let count = self.flows.len();
        let start = (cycle as usize) % count;
        for offset in 0..count {
            let index = (start + offset) % count;
            let flow = &self.flows[index];
            if flow.is_complete() {
                continue;
            }
            let contendable = flow.path.hops.iter().any(|h| h.buffered_on_contention);
            if !contendable {
                continue;
            }
            let mut blocking_element = None;
            for hop in flow.path.hops.iter().filter(|h| h.buffered_on_contention) {
                let key = LinkKey::Hop(hop.element, hop.output_port);
                if claimed.contains_key(&key) {
                    blocking_element = Some(hop.element);
                    break;
                }
            }
            if let Some(element) = blocking_element {
                let flow = &mut self.flows[index];
                flow.blocked = true;
                flow.backlog_element = Some(element);
            } else {
                for hop in self.flows[index]
                    .path
                    .hops
                    .iter()
                    .filter(|h| h.buffered_on_contention)
                {
                    claimed.insert(LinkKey::Hop(hop.element, hop.output_port), index);
                }
            }
        }
    }

    /// Advances every flow by one word, charging energy as it goes.
    fn transmit(&mut self) {
        let bus_width = f64::from(self.model.bus_width_bits());
        let word_mask = if self.model.bus_width_bits() >= 64 {
            u64::MAX
        } else {
            (1_u64 << self.model.bus_width_bits()) - 1
        };

        // Per-element occupancy of flows that transmit this cycle (the input
        // vector the node-switch LUT is indexed with).
        let mut occupancy: HashMap<ElementId, usize> = HashMap::new();
        for flow in &self.flows {
            if flow.blocked || flow.is_complete() {
                continue;
            }
            for hop in &flow.path.hops {
                *occupancy.entry(hop.element).or_insert(0) += 1;
            }
        }

        let mut switch_energy = fabric_power_tech::units::Energy::ZERO;
        let mut wire_energy = fabric_power_tech::units::Energy::ZERO;
        let mut buffer_energy = fabric_power_tech::units::Energy::ZERO;

        for flow in &mut self.flows {
            if flow.is_complete() {
                continue;
            }
            if flow.blocked {
                // The word arriving at the contended node this cycle is written
                // into (and will later be read back from) the node buffer.
                buffer_energy += self.model.buffer_bit_energy() * bus_width;
                flow.backlog += 1;
                if self.measuring {
                    self.buffered_words += 1;
                }
                if let Some(element) = flow.backlog_element {
                    let entry = self.node_buffer_words.entry(element).or_insert(0);
                    *entry += 1;
                    if *entry * u64::from(self.model.bus_width_bits()) > self.node_buffer_bits
                        && self.measuring
                    {
                        self.buffer_overflow_cycles += 1;
                    }
                }
                continue;
            }

            let word = flow.packet.payload[flow.words_delivered] & word_mask;

            // Wire energy: only bits that flip polarity on each interconnect
            // segment dissipate energy (paper Eq. 2).
            let ingress_key = LinkKey::Ingress(flow.packet.source);
            let previous = self.link_last_word.insert(ingress_key, word).unwrap_or(0);
            let flips = f64::from(polarity_flips(previous, word));
            wire_energy +=
                self.model.grid_bit_energy() * (flips * flow.path.wire_grids_before as f64);
            for hop in &flow.path.hops {
                let key = LinkKey::Hop(hop.element, hop.output_port);
                let previous = self.link_last_word.insert(key, word).unwrap_or(0);
                let flips = f64::from(polarity_flips(previous, word));
                wire_energy += self.model.grid_bit_energy() * (flips * hop.wire_grids_after as f64);
            }

            // Node-switch energy from the input-vector LUT.
            for hop in &flow.path.hops {
                if hop.charged_inputs > 1 {
                    // Crossbar row: the bit toggles the inputs of all N
                    // crosspoints (Eq. 3's N·E_S term).
                    switch_energy += self.model.switch_bit_energy(hop.class, 1)
                        * (bus_width * hop.charged_inputs as f64);
                } else {
                    let occupants = occupancy.get(&hop.element).copied().unwrap_or(1).max(1);
                    // The LUT value is the whole switch's per-bit-slot energy
                    // under that occupancy; split it evenly between the
                    // packets sharing the switch so it is charged exactly once.
                    switch_energy += self.model.switch_bit_energy(hop.class, occupants)
                        * (bus_width / occupants as f64);
                }
            }

            // A word previously parked in the node buffer drains along with
            // this one (its read access was already charged on the write).
            if flow.backlog > 0 {
                flow.backlog -= 1;
                if let Some(element) = flow.backlog_element {
                    if let Some(entry) = self.node_buffer_words.get_mut(&element) {
                        *entry = entry.saturating_sub(1);
                    }
                }
            }

            flow.words_delivered += 1;
            if self.measuring {
                self.words_delivered += 1;
            }
        }

        if self.measuring {
            self.energy.switches += switch_energy;
            self.energy.wires += wire_energy;
            self.energy.buffers += buffer_energy;
        }
    }

    /// Removes finished flows, frees their input/output ports, and returns
    /// their packets in completion order.
    fn complete_flows(&mut self) -> Vec<Packet> {
        let mut completed = Vec::new();
        self.flows.retain(|flow| {
            if flow.is_complete() {
                completed.push(flow.packet.clone());
                false
            } else {
                true
            }
        });
        for packet in &completed {
            self.input_busy[packet.source] = false;
            self.output_busy[packet.destination] = false;
        }
        completed
    }
}
