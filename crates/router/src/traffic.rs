//! Traffic generation (paper §5.2).
//!
//! The paper drives its platform with TCP/IP-like packets whose destinations
//! are uniformly random and whose payloads are random bits; the offered load
//! is set by adjusting the packet-generation intervals.  [`TrafficGenerator`]
//! reproduces that: each idle ingress port starts a new packet per cycle with
//! probability `offered_load / packet_words`, so the average offered word
//! rate per port equals the requested load fraction.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// Destination distribution of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every destination equally likely, excluding the source port
    /// (self-traffic never crosses the fabric).
    UniformRandom,
    /// A fraction of the traffic targets one hot-spot port; the rest is
    /// uniform. An extension beyond the paper, useful for ablations.
    Hotspot {
        /// The egress port that attracts extra traffic.
        port: usize,
        /// Fraction (0..=1) of packets aimed at the hot-spot.
        fraction: f64,
    },
    /// A fixed permutation: input `i` always sends to `(i + shift) mod N`.
    /// This is destination-contention-free, so it isolates the fabric's
    /// interconnect contention from head-of-line blocking.
    Permutation {
        /// Constant offset applied to the source port.
        shift: usize,
    },
}

/// Generates packet arrivals for every ingress port.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    ports: usize,
    offered_load: f64,
    packet_words: usize,
    pattern: TrafficPattern,
    rng: ChaCha8Rng,
    next_packet_id: u64,
    generated: u64,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `offered_load` is outside `(0.0, 1.0]`, `ports < 2`, or
    /// `packet_words == 0`.
    #[must_use]
    pub fn new(
        ports: usize,
        offered_load: f64,
        packet_words: usize,
        pattern: TrafficPattern,
        seed: u64,
    ) -> Self {
        assert!(ports >= 2, "traffic needs at least two ports");
        assert!(
            offered_load > 0.0 && offered_load <= 1.0,
            "offered load must be in (0, 1], got {offered_load}"
        );
        assert!(packet_words > 0, "packets need at least one word");
        Self {
            ports,
            offered_load,
            packet_words,
            pattern,
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_packet_id: 0,
            generated: 0,
        }
    }

    /// Offered load per ingress port, as a fraction of line rate.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// Number of packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Produces the packets arriving at `port` during `cycle` (zero or one).
    pub fn arrivals(&mut self, port: usize, cycle: u64) -> Option<Packet> {
        let start_probability = self.offered_load / self.packet_words as f64;
        if self.rng.gen::<f64>() >= start_probability {
            return None;
        }
        let destination = self.pick_destination(port);
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        self.generated += 1;
        Some(Packet::random(
            &mut self.rng,
            id,
            port,
            destination,
            self.packet_words,
            cycle,
        ))
    }

    fn pick_destination(&mut self, source: usize) -> usize {
        match self.pattern {
            TrafficPattern::UniformRandom => loop {
                let candidate = self.rng.gen_range(0..self.ports);
                if candidate != source {
                    return candidate;
                }
            },
            TrafficPattern::Hotspot { port, fraction } => {
                if self.rng.gen::<f64>() < fraction && port != source {
                    port
                } else {
                    loop {
                        let candidate = self.rng.gen_range(0..self.ports);
                        if candidate != source {
                            return candidate;
                        }
                    }
                }
            }
            TrafficPattern::Permutation { shift } => (source + shift) % self.ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_controls_the_arrival_rate() {
        let cycles = 20_000_u64;
        for &load in &[0.1, 0.3, 0.5] {
            let mut generator =
                TrafficGenerator::new(8, load, 16, TrafficPattern::UniformRandom, 1);
            let mut words = 0_u64;
            for cycle in 0..cycles {
                for port in 0..8 {
                    if let Some(packet) = generator.arrivals(port, cycle) {
                        words += packet.words() as u64;
                    }
                }
            }
            let measured = words as f64 / (cycles * 8) as f64;
            assert!(
                (measured - load).abs() < 0.05,
                "offered {load}, measured {measured}"
            );
        }
    }

    #[test]
    fn uniform_destinations_exclude_the_source_and_cover_all_ports() {
        let mut generator = TrafficGenerator::new(4, 1.0, 1, TrafficPattern::UniformRandom, 2);
        let mut seen = std::collections::HashSet::new();
        for cycle in 0..2000 {
            if let Some(packet) = generator.arrivals(0, cycle) {
                assert_ne!(packet.destination, 0);
                seen.insert(packet.destination);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn hotspot_biases_destinations() {
        let mut generator = TrafficGenerator::new(
            8,
            1.0,
            1,
            TrafficPattern::Hotspot {
                port: 5,
                fraction: 0.7,
            },
            3,
        );
        let mut hot = 0;
        let mut total = 0;
        for cycle in 0..5000 {
            if let Some(packet) = generator.arrivals(0, cycle) {
                total += 1;
                if packet.destination == 5 {
                    hot += 1;
                }
            }
        }
        let fraction = f64::from(hot) / f64::from(total);
        assert!(fraction > 0.6, "hot-spot fraction {fraction}");
    }

    #[test]
    fn permutation_is_deterministic_per_source() {
        let mut generator =
            TrafficGenerator::new(8, 1.0, 1, TrafficPattern::Permutation { shift: 3 }, 4);
        for cycle in 0..100 {
            if let Some(packet) = generator.arrivals(2, cycle) {
                assert_eq!(packet.destination, 5);
            }
        }
    }

    #[test]
    fn generation_is_reproducible_per_seed() {
        let run = |seed| {
            let mut generator =
                TrafficGenerator::new(4, 0.5, 4, TrafficPattern::UniformRandom, seed);
            let mut ids = Vec::new();
            for cycle in 0..200 {
                for port in 0..4 {
                    if let Some(p) = generator.arrivals(port, cycle) {
                        ids.push((cycle, port, p.destination));
                    }
                }
            }
            ids
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_is_rejected() {
        let _ = TrafficGenerator::new(4, 0.0, 16, TrafficPattern::UniformRandom, 0);
    }
}
