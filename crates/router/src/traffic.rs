//! Traffic generation (paper §5.2).
//!
//! The paper drives its platform with TCP/IP-like packets whose destinations
//! are uniformly random and whose payloads are random bits; the offered load
//! is set by adjusting the packet-generation intervals.  [`TrafficGenerator`]
//! reproduces that: each idle ingress port starts a new packet per cycle with
//! probability `offered_load / packet_words`, so the average offered word
//! rate per port equals the requested load fraction.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// Destination distribution of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every destination equally likely, excluding the source port
    /// (self-traffic never crosses the fabric).
    UniformRandom,
    /// A fraction of the traffic targets one hot-spot port; the rest is
    /// uniform. An extension beyond the paper, useful for ablations.
    Hotspot {
        /// The egress port that attracts extra traffic.
        port: usize,
        /// Fraction (0..=1) of packets aimed at the hot-spot.
        fraction: f64,
    },
    /// A fixed permutation: input `i` always sends to `(i + shift) mod N`.
    /// This is destination-contention-free, so it isolates the fabric's
    /// interconnect contention from head-of-line blocking.
    Permutation {
        /// Constant offset applied to the source port.
        shift: usize,
    },
    /// The tornado permutation: input `i` always sends to
    /// `(i + N/2) mod N`, the maximum-distance destination.  A classic
    /// adversarial pattern for multistage interconnects; like
    /// [`TrafficPattern::Permutation`] it is destination-contention-free.
    Tornado,
    /// The bit-complement permutation: input `i` sends to `(N - 1) - i`,
    /// i.e. every bit of the port index inverted (for power-of-two `N`).
    /// Also destination-contention-free.
    BitComplement,
    /// The matrix-transpose permutation: for a perfect-square port count
    /// `N = k²`, input `i = r·k + c` sends to `c·k + r` (row/column swapped).
    /// Diagonal sources (`r == c`) would self-address, so they fall back to a
    /// uniform destination, as does any non-square port count.  The classic
    /// adversarial pattern for dimension-order-routed meshes.
    Transpose,
    /// Two-state on/off (bursty) traffic with uniform random destinations.
    ///
    /// Each ingress port alternates independently between an ON state
    /// offering `on_load` and an OFF state offering `off_load`; state dwell
    /// times are geometrically distributed with mean `mean_burst` cycles.
    /// The `offered_load` passed to the generator is ignored while this
    /// pattern is active — the two state loads define the traffic — so the
    /// long-run average load is `(on_load + off_load) / 2`.
    Bursty {
        /// Offered load per port while the port is in the ON state (0, 1].
        on_load: f64,
        /// Offered load per port while the port is in the OFF state [0, 1].
        off_load: f64,
        /// Mean dwell time of each state, in cycles (must be ≥ 1).
        mean_burst: f64,
    },
}

impl TrafficPattern {
    /// The deterministic destination this pattern assigns to `source`, for
    /// the fixed-permutation patterns ([`TrafficPattern::Permutation`],
    /// [`TrafficPattern::Tornado`], [`TrafficPattern::BitComplement`],
    /// [`TrafficPattern::Transpose`]).
    ///
    /// Returns `None` for the stochastic patterns, and for fixed mappings
    /// that would self-address (the bit-complement middle port of an odd
    /// `N`, transpose diagonal sources, transpose on a non-square `N`) —
    /// the generator falls back to a uniform destination in those cases.
    /// `Permutation`/`Tornado` keep their raw modular arithmetic even when
    /// a degenerate `shift` self-addresses, matching the simulator.
    #[must_use]
    pub fn fixed_destination(self, source: usize, ports: usize) -> Option<usize> {
        match self {
            Self::Permutation { shift } => Some((source + shift) % ports),
            Self::Tornado => Some((source + ports / 2) % ports),
            Self::BitComplement => {
                let destination = (ports - 1) - source;
                (destination != source).then_some(destination)
            }
            Self::Transpose => {
                let side = exact_square_side(ports)?;
                let destination = (source % side) * side + source / side;
                (destination != source).then_some(destination)
            }
            Self::UniformRandom | Self::Hotspot { .. } | Self::Bursty { .. } => None,
        }
    }
}

/// The integer `k` with `k² == n`, if `n` is a perfect square.
fn exact_square_side(n: usize) -> Option<usize> {
    let side = (n as f64).sqrt().round() as usize;
    (side * side == n).then_some(side)
}

/// Generates packet arrivals for every ingress port.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    ports: usize,
    offered_load: f64,
    packet_words: usize,
    pattern: TrafficPattern,
    rng: ChaCha8Rng,
    next_packet_id: u64,
    generated: u64,
    /// Per-port ON/OFF state, used only by [`TrafficPattern::Bursty`]
    /// (`true` = ON).  All ports start ON.
    burst_on: Vec<bool>,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `offered_load` is outside `(0.0, 1.0]`, `ports < 2`, or
    /// `packet_words == 0`.
    #[must_use]
    pub fn new(
        ports: usize,
        offered_load: f64,
        packet_words: usize,
        pattern: TrafficPattern,
        seed: u64,
    ) -> Self {
        assert!(ports >= 2, "traffic needs at least two ports");
        assert!(
            offered_load > 0.0 && offered_load <= 1.0,
            "offered load must be in (0, 1], got {offered_load}"
        );
        assert!(packet_words > 0, "packets need at least one word");
        if let TrafficPattern::Bursty {
            on_load,
            off_load,
            mean_burst,
        } = pattern
        {
            assert!(
                on_load > 0.0 && on_load <= 1.0,
                "bursty on-load must be in (0, 1], got {on_load}"
            );
            assert!(
                (0.0..=1.0).contains(&off_load),
                "bursty off-load must be in [0, 1], got {off_load}"
            );
            assert!(
                mean_burst >= 1.0,
                "bursty mean burst must be at least one cycle, got {mean_burst}"
            );
        }
        Self {
            ports,
            offered_load,
            packet_words,
            pattern,
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_packet_id: 0,
            generated: 0,
            burst_on: vec![true; ports],
        }
    }

    /// Offered load per ingress port, as a fraction of line rate.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// Number of packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Produces the packets arriving at `port` during `cycle` (zero or one).
    pub fn arrivals(&mut self, port: usize, cycle: u64) -> Option<Packet> {
        let load = self.effective_load(port);
        let start_probability = load / self.packet_words as f64;
        if self.rng.gen::<f64>() >= start_probability {
            return None;
        }
        let destination = self.pick_destination(port);
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        self.generated += 1;
        Some(Packet::random(
            &mut self.rng,
            id,
            port,
            destination,
            self.packet_words,
            cycle,
        ))
    }

    /// The offered load in effect for `port` this cycle.  For
    /// [`TrafficPattern::Bursty`] this also advances the port's two-state
    /// Markov chain (one transition draw per call, i.e. per cycle).
    fn effective_load(&mut self, port: usize) -> f64 {
        let TrafficPattern::Bursty {
            on_load,
            off_load,
            mean_burst,
        } = self.pattern
        else {
            return self.offered_load;
        };
        // Geometric dwell time with mean `mean_burst`: leave the current
        // state with probability 1/mean_burst each cycle.
        if self.rng.gen::<f64>() < 1.0 / mean_burst {
            self.burst_on[port] = !self.burst_on[port];
        }
        if self.burst_on[port] {
            on_load
        } else {
            off_load
        }
    }

    fn uniform_excluding_source(&mut self, source: usize) -> usize {
        loop {
            let candidate = self.rng.gen_range(0..self.ports);
            if candidate != source {
                return candidate;
            }
        }
    }

    fn pick_destination(&mut self, source: usize) -> usize {
        if let Some(destination) = self.pattern.fixed_destination(source, self.ports) {
            return destination;
        }
        match self.pattern {
            TrafficPattern::Hotspot { port, fraction } => {
                if self.rng.gen::<f64>() < fraction && port != source {
                    port
                } else {
                    self.uniform_excluding_source(source)
                }
            }
            _ => self.uniform_excluding_source(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_controls_the_arrival_rate() {
        let cycles = 20_000_u64;
        for &load in &[0.1, 0.3, 0.5] {
            let mut generator =
                TrafficGenerator::new(8, load, 16, TrafficPattern::UniformRandom, 1);
            let mut words = 0_u64;
            for cycle in 0..cycles {
                for port in 0..8 {
                    if let Some(packet) = generator.arrivals(port, cycle) {
                        words += packet.words() as u64;
                    }
                }
            }
            let measured = words as f64 / (cycles * 8) as f64;
            assert!(
                (measured - load).abs() < 0.05,
                "offered {load}, measured {measured}"
            );
        }
    }

    #[test]
    fn uniform_destinations_exclude_the_source_and_cover_all_ports() {
        let mut generator = TrafficGenerator::new(4, 1.0, 1, TrafficPattern::UniformRandom, 2);
        let mut seen = std::collections::HashSet::new();
        for cycle in 0..2000 {
            if let Some(packet) = generator.arrivals(0, cycle) {
                assert_ne!(packet.destination, 0);
                seen.insert(packet.destination);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn hotspot_biases_destinations() {
        let mut generator = TrafficGenerator::new(
            8,
            1.0,
            1,
            TrafficPattern::Hotspot {
                port: 5,
                fraction: 0.7,
            },
            3,
        );
        let mut hot = 0;
        let mut total = 0;
        for cycle in 0..5000 {
            if let Some(packet) = generator.arrivals(0, cycle) {
                total += 1;
                if packet.destination == 5 {
                    hot += 1;
                }
            }
        }
        let fraction = f64::from(hot) / f64::from(total);
        assert!(fraction > 0.6, "hot-spot fraction {fraction}");
    }

    #[test]
    fn permutation_is_deterministic_per_source() {
        let mut generator =
            TrafficGenerator::new(8, 1.0, 1, TrafficPattern::Permutation { shift: 3 }, 4);
        for cycle in 0..100 {
            if let Some(packet) = generator.arrivals(2, cycle) {
                assert_eq!(packet.destination, 5);
            }
        }
    }

    #[test]
    fn generation_is_reproducible_per_seed() {
        let run = |seed| {
            let mut generator =
                TrafficGenerator::new(4, 0.5, 4, TrafficPattern::UniformRandom, seed);
            let mut ids = Vec::new();
            for cycle in 0..200 {
                for port in 0..4 {
                    if let Some(p) = generator.arrivals(port, cycle) {
                        ids.push((cycle, port, p.destination));
                    }
                }
            }
            ids
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_is_rejected() {
        let _ = TrafficGenerator::new(4, 0.0, 16, TrafficPattern::UniformRandom, 0);
    }

    #[test]
    fn tornado_sends_to_the_half_span_destination() {
        let mut generator = TrafficGenerator::new(8, 1.0, 1, TrafficPattern::Tornado, 5);
        for source in 0..8 {
            for cycle in 0..50 {
                if let Some(packet) = generator.arrivals(source, cycle) {
                    assert_eq!(packet.destination, (source + 4) % 8);
                    assert_ne!(packet.destination, source);
                }
            }
        }
    }

    #[test]
    fn bit_complement_inverts_the_port_index() {
        let mut generator = TrafficGenerator::new(8, 1.0, 1, TrafficPattern::BitComplement, 6);
        for source in 0..8 {
            for cycle in 0..50 {
                if let Some(packet) = generator.arrivals(source, cycle) {
                    assert_eq!(packet.destination, 7 - source);
                    assert_ne!(packet.destination, source);
                }
            }
        }
    }

    #[test]
    fn bit_complement_is_a_permutation_without_destination_contention() {
        // Every source maps to a distinct destination, so the pattern is
        // contention-free at the arbiter (like Permutation and Tornado).
        let destinations: Vec<usize> = (0..8).map(|s| 7 - s).collect();
        let mut sorted = destinations.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bursty_traffic_modulates_the_arrival_rate() {
        // ON at 0.8, OFF at 0.0, long dwell times: the long-run average load
        // must sit between the two state loads, well below the ON rate and
        // well above the OFF rate.
        let pattern = TrafficPattern::Bursty {
            on_load: 0.8,
            off_load: 0.0,
            mean_burst: 500.0,
        };
        let mut generator = TrafficGenerator::new(8, 0.5, 16, pattern, 7);
        let cycles = 40_000_u64;
        let mut words = 0_u64;
        for cycle in 0..cycles {
            for port in 0..8 {
                if let Some(packet) = generator.arrivals(port, cycle) {
                    words += packet.words() as u64;
                }
            }
        }
        let measured = words as f64 / (cycles * 8) as f64;
        assert!(
            measured > 0.25 && measured < 0.55,
            "long-run bursty load {measured} should be near (0.8 + 0.0) / 2"
        );
    }

    #[test]
    fn bursty_destinations_are_uniform_excluding_source() {
        let pattern = TrafficPattern::Bursty {
            on_load: 1.0,
            off_load: 0.5,
            mean_burst: 50.0,
        };
        let mut generator = TrafficGenerator::new(4, 0.5, 1, pattern, 8);
        let mut seen = std::collections::HashSet::new();
        for cycle in 0..2000 {
            if let Some(packet) = generator.arrivals(0, cycle) {
                assert_ne!(packet.destination, 0);
                seen.insert(packet.destination);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "mean burst")]
    fn bursty_sub_cycle_dwell_is_rejected() {
        let _ = TrafficGenerator::new(
            4,
            0.5,
            16,
            TrafficPattern::Bursty {
                on_load: 0.8,
                off_load: 0.1,
                mean_burst: 0.5,
            },
            0,
        );
    }
}
