//! The deterministic global tick loop over a grid of [`RouterNode`]s.
//!
//! Every tick, in fixed order:
//!
//! 1. each node's local traffic source injects at most one new packet
//!    (per-node RNG streams derived from the run seed, node 0 keeping the
//!    base stream so a 1×1 network replays the single-router simulation
//!    bit for bit);
//! 2. packets whose link traversal finished are delivered into the
//!    receiving router's input queue on the reverse-direction port, with
//!    their next output port chosen by the routing policy;
//! 3. every router runs one fabric cycle (arbitrate → resolve contention →
//!    transmit → complete) through the shared [`RouterNode`] stepping core;
//!    completed packets either eject at their destination's local port or
//!    move to the egress staging queue of their outgoing link;
//! 4. each link launches at most one staged packet, but only while it holds
//!    credits: the packets in flight on the link plus the receiver's input
//!    queue must stay below the configured link depth — otherwise the
//!    launch stalls and is retried next tick.
//!
//! Energy: every router charges its own switch/buffer/wire energy through
//! its `FabricEnergyModel` (one spec per distinct node configuration,
//! `Arc`-shared across the grid); link traversals additionally charge
//! `polarity flips × grid bit energy × link_grids` per word against the
//! per-link last-word state, exactly like the intra-fabric wire model.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use fabric_power_fabric::energy_model::FabricEnergyModel;
use fabric_power_fabric::provider::{ModelProvider, ModelSpec};
use fabric_power_obs::metrics::{self, names};
use fabric_power_router::config::{SimulationConfig, SimulationReport};
use fabric_power_router::metrics::LatencyHistogram;
use fabric_power_router::node::RouterNode;
use fabric_power_router::packet::Packet;
use fabric_power_router::sim::{RouterSimulator, SimulationError};
use fabric_power_router::traffic::TrafficGenerator;
use fabric_power_router::EnergyAccount;
use fabric_power_tech::units::Energy;
use fabric_power_tech::wire::polarity_flips;

use crate::config::{NetworkConfig, NetworkReport, NetworkStats};
use crate::topology::{Direction, NetworkShape, RoutingPolicy, LOCAL_PORT};

/// Errors raised when constructing a [`NetworkSimulator`].
#[derive(Debug)]
pub enum NetworkError {
    /// The underlying router core could not be built.
    Simulation(SimulationError),
    /// The grid has zero routers.
    EmptyNetwork,
    /// The node radix (fabric port count) is too small for the grid's port
    /// map.
    RadixTooSmall {
        /// Configured fabric ports per node.
        radix: usize,
        /// Minimum ports the shape needs (local port + used directions).
        required: usize,
    },
    /// The link traversal latency must be at least one cycle.
    ZeroLinkLatency,
    /// The link credit depth must be at least one packet.
    ZeroLinkDepth,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Simulation(e) => write!(f, "router core: {e}"),
            Self::EmptyNetwork => write!(f, "network has zero routers"),
            Self::RadixTooSmall { radix, required } => write!(
                f,
                "node radix {radix} is too small for the grid's port map (needs ≥ {required})"
            ),
            Self::ZeroLinkLatency => write!(f, "link latency must be at least one cycle"),
            Self::ZeroLinkDepth => write!(f, "link credit depth must be at least one packet"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimulationError> for NetworkError {
    fn from(e: SimulationError) -> Self {
        Self::Simulation(e)
    }
}

/// The RNG seed of one node's traffic source.  Node 0 keeps the base seed —
/// so a 1×1 network replays the single-router RNG stream exactly — and the
/// rest get SplitMix64-scrambled per-node streams, the same `seed ⊕ index`
/// idiom the sweep engine uses for per-cell seeds.
#[must_use]
pub fn node_seed(base: u64, node: usize) -> u64 {
    if node == 0 {
        return base;
    }
    let mut z = base ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Global bookkeeping for one packet travelling the network.
#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    destination_node: usize,
    injected_cycle: u64,
    hops: u64,
}

/// One directed inter-router link.
#[derive(Debug)]
struct Link {
    to_node: usize,
    /// Input port at the receiver (the reverse direction's fabric port).
    to_port: usize,
    /// Packets on the wire, with their delivery cycles (FIFO).
    in_flight: VecDeque<(u64, Packet)>,
    /// Last word transmitted, for polarity-flip wire energy.
    last_word: u64,
}

/// A mesh/torus of routers driven by one deterministic tick loop.
#[derive(Debug)]
struct MeshNetwork {
    config: SimulationConfig,
    net: NetworkConfig,
    shape: NetworkShape,
    nodes: Vec<RouterNode>,
    traffic: Vec<TrafficGenerator>,
    /// Per node, per direction index; `None` where the mesh edge has no
    /// link.
    links: Vec<[Option<Link>; 4]>,
    /// Per node, per direction index: completed packets waiting for link
    /// credits.
    staging: Vec<[VecDeque<Packet>; 4]>,
    meta: HashMap<u64, PacketMeta>,
    next_packet_id: u64,

    cycle: u64,
    measuring: bool,
    measured_cycles: u64,
    packets_delivered: u64,
    words_ejected: u64,
    latency: LatencyHistogram,
    hops: LatencyHistogram,
    /// Router traversals (hops + 1) summed over delivered packets.
    traversals: u64,
    link_energy: Energy,
    link_words: u64,
    credit_stalls: u64,
}

impl MeshNetwork {
    fn new(
        config: SimulationConfig,
        net: NetworkConfig,
        model: Arc<FabricEnergyModel>,
    ) -> Result<Self, NetworkError> {
        let shape = net.shape();
        let node_count = shape.nodes();
        if node_count == 0 {
            return Err(NetworkError::EmptyNetwork);
        }
        if config.ports <= shape.max_used_port() {
            return Err(NetworkError::RadixTooSmall {
                radix: config.ports,
                required: shape.max_used_port() + 1,
            });
        }
        if net.link_latency == 0 {
            return Err(NetworkError::ZeroLinkLatency);
        }
        if net.link_depth == 0 {
            return Err(NetworkError::ZeroLinkDepth);
        }
        let mut nodes = Vec::with_capacity(node_count);
        let mut traffic = Vec::with_capacity(node_count);
        let mut links = Vec::with_capacity(node_count);
        let mut staging = Vec::with_capacity(node_count);
        for node in 0..node_count {
            nodes.push(RouterNode::new(
                config.architecture,
                config.ports,
                config.node_buffer_bits,
                Arc::clone(&model),
            )?);
            // The traffic pattern runs over *node* indices: each node's
            // source draws destinations among the other nodes, one local
            // injection port per node per cycle.
            traffic.push(TrafficGenerator::new(
                node_count,
                config.offered_load,
                config.packet_words,
                config.pattern,
                node_seed(config.seed, node),
            ));
            links.push(Direction::ALL.map(|direction| {
                shape.neighbor(node, direction).map(|to_node| Link {
                    to_node,
                    to_port: direction.reverse().port(),
                    in_flight: VecDeque::new(),
                    last_word: 0,
                })
            }));
            staging.push(std::array::from_fn(|_| VecDeque::new()));
        }
        Ok(Self {
            config,
            net,
            shape,
            nodes,
            traffic,
            links,
            staging,
            meta: HashMap::new(),
            next_packet_id: 0,
            cycle: 0,
            measuring: false,
            measured_cycles: 0,
            packets_delivered: 0,
            words_ejected: 0,
            latency: LatencyHistogram::new(),
            hops: LatencyHistogram::new(),
            traversals: 0,
            link_energy: Energy::ZERO,
            link_words: 0,
            credit_stalls: 0,
        })
    }

    fn begin_measurement(&mut self) {
        self.measuring = true;
        self.measured_cycles = 0;
        self.packets_delivered = 0;
        self.words_ejected = 0;
        self.latency = LatencyHistogram::new();
        self.hops = LatencyHistogram::new();
        self.traversals = 0;
        self.link_energy = Energy::ZERO;
        self.link_words = 0;
        self.credit_stalls = 0;
        for node in &mut self.nodes {
            node.begin_measurement();
        }
    }

    /// Congestion of one egress: staged packets plus packets on the wire.
    /// Used by minimal-adaptive routing as its (deterministic) load signal.
    fn egress_occupancy(&self, node: usize, direction: Direction) -> usize {
        let staged = self.staging[node][direction.index()].len();
        let flying = self.links[node][direction.index()]
            .as_ref()
            .map_or(0, |link| link.in_flight.len());
        staged + flying
    }

    /// The output port a packet at `node` heading for `destination` takes
    /// this tick.
    fn route(&self, node: usize, destination: usize) -> usize {
        let [x_dir, y_dir] = self.shape.productive_directions(node, destination);
        match (x_dir, y_dir) {
            (None, None) => LOCAL_PORT,
            (Some(direction), None) | (None, Some(direction)) => direction.port(),
            (Some(x), Some(y)) => match self.net.routing {
                RoutingPolicy::DimensionOrder => x.port(),
                RoutingPolicy::MinimalAdaptive => {
                    // Least-loaded productive egress; ties go to X, keeping
                    // the decision deterministic.
                    if self.egress_occupancy(node, y) < self.egress_occupancy(node, x) {
                        y.port()
                    } else {
                        x.port()
                    }
                }
            },
        }
    }

    fn step(&mut self) {
        if self.cycle == self.config.warmup_cycles {
            self.begin_measurement();
        }
        if self.measuring {
            self.measured_cycles += 1;
        }

        self.inject_traffic();
        self.deliver_link_arrivals();
        self.step_nodes();
        self.launch_links();

        self.cycle += 1;
    }

    /// Phase 1: every node's local source offers at most one new packet.
    fn inject_traffic(&mut self) {
        for node in 0..self.nodes.len() {
            let Some(mut packet) = self.traffic[node].arrivals(node, self.cycle) else {
                continue;
            };
            // The generator addressed a *node*; re-key the packet onto this
            // router's port map and give it a globally unique id.
            let destination_node = packet.destination;
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            self.meta.insert(
                id,
                PacketMeta {
                    destination_node,
                    injected_cycle: self.cycle,
                    hops: 0,
                },
            );
            packet.id = id;
            packet.source = LOCAL_PORT;
            packet.destination = self.route(node, destination_node);
            self.nodes[node].inject(LOCAL_PORT, packet);
        }
    }

    /// Phase 2: packets that finished their link traversal enter the
    /// receiving router's input queue, routed onward.
    fn deliver_link_arrivals(&mut self) {
        for node in 0..self.nodes.len() {
            for direction in Direction::ALL {
                while let Some(link) = self.links[node][direction.index()].as_mut() {
                    let due = link
                        .in_flight
                        .front()
                        .is_some_and(|&(arrival, _)| arrival <= self.cycle);
                    if !due {
                        break;
                    }
                    let (_, mut packet) = link.in_flight.pop_front().expect("front exists");
                    let (to_node, to_port) = (link.to_node, link.to_port);
                    let destination_node = self.meta[&packet.id].destination_node;
                    packet.source = to_port;
                    packet.destination = self.route(to_node, destination_node);
                    packet.arrival_cycle = self.cycle;
                    self.nodes[to_node].inject(to_port, packet);
                }
            }
        }
    }

    /// Phase 3: one fabric cycle per router; completions eject locally or
    /// move to egress staging.
    fn step_nodes(&mut self) {
        for node in 0..self.nodes.len() {
            for packet in self.nodes[node].step(self.cycle) {
                if packet.destination == LOCAL_PORT {
                    let meta = self
                        .meta
                        .remove(&packet.id)
                        .expect("every travelling packet has metadata");
                    debug_assert_eq!(meta.destination_node, node);
                    if self.measuring {
                        self.packets_delivered += 1;
                        self.words_ejected += packet.words() as u64;
                        self.latency.record(self.cycle + 1 - meta.injected_cycle);
                        self.hops.record(meta.hops);
                        self.traversals += meta.hops + 1;
                    }
                } else {
                    let direction = Direction::ALL[packet.destination - 1];
                    self.staging[node][direction.index()].push_back(packet);
                }
            }
        }
    }

    /// Phase 4: every link launches at most one staged packet, spending a
    /// credit; exhausted credits stall the launch until the receiver
    /// drains.
    fn launch_links(&mut self) {
        for node in 0..self.nodes.len() {
            for direction in Direction::ALL {
                if self.staging[node][direction.index()].is_empty() {
                    continue;
                }
                let Some(link) = self.links[node][direction.index()].as_ref() else {
                    unreachable!("staged packets always have a link");
                };
                let credits_used =
                    link.in_flight.len() + self.nodes[link.to_node].input_queue_len(link.to_port);
                if credits_used >= self.net.link_depth {
                    if self.measuring {
                        self.credit_stalls += 1;
                    }
                    continue;
                }
                let packet = self.staging[node][direction.index()]
                    .pop_front()
                    .expect("checked non-empty");
                // Wire energy for the serialized word stream on the link.
                let grid_energy = self.link_word_energy(&packet, node, direction);
                if self.measuring {
                    self.link_energy += grid_energy;
                    self.link_words += packet.words() as u64;
                }
                self.meta
                    .get_mut(&packet.id)
                    .expect("every travelling packet has metadata")
                    .hops += 1;
                let link = self.links[node][direction.index()]
                    .as_mut()
                    .expect("checked above");
                link.in_flight
                    .push_back((self.cycle + self.net.link_latency, packet));
            }
        }
    }

    /// Polarity-flip wire energy of one packet crossing one link, updating
    /// the link's last-word state (state advances even during warmup, like
    /// the intra-fabric links).
    fn link_word_energy(&mut self, packet: &Packet, node: usize, direction: Direction) -> Energy {
        // All nodes share one model, so any node's accessor works.
        let grid_bit_energy = self.nodes[0].model().grid_bit_energy();
        let link_grids = f64::from(self.net.link_grids);
        let link = self.links[node][direction.index()]
            .as_mut()
            .expect("caller checked the link exists");
        let mut energy = Energy::ZERO;
        for &word in &packet.payload {
            let flips = f64::from(polarity_flips(link.last_word, word));
            energy += grid_bit_energy * (flips * link_grids);
            link.last_word = word;
        }
        energy
    }

    fn report(&self) -> NetworkReport {
        let mut energy = EnergyAccount::new();
        let mut buffered_words = 0;
        let mut buffer_overflow_cycles = 0;
        for node in &self.nodes {
            energy.merge(&node.energy());
            buffered_words += node.buffered_words();
            buffer_overflow_cycles += node.buffer_overflow_cycles();
        }
        energy.wires += self.link_energy;
        let [latency_p50, latency_p95, latency_p99] = self.latency.summary();
        let simulation = SimulationReport {
            architecture: self.config.architecture,
            ports: self.config.ports,
            offered_load: self.config.offered_load,
            measured_cycles: self.measured_cycles,
            words_delivered: self.words_ejected,
            packets_delivered: self.packets_delivered,
            buffered_words,
            buffer_overflow_cycles,
            average_latency_cycles: self.latency.mean(),
            latency_p50,
            latency_p95,
            latency_p99,
            latency_histogram: self.latency.to_sparse(),
            energy,
            cycle_time: self.config.cycle_time(),
        };
        let [hops_p50, hops_p95, hops_p99] = self.hops.summary();
        let per_hop_energy = if self.traversals == 0 {
            Energy::ZERO
        } else {
            energy.total() / self.traversals as f64
        };
        let saturation_throughput = if self.measured_cycles == 0 {
            0.0
        } else {
            self.words_ejected as f64 / (self.measured_cycles * self.nodes.len() as u64) as f64
        };
        let network = NetworkStats {
            width: self.net.width,
            height: self.net.height,
            torus: self.net.torus,
            routing: self.net.routing,
            average_hops: self.hops.mean(),
            hops_p50,
            hops_p95,
            hops_p99,
            link_energy: self.link_energy,
            per_hop_energy,
            saturation_throughput,
            link_words: self.link_words,
            credit_stalls: self.credit_stalls,
        };
        NetworkReport {
            simulation,
            network: Some(network),
        }
    }
}

/// A network-of-routers simulator.
///
/// A 1×1 network *is* a single router: it delegates to [`RouterSimulator`]
/// wholesale, so its [`NetworkReport::simulation`] is bit-for-bit the
/// report the single-router path produces (and
/// [`NetworkReport::network`] is `None`).  Larger grids run the
/// deterministic tick loop described in the module docs.
///
/// # Examples
///
/// ```
/// use fabric_power_fabric::{Architecture, FabricEnergyModel};
/// use fabric_power_noc::{NetworkConfig, NetworkSimulator};
/// use fabric_power_router::config::SimulationConfig;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SimulationConfig::quick(Architecture::Crossbar, 8, 0.2);
/// let network = NetworkConfig::mesh(2, 2);
/// let model = Arc::new(FabricEnergyModel::paper(8)?);
/// let report = NetworkSimulator::with_shared_model(config, network, model)?.run();
/// assert!(report.network.unwrap().average_hops >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkSimulator {
    inner: Inner,
    warmup_cycles: u64,
    measure_cycles: u64,
}

#[derive(Debug)]
enum Inner {
    Single(Box<RouterSimulator>),
    Multi(Box<MeshNetwork>),
}

impl NetworkSimulator {
    /// Creates a network simulator from a node configuration, a network
    /// configuration, and a shared per-node energy model.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the grid is empty, the node radix cannot
    /// host the port map, the link knobs are degenerate, or the router core
    /// rejects the configuration.
    pub fn with_shared_model(
        config: SimulationConfig,
        network: NetworkConfig,
        model: Arc<FabricEnergyModel>,
    ) -> Result<Self, NetworkError> {
        let (warmup_cycles, measure_cycles) = (config.warmup_cycles, config.measure_cycles);
        let inner = if network.nodes() == 0 {
            return Err(NetworkError::EmptyNetwork);
        } else if network.nodes() == 1 {
            Inner::Single(Box::new(RouterSimulator::with_shared_model(config, model)?))
        } else {
            Inner::Multi(Box::new(MeshNetwork::new(config, network, model)?))
        };
        Ok(Self {
            inner,
            warmup_cycles,
            measure_cycles,
        })
    }

    /// Creates a network simulator whose node energy model is acquired
    /// through a [`ModelProvider`] (one spec per distinct node
    /// configuration; every router in the grid shares the resulting
    /// [`Arc`]).
    ///
    /// # Errors
    ///
    /// Propagates model-acquisition failures and all
    /// [`NetworkSimulator::with_shared_model`] errors.
    pub fn from_provider(
        config: SimulationConfig,
        network: NetworkConfig,
        provider: &ModelProvider,
        spec: &ModelSpec,
    ) -> Result<Self, NetworkError> {
        let model = provider.get(spec).map_err(SimulationError::Model)?;
        Self::with_shared_model(config, network, model)
    }

    /// Simulates one global tick.
    pub fn step(&mut self) {
        match &mut self.inner {
            Inner::Single(sim) => sim.step(),
            Inner::Multi(mesh) => mesh.step(),
        }
    }

    /// Runs the configured warmup and measurement windows and returns the
    /// report, publishing the run's link/credit counters to the metrics
    /// registry.
    #[must_use]
    pub fn run(mut self) -> NetworkReport {
        let total = self.warmup_cycles + self.measure_cycles;
        let ticks = metrics::histogram(names::NOC_TICK_NANOS);
        for _ in 0..total {
            let started = std::time::Instant::now();
            self.step();
            ticks.observe(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        let report = self.report();
        if let Some(stats) = &report.network {
            metrics::counter(names::NOC_FLITS_ROUTED).add(stats.link_words);
            metrics::counter(names::NOC_CREDIT_STALLS).add(stats.credit_stalls);
        }
        report
    }

    /// Builds the report for everything measured so far.
    #[must_use]
    pub fn report(&self) -> NetworkReport {
        match &self.inner {
            Inner::Single(sim) => NetworkReport {
                simulation: sim.report(),
                network: None,
            },
            Inner::Multi(mesh) => mesh.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_power_fabric::Architecture;
    use fabric_power_router::traffic::TrafficPattern;

    fn model(ports: usize) -> Arc<FabricEnergyModel> {
        Arc::new(FabricEnergyModel::paper(ports).expect("paper model"))
    }

    fn quick_config(load: f64) -> SimulationConfig {
        SimulationConfig::quick(Architecture::Crossbar, 8, load)
    }

    #[test]
    fn one_by_one_network_reports_exactly_like_a_single_router() {
        let config = SimulationConfig::quick(Architecture::Banyan, 8, 0.3);
        let single = RouterSimulator::with_shared_model(config.clone(), model(8))
            .unwrap()
            .run();
        let network =
            NetworkSimulator::with_shared_model(config, NetworkConfig::mesh(1, 1), model(8))
                .unwrap()
                .run();
        assert_eq!(network.network, None);
        assert_eq!(network.simulation, single);
    }

    #[test]
    fn mesh_delivers_packets_with_multi_hop_latency() {
        let report = NetworkSimulator::with_shared_model(
            quick_config(0.2),
            NetworkConfig::mesh(2, 2),
            model(8),
        )
        .unwrap()
        .run();
        let stats = report.network.expect("multi-node stats");
        assert!(report.simulation.packets_delivered > 0);
        assert!(stats.average_hops >= 1.0, "hops {}", stats.average_hops);
        assert!(stats.link_energy.as_joules() > 0.0);
        assert!(stats.per_hop_energy.as_joules() > 0.0);
        assert!(stats.link_words > 0);
        assert!(stats.saturation_throughput > 0.0);
        // Link energy is folded into the wire component of the account.
        assert!(report.simulation.energy.wires >= stats.link_energy);
        // End-to-end latency includes at least one link traversal beyond the
        // packet's own transfer time.
        assert!(report.simulation.average_latency_cycles > 16.0);
    }

    #[test]
    fn network_runs_are_reproducible_per_seed() {
        let run = |seed: u64| {
            NetworkSimulator::with_shared_model(
                quick_config(0.25).with_seed(seed),
                NetworkConfig::mesh(3, 3),
                model(8),
            )
            .unwrap()
            .run()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7).simulation.words_delivered,
            run(8).simulation.words_delivered
        );
    }

    #[test]
    fn torus_wraparound_shortens_ring_distances() {
        // Tornado traffic on a 4-node ring: the mesh forces multi-hop paths,
        // the torus halves them via wraparound.
        let run = |net: NetworkConfig| {
            NetworkSimulator::with_shared_model(
                SimulationConfig::quick(Architecture::Crossbar, 8, 0.2)
                    .with_pattern(TrafficPattern::Tornado),
                net,
                model(8),
            )
            .unwrap()
            .run()
            .network
            .unwrap()
            .average_hops
        };
        let mesh_hops = run(NetworkConfig::mesh(4, 1));
        let torus_hops = run(NetworkConfig::torus(4, 1));
        assert_eq!(mesh_hops, 2.0, "tornado on a 4-line is always 2 hops");
        assert_eq!(torus_hops, 2.0, "half-way ties route positively");
        let mesh_far = run(NetworkConfig::mesh(5, 1));
        let torus_far = run(NetworkConfig::torus(5, 1));
        assert!(torus_far < mesh_far, "mesh {mesh_far} vs torus {torus_far}");
    }

    #[test]
    fn minimal_adaptive_still_routes_minimally() {
        let run = |routing: RoutingPolicy| {
            NetworkSimulator::with_shared_model(
                SimulationConfig::quick(Architecture::Crossbar, 8, 0.3)
                    .with_pattern(TrafficPattern::Transpose),
                NetworkConfig::mesh(3, 3).with_routing(routing),
                model(8),
            )
            .unwrap()
            .run()
        };
        let dor = run(RoutingPolicy::DimensionOrder);
        let adaptive = run(RoutingPolicy::MinimalAdaptive);
        // Both policies take minimal paths: every delivered packet's hop
        // count is bounded by the 3×3 mesh diameter (4).  The averages can
        // differ slightly because congestion shifts which packets complete
        // inside the measurement window.
        for report in [&dor, &adaptive] {
            let stats = report.network.as_ref().unwrap();
            assert!(report.simulation.packets_delivered > 0);
            assert!(stats.average_hops >= 1.0);
            assert!(
                stats.hops_p99 <= 4.0,
                "non-minimal path: {}",
                stats.hops_p99
            );
        }
    }

    #[test]
    fn shallow_links_stall_on_credits() {
        let report = NetworkSimulator::with_shared_model(
            SimulationConfig::quick(Architecture::Crossbar, 8, 0.8),
            NetworkConfig::mesh(2, 2).with_link_depth(1),
            model(8),
        )
        .unwrap()
        .run();
        assert!(report.network.unwrap().credit_stalls > 0);
    }

    #[test]
    fn hotspot_node_attracts_network_traffic() {
        let report = NetworkSimulator::with_shared_model(
            SimulationConfig::quick(Architecture::Crossbar, 8, 0.3).with_pattern(
                TrafficPattern::Hotspot {
                    port: 0,
                    fraction: 0.8,
                },
            ),
            NetworkConfig::mesh(2, 2),
            model(8),
        )
        .unwrap()
        .run();
        assert!(report.simulation.packets_delivered > 0);
    }

    #[test]
    fn too_small_a_radix_is_rejected() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 4, 0.2);
        let result =
            NetworkSimulator::with_shared_model(config, NetworkConfig::mesh(2, 2), model(4));
        assert!(matches!(
            result,
            Err(NetworkError::RadixTooSmall {
                radix: 4,
                required: 5
            })
        ));
    }

    #[test]
    fn single_row_network_fits_radix_four_nodes() {
        let config = SimulationConfig::quick(Architecture::Crossbar, 4, 0.2);
        let report =
            NetworkSimulator::with_shared_model(config, NetworkConfig::mesh(4, 1), model(4))
                .unwrap()
                .run();
        assert!(report.simulation.packets_delivered > 0);
    }

    #[test]
    fn degenerate_link_knobs_are_rejected() {
        let mut net = NetworkConfig::mesh(2, 2);
        net.link_latency = 0;
        assert!(matches!(
            NetworkSimulator::with_shared_model(quick_config(0.2), net, model(8)),
            Err(NetworkError::ZeroLinkLatency)
        ));
        let net = NetworkConfig::mesh(2, 2).with_link_depth(0);
        assert!(matches!(
            NetworkSimulator::with_shared_model(quick_config(0.2), net, model(8)),
            Err(NetworkError::ZeroLinkDepth)
        ));
    }

    #[test]
    fn node_seed_keeps_the_base_stream_for_node_zero() {
        assert_eq!(node_seed(0xDAC_2002, 0), 0xDAC_2002);
        assert_ne!(node_seed(0xDAC_2002, 1), 0xDAC_2002);
        assert_ne!(node_seed(0xDAC_2002, 1), node_seed(0xDAC_2002, 2));
    }

    #[test]
    fn network_report_round_trips_through_json() {
        let report = NetworkSimulator::with_shared_model(
            quick_config(0.2),
            NetworkConfig::mesh(2, 2),
            model(8),
        )
        .unwrap()
        .run();
        let json = serde_json::to_string(&report).unwrap();
        let back: NetworkReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
