//! Network shapes (mesh/torus grids) and routing policies.
//!
//! Nodes are addressed `node = y * width + x` on a `width × height` grid.
//! Every router exposes the same fabric port map: port 0 is the local
//! injection/ejection port, ports 1–4 are the four grid directions in fixed
//! order (`X+`, `X−`, `Y+`, `Y−`).  The fabric port count (the node radix)
//! must be a power of two for the energy-model LUTs, so a 2-D network runs
//! on radix-8 nodes with three idle ports — idle ports charge nothing, since
//! energy is only charged per active flow.

use serde::{Deserialize, Serialize};

/// Fabric port reserved for local packet injection and ejection.
pub const LOCAL_PORT: usize = 0;

/// One of the four grid directions a packet can leave a router on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Toward larger `x` (fabric port 1).
    XPlus,
    /// Toward smaller `x` (fabric port 2).
    XMinus,
    /// Toward larger `y` (fabric port 3).
    YPlus,
    /// Toward smaller `y` (fabric port 4).
    YMinus,
}

impl Direction {
    /// The four directions in fixed (fabric-port) order.
    pub const ALL: [Self; 4] = [Self::XPlus, Self::XMinus, Self::YPlus, Self::YMinus];

    /// The fabric port this direction occupies on every router.
    #[must_use]
    pub fn port(self) -> usize {
        match self {
            Self::XPlus => 1,
            Self::XMinus => 2,
            Self::YPlus => 3,
            Self::YMinus => 4,
        }
    }

    /// The direction a packet travelling this way *arrives from* at the
    /// receiving router (its input port there).
    #[must_use]
    pub fn reverse(self) -> Self {
        match self {
            Self::XPlus => Self::XMinus,
            Self::XMinus => Self::XPlus,
            Self::YPlus => Self::YMinus,
            Self::YMinus => Self::YPlus,
        }
    }

    /// Stable index into per-direction arrays (`port() - 1`).
    #[must_use]
    pub fn index(self) -> usize {
        self.port() - 1
    }
}

/// How packets pick their next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Deterministic dimension-order (X-then-Y) routing: deadlock-free on a
    /// mesh, fully reproducible, but blind to congestion.
    DimensionOrder,
    /// Minimal-adaptive routing: among the (at most two) productive
    /// directions, take the one whose egress is least congested right now;
    /// ties go to the X dimension.  Still minimal — every hop reduces the
    /// remaining distance.
    MinimalAdaptive,
}

impl RoutingPolicy {
    /// The kebab-case spelling used in CSV columns, reports and seed
    /// fingerprints (stable across releases, unlike discriminant values).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::DimensionOrder => "dimension-order",
            Self::MinimalAdaptive => "minimal-adaptive",
        }
    }
}

/// A `width × height` grid of routers, optionally with wraparound (torus)
/// links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkShape {
    /// Routers along the X axis.
    pub width: usize,
    /// Routers along the Y axis.
    pub height: usize,
    /// `true` for a torus (wraparound links on both axes), `false` for a
    /// mesh.
    pub torus: bool,
}

impl NetworkShape {
    /// A mesh (no wraparound).
    #[must_use]
    pub fn mesh(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            torus: false,
        }
    }

    /// A torus (wraparound on both axes).
    #[must_use]
    pub fn torus(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            torus: true,
        }
    }

    /// Total router count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The `(x, y)` coordinates of a node index.
    #[must_use]
    pub fn coordinates(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }

    /// The node index of `(x, y)`.
    #[must_use]
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// The neighbor of `node` in `direction`, or `None` when the mesh edge
    /// has no link that way.  On a torus every direction wraps around.
    #[must_use]
    pub fn neighbor(&self, node: usize, direction: Direction) -> Option<usize> {
        let (x, y) = self.coordinates(node);
        let (nx, ny) = match direction {
            Direction::XPlus => {
                if x + 1 < self.width {
                    (x + 1, y)
                } else if self.torus && self.width > 1 {
                    (0, y)
                } else {
                    return None;
                }
            }
            Direction::XMinus => {
                if x > 0 {
                    (x - 1, y)
                } else if self.torus && self.width > 1 {
                    (self.width - 1, y)
                } else {
                    return None;
                }
            }
            Direction::YPlus => {
                if y + 1 < self.height {
                    (x, y + 1)
                } else if self.torus && self.height > 1 {
                    (x, 0)
                } else {
                    return None;
                }
            }
            Direction::YMinus => {
                if y > 0 {
                    (x, y - 1)
                } else if self.torus && self.height > 1 {
                    (x, self.height - 1)
                } else {
                    return None;
                }
            }
        };
        Some(self.node_at(nx, ny))
    }

    /// The productive direction along one axis, or `None` when the
    /// coordinate already matches.  On a torus the shorter way around wins;
    /// ties (exactly half way on an even ring) go to the positive direction.
    fn axis_direction(
        &self,
        from: usize,
        to: usize,
        extent: usize,
        plus: Direction,
        minus: Direction,
    ) -> Option<Direction> {
        if from == to {
            return None;
        }
        if self.torus {
            let forward = (to + extent - from) % extent;
            let backward = (from + extent - to) % extent;
            Some(if forward <= backward { plus } else { minus })
        } else {
            Some(if to > from { plus } else { minus })
        }
    }

    /// The minimal productive directions from `node` toward `destination`:
    /// `[X direction, Y direction]`, each `None` when that axis is already
    /// resolved.  Both `None` means the packet is home.
    #[must_use]
    pub fn productive_directions(&self, node: usize, destination: usize) -> [Option<Direction>; 2] {
        let (x, y) = self.coordinates(node);
        let (dx, dy) = self.coordinates(destination);
        [
            self.axis_direction(x, dx, self.width, Direction::XPlus, Direction::XMinus),
            self.axis_direction(y, dy, self.height, Direction::YPlus, Direction::YMinus),
        ]
    }

    /// Minimal hop distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coordinates(a);
        let (bx, by) = self.coordinates(b);
        let axis = |from: usize, to: usize, extent: usize| {
            let direct = from.abs_diff(to);
            if self.torus {
                direct.min(extent - direct)
            } else {
                direct
            }
        };
        axis(ax, bx, self.width) + axis(ay, by, self.height)
    }

    /// The largest fabric port index the shape can use, i.e. the minimum
    /// node radix minus one.  A single-row network never touches the Y
    /// ports, so it fits a radix-4 node; anything 2-D needs radix ≥ 5
    /// (radix 8 in practice, since the energy model wants a power of two).
    #[must_use]
    pub fn max_used_port(&self) -> usize {
        let needs_y = self.height > 1;
        let needs_x = self.width > 1;
        if needs_y {
            Direction::YMinus.port()
        } else if needs_x {
            Direction::XMinus.port()
        } else {
            LOCAL_PORT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_edges_have_no_neighbors() {
        let shape = NetworkShape::mesh(3, 2);
        assert_eq!(shape.neighbor(0, Direction::XMinus), None);
        assert_eq!(shape.neighbor(0, Direction::YMinus), None);
        assert_eq!(shape.neighbor(0, Direction::XPlus), Some(1));
        assert_eq!(shape.neighbor(0, Direction::YPlus), Some(3));
        assert_eq!(shape.neighbor(5, Direction::XPlus), None);
        assert_eq!(shape.neighbor(5, Direction::YPlus), None);
    }

    #[test]
    fn torus_wraps_both_axes() {
        let shape = NetworkShape::torus(3, 2);
        assert_eq!(shape.neighbor(0, Direction::XMinus), Some(2));
        assert_eq!(shape.neighbor(2, Direction::XPlus), Some(0));
        assert_eq!(shape.neighbor(0, Direction::YMinus), Some(3));
        assert_eq!(shape.neighbor(4, Direction::YPlus), Some(1));
    }

    #[test]
    fn reverse_direction_round_trips_across_a_link() {
        let shape = NetworkShape::torus(4, 4);
        for node in 0..shape.nodes() {
            for direction in Direction::ALL {
                let neighbor = shape.neighbor(node, direction).unwrap();
                assert_eq!(shape.neighbor(neighbor, direction.reverse()), Some(node));
            }
        }
    }

    #[test]
    fn torus_distance_uses_the_shorter_wrap() {
        let mesh = NetworkShape::mesh(4, 1);
        let torus = NetworkShape::torus(4, 1);
        assert_eq!(mesh.distance(0, 3), 3);
        assert_eq!(torus.distance(0, 3), 1);
    }

    #[test]
    fn productive_directions_reach_the_destination() {
        for shape in [NetworkShape::mesh(4, 3), NetworkShape::torus(4, 3)] {
            for from in 0..shape.nodes() {
                for to in 0..shape.nodes() {
                    let mut node = from;
                    let mut steps = 0;
                    while node != to {
                        let [x, y] = shape.productive_directions(node, to);
                        let direction = x.or(y).expect("not home yet");
                        node = shape.neighbor(node, direction).expect("productive link");
                        steps += 1;
                        assert!(steps <= shape.nodes(), "routing loop {from}->{to}");
                    }
                    assert_eq!(steps, shape.distance(from, to), "{from}->{to} minimal");
                }
            }
        }
    }

    #[test]
    fn single_row_networks_fit_a_radix_four_node() {
        assert_eq!(NetworkShape::mesh(4, 1).max_used_port(), 2);
        assert_eq!(NetworkShape::mesh(2, 2).max_used_port(), 4);
        assert_eq!(NetworkShape::mesh(1, 1).max_used_port(), 0);
    }
}
