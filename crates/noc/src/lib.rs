//! # fabric-power-noc
//!
//! The tick-based network-of-routers layer: meshes and tori of the paper's
//! switch-fabric routers, joined by credit/backpressure links, with per-hop
//! energy attribution rolled up from the per-switch energy models.
//!
//! Each grid node is a full [`fabric_power_router::RouterNode`] — the same
//! per-cycle switching core the single-router simulator drives — with fabric
//! port 0 reserved for local injection/ejection and ports 1–4 wired to the
//! four grid directions.  A deterministic global tick loop injects traffic
//! from per-node seeded sources, routes packets hop by hop
//! (dimension-order or minimal-adaptive), enforces per-link credit depths,
//! and charges link-traversal wire energy against per-link polarity state.
//!
//! * [`topology`] — grid shapes (mesh/torus), directions, routing policies;
//! * [`config`] — [`NetworkConfig`] knobs and the [`NetworkReport`] /
//!   [`NetworkStats`] output schema;
//! * [`sim`] — the [`NetworkSimulator`] tick loop.
//!
//! A 1×1 network degrades to the single-router simulation *exactly*: same
//! RNG stream, same report bytes — pinned by tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod sim;
pub mod topology;

pub use config::{NetworkConfig, NetworkReport, NetworkStats};
pub use sim::{node_seed, NetworkError, NetworkSimulator};
pub use topology::{Direction, NetworkShape, RoutingPolicy, LOCAL_PORT};
