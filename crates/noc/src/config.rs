//! Network configuration and the per-run network report.

use serde::{Deserialize, Serialize};

use fabric_power_router::config::SimulationReport;
use fabric_power_tech::units::Energy;

use crate::topology::{NetworkShape, RoutingPolicy};

/// Everything that distinguishes a network run from a single-router run:
/// the grid shape, the routing policy, and the inter-router link knobs.
///
/// Per-node parameters (fabric architecture, node radix, offered load per
/// local port, packet length, seeds, cycle counts) stay in the router
/// layer's `SimulationConfig`; this struct only describes the fabric *of
/// fabrics* wrapped around those nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Routers along the X axis.
    pub width: usize,
    /// Routers along the Y axis.
    pub height: usize,
    /// `true` for a torus (wraparound links), `false` for a mesh.
    pub torus: bool,
    /// Next-hop selection policy.
    pub routing: RoutingPolicy,
    /// Credit depth of each inter-router link: the number of packets that
    /// may be in flight on the link plus waiting in the receiver's input
    /// queue before the sender stalls.
    pub link_depth: usize,
    /// Cycles a packet spends crossing one inter-router link.
    pub link_latency: u64,
    /// Electrical length of one inter-router link, in the same wire-grid
    /// units the intra-fabric segments use; link-traversal energy is
    /// `polarity flips × grid bit energy × link_grids` per word.
    pub link_grids: u32,
}

impl NetworkConfig {
    /// A mesh with dimension-order routing and the default link knobs
    /// (depth 4, single-cycle traversal, 16-grid links).
    #[must_use]
    pub fn mesh(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            torus: false,
            routing: RoutingPolicy::DimensionOrder,
            link_depth: 4,
            link_latency: 1,
            link_grids: 16,
        }
    }

    /// The same grid with wraparound links.
    #[must_use]
    pub fn torus(width: usize, height: usize) -> Self {
        Self {
            torus: true,
            ..Self::mesh(width, height)
        }
    }

    /// Switches the next-hop policy.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the link credit depth.
    #[must_use]
    pub fn with_link_depth(mut self, link_depth: usize) -> Self {
        self.link_depth = link_depth;
        self
    }

    /// The grid shape.
    #[must_use]
    pub fn shape(&self) -> NetworkShape {
        NetworkShape {
            width: self.width,
            height: self.height,
            torus: self.torus,
        }
    }

    /// Total router count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

/// Network-level aggregates measured by a multi-node run, reported next to
/// the rolled-up `SimulationReport`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Routers along the X axis.
    pub width: usize,
    /// Routers along the Y axis.
    pub height: usize,
    /// Whether the grid wrapped around.
    pub torus: bool,
    /// The routing policy the run used.
    pub routing: RoutingPolicy,
    /// Mean link traversals per delivered packet.
    pub average_hops: f64,
    /// Median link traversals per delivered packet.
    pub hops_p50: f64,
    /// 95th-percentile link traversals per delivered packet.
    pub hops_p95: f64,
    /// 99th-percentile link traversals per delivered packet.
    pub hops_p99: f64,
    /// Energy dissipated on inter-router links during the measurement
    /// window (also folded into the energy account's wire component, so the
    /// account total stays complete).
    pub link_energy: Energy,
    /// Total measured energy divided by the number of router traversals of
    /// packets delivered in the window — the per-hop attribution figure.
    pub per_hop_energy: Energy,
    /// Delivered words per cycle per node during the measurement window —
    /// tracks the offered load below saturation and flattens at the
    /// network's capacity above it.
    pub saturation_throughput: f64,
    /// Payload words forwarded over inter-router links in the window.
    pub link_words: u64,
    /// Launch attempts that stalled because a link was out of credits.
    pub credit_stalls: u64,
}

/// The result of a network run: the familiar single-router-shaped roll-up
/// plus the network aggregates (absent for a 1×1 network, which *is* a
/// single router and reports exactly as one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Aggregate report in the single-router schema: summed energy and
    /// word/packet counts, end-to-end latency percentiles.
    pub simulation: SimulationReport,
    /// Network-level aggregates; `None` for a 1×1 network.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub network: Option<NetworkStats>,
}
