//! # fabric-power-sweep
//!
//! The experiment-orchestration subsystem of the `fabric-power` workspace:
//! everything between "a grid of operating points I want evaluated" and "a
//! deterministic, structured result file".
//!
//! The paper's evaluation is a large grid — 4 architectures × {4, 8, 16, 32}
//! ports × 5 offered loads × traffic patterns — and every future scaling
//! direction (more patterns, more sizes, derived models) only makes it
//! larger.  This crate owns that problem end to end:
//!
//! * [`config`] — [`ExperimentConfig`]: the declarative description of a
//!   sweep grid (formerly `fabric_power_core::experiment`), optionally with
//!   a [`NetworkSweepConfig`] mesh axis that turns every operating point
//!   into a network-of-routers run (`noc-*` scenarios);
//! * [`cell`] — [`SweepCell`]: one flattened operating point with its own
//!   deterministic RNG seed, and [`SweepPoint`], the measured result —
//!   including mean **and p50/p95/p99** latency from the simulator's
//!   streaming latency histogram;
//! * [`plan`] — the *plan* stage: [`SweepPlan`] expands a scenario into the
//!   flat seeded cell list once and splits it into self-describing
//!   [`Shard`]s (contiguous or round-robin), serializable to JSON for
//!   multi-process fleets;
//! * [`executor`] — a self-scheduling parallel map over cells: worker
//!   threads pull the next unclaimed cell from a shared cursor, so load
//!   balances dynamically and the result order never depends on scheduling;
//! * [`engine`] — [`SweepEngine`], the *execute* stage: runs a whole plan or
//!   a single shard, acquiring one immutable
//!   [`fabric_power_fabric::FabricEnergyModel`] per fabric size through a
//!   [`fabric_power_fabric::ModelProvider`] (in-memory memo plus an optional
//!   content-addressed on-disk cache) and sharing it across threads via
//!   [`std::sync::Arc`].  Results are **bit-identical regardless of thread
//!   count**;
//! * [`merge`] — the *merge* stage: recombines partial [`ShardDocument`]s by
//!   cell index into a document byte-identical to a single-process run,
//!   refusing overlapping or missing cells — and any part whose own
//!   self-description (shard index, cell range) does not hold up;
//! * [`journal`] — the durable drain journal: every accepted shard
//!   submission is appended (checksummed, fsynced) to a file keyed by the
//!   plan's content hash, so `fabric-power serve --journal <dir> --resume`
//!   restores completed shards after a server crash and re-leases only the
//!   remainder — with a resumed merge byte-identical to an uninterrupted
//!   run;
//! * [`retry`] — [`BackoffSchedule`]: capped exponential backoff with
//!   deterministic seeded jitter, driving worker dial and reconnect loops;
//! * [`protocol`] / [`server`] / [`worker`] — the work-server fleet:
//!   `fabric-power serve` owns a plan and leases shard indices to
//!   `fabric-power worker` processes over line-delimited JSON on plain TCP,
//!   requeues shards whose worker dies or goes silent past its lease
//!   deadline, validates every submission against the plan (content hash,
//!   shard identity, cell coverage), and merges when the last shard lands;
//! * [`status`] — the read-only observability probe: [`fetch_status`] asks
//!   a serving fleet for a [`FleetStatus`] snapshot (shards, per-worker
//!   heartbeat progress, uptime) over the same protocol, and
//!   [`status::render_status`] renders it for `fabric-power status`;
//! * [`diff`] — cell-oriented comparison of two result documents
//!   (`fabric-power diff`);
//! * [`sweeps`] — [`ThroughputSweep`] / [`PortSweep`]: the Figure 9/10
//!   datasets, now thin views over the engine;
//! * [`registry`] — [`ScenarioRegistry`]: named, JSON-round-trippable
//!   workload definitions (`paper-fig9`, `hotspot-ablation`, `tornado`, …);
//! * [`emit`] — structured emitters: deterministic JSON and CSV documents;
//! * [`report`] — plain-text summaries for the `fabric-power report` CLI.
//!
//! The `fabric-power` binary in `src/bin/` is the user-facing entry point:
//!
//! ```text
//! fabric-power list-scenarios
//! fabric-power sweep --scenario paper-fig9 --threads 8 --out fig9.json
//! fabric-power plan paper-fig9 --shards 3 --out plan.json
//! fabric-power run-shard plan.json --index 0 --out part0.json
//! fabric-power merge part0.json part1.json part2.json --out fig9.json
//! fabric-power serve plan.json --listen 127.0.0.1:7351 --out fig9.json
//! fabric-power worker --connect 127.0.0.1:7351 --threads 8
//! fabric-power status --connect 127.0.0.1:7351 --watch
//! fabric-power sweep --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power cache warm --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power cache prune --model-cache ~/.cache/fabric-power --max-age-days 30
//! fabric-power diff fig9-a.json fig9-b.json
//! fabric-power report --in fig9.json
//! ```
//!
//! # Determinism
//!
//! Two sweeps of the same scenario with the same base seed produce
//! byte-identical JSON no matter how many worker threads run them.  Each
//! cell's simulation is seeded before execution starts — either with the
//! shared base seed ([`SeedStrategy::Shared`], matching the original
//! sequential implementation point for point) or with a per-cell seed mixed
//! from `(base_seed, architecture, ports, load, pattern)`
//! ([`SeedStrategy::PerCell`], decorrelating the traffic across cells) — and
//! results are written back by cell index, not completion order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cell;
pub mod config;
pub mod diff;
pub mod emit;
pub mod engine;
pub mod executor;
pub mod journal;
pub mod merge;
pub mod plan;
pub mod protocol;
pub mod registry;
pub mod report;
pub mod retry;
pub mod server;
pub mod status;
pub mod sweeps;
pub mod worker;

pub use cell::{SeedStrategy, SweepCell, SweepPoint};
pub use config::{ExperimentConfig, ExperimentError, MeshSize, ModelSource, NetworkSweepConfig};
pub use diff::{diff_documents, DocumentDiff};
pub use emit::{write_atomic, SweepDocument};
pub use engine::SweepEngine;
pub use fabric_power_fabric::provider::{ModelKind, ModelProvider, ModelSpec, ProviderStats};
pub use journal::{DrainJournal, JournalReplay};
pub use merge::{merge_documents, MergeError, ShardCellResult, ShardDocument};
pub use plan::{expand_cells, PlanError, PlanHeader, Shard, ShardStrategy, SweepPlan};
pub use protocol::{FleetStatus, WorkerStatus};
pub use registry::{Scenario, ScenarioRegistry};
pub use retry::BackoffSchedule;
pub use server::{JournalOptions, ServeError, ServeHandle, ServeOptions, ServeOutcome, WorkServer};
pub use status::{fetch_status, StatusProbe};
pub use sweeps::{PortSweep, ThroughputSweep};
pub use worker::{run_worker, WorkerError, WorkerOptions, WorkerReport};
