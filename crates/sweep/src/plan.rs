//! Sweep plans: the *plan* stage of the plan → execute → merge pipeline.
//!
//! A [`SweepPlan`] expands a scenario's grid into its flat, seeded
//! [`SweepCell`] list exactly once and splits it into self-describing
//! [`Shard`]s.  Each shard carries complete cells (coordinates *and* derived
//! seeds), so a worker process given nothing but the serialized plan and a
//! shard index reproduces its slice of the grid bit for bit — no coordination
//! with other workers, no shared state beyond an optional model cache.
//!
//! ```text
//! fabric-power plan paper-fig9 --shards 3 --out plan.json   # plan
//! fabric-power run-shard plan.json --index 0 --out p0.json  # execute (x3)
//! fabric-power merge p0.json p1.json p2.json --out all.json # merge
//! ```
//!
//! The merged document is byte-identical to a single-process `sweep` run of
//! the same scenario, for any shard count, split strategy and thread count
//! (pinned by `tests/shard_merge.rs`).

use serde::{Deserialize, Serialize};

use crate::cell::{SeedStrategy, SweepCell};
use crate::config::ExperimentConfig;

/// Domain-separation prefix for [`SweepPlan::content_hash`]; bump the
/// version when the plan's serialized form changes incompatibly.
const PLAN_HASH_DOMAIN: &str = "fabric-power sweep-plan v1";

/// Expands a configuration into its flat cell list, in canonical order
/// (mesh → ports → architecture → offered load — the inner three axes in the
/// order the original sequential loops visited the grid in, with the network
/// axis, when present, outermost), with every cell's seed fixed up front.
///
/// This is *the* grid expansion: the engine, plans and shards all call it, so
/// cell indices and seeds can never disagree between a planned run and a
/// direct one.
#[must_use]
pub fn expand_cells(config: &ExperimentConfig, seed_strategy: SeedStrategy) -> Vec<SweepCell> {
    // A single-router sweep is a network sweep over the one-element axis
    // `[None]`; a network sweep iterates its mesh sizes outermost.
    let networks = match &config.network {
        None => vec![None],
        Some(network) => network
            .meshes
            .iter()
            .map(|&mesh| Some(network.network_config(mesh)))
            .collect(),
    };
    let mut cells = Vec::with_capacity(config.grid_size());
    for network in networks {
        for &ports in &config.port_counts {
            for &architecture in &config.architectures {
                for &offered_load in &config.offered_loads {
                    cells.push(SweepCell {
                        index: cells.len(),
                        architecture,
                        ports,
                        offered_load,
                        pattern: config.pattern,
                        seed: seed_strategy.cell_seed(
                            config.seed,
                            architecture,
                            ports,
                            offered_load,
                            config.pattern,
                            network.as_ref(),
                        ),
                        network,
                    });
                }
            }
        }
    }
    cells
}

/// How a plan distributes cells over its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardStrategy {
    /// Contiguous runs of cell indices (shard 0 gets the first
    /// `ceil(n/k)`-ish cells, and so on).  Cells of one fabric size cluster
    /// in canonical order, so contiguous shards tend to need fewer distinct
    /// energy models each.
    #[default]
    Contiguous,
    /// Cell `i` goes to shard `i mod k`.  Spreads expensive high-load /
    /// large-fabric cells evenly across shards at the cost of every shard
    /// touching every fabric size.
    RoundRobin,
}

impl ShardStrategy {
    /// Parses the CLI spelling (`contiguous` / `round-robin`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(input: &str) -> Result<Self, String> {
        match input {
            "contiguous" => Ok(Self::Contiguous),
            "round-robin" => Ok(Self::RoundRobin),
            other => Err(format!(
                "unknown shard strategy `{other}` (expected `contiguous` or `round-robin`)"
            )),
        }
    }

    /// The CLI spelling of this strategy.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::Contiguous => "contiguous",
            Self::RoundRobin => "round-robin",
        }
    }
}

/// Errors raised while building a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A plan needs at least one shard.
    ZeroShards,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "a plan needs at least one shard"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One self-describing slice of a planned sweep: the cells this shard owns,
/// each complete with its grid index and derived seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shard {
    /// This shard's position in the plan (`0..total`).
    pub index: usize,
    /// How many shards the plan was split into.
    pub total: usize,
    /// The cells this shard evaluates, in ascending grid-index order.
    pub cells: Vec<SweepCell>,
}

impl Shard {
    /// The lowest and highest grid indices this shard covers, or `None` for
    /// an empty shard.  (Round-robin shards cover a strided set; the range
    /// is still what execution reports tag their output with.)
    #[must_use]
    pub fn cell_index_range(&self) -> Option<(usize, usize)> {
        Some((self.cells.first()?.index, self.cells.last()?.index))
    }

    /// The distinct fabric sizes this shard needs energy models for, in
    /// first-seen order.
    #[must_use]
    pub fn unique_ports(&self) -> Vec<usize> {
        crate::cell::unique_ports(&self.cells)
    }
}

/// The grid-wide context of a plan, without the shards: everything a worker
/// needs besides the cells themselves to execute a [`Shard`] and tag the
/// resulting document.
///
/// This is what the work server ships to every worker at handshake time —
/// shards then travel individually per lease, so a worker's traffic scales
/// with the shards it executes, not with the whole grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanHeader {
    /// The scenario name the plan was built from (or a free-form label).
    pub scenario: String,
    /// The exact configuration the cells were expanded from.
    pub config: ExperimentConfig,
    /// How each cell's seed was derived from `config.seed`.
    pub seed_strategy: SeedStrategy,
}

/// A fully expanded, sharded sweep: the serializable artifact the `plan`
/// subcommand writes and `run-shard` consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPlan {
    /// The scenario name the plan was built from (or a free-form label).
    pub scenario: String,
    /// The exact configuration the cells were expanded from.
    pub config: ExperimentConfig,
    /// How each cell's seed was derived from `config.seed`.
    pub seed_strategy: SeedStrategy,
    /// How cells were distributed over shards.
    pub strategy: ShardStrategy,
    /// The shards, in index order.  Every grid cell appears in exactly one.
    pub shards: Vec<Shard>,
}

impl SweepPlan {
    /// Expands `config` once and splits the cells into `shard_count` shards.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ZeroShards`] when `shard_count` is zero.
    pub fn new(
        scenario: impl Into<String>,
        config: ExperimentConfig,
        seed_strategy: SeedStrategy,
        shard_count: usize,
        strategy: ShardStrategy,
    ) -> Result<Self, PlanError> {
        if shard_count == 0 {
            return Err(PlanError::ZeroShards);
        }
        let cells = expand_cells(&config, seed_strategy);
        let mut buckets: Vec<Vec<SweepCell>> = vec![Vec::new(); shard_count];
        match strategy {
            ShardStrategy::Contiguous => {
                // First `remainder` shards get one extra cell, so sizes never
                // differ by more than one.
                let base = cells.len() / shard_count;
                let remainder = cells.len() % shard_count;
                let mut cursor = 0;
                for (shard, bucket) in buckets.iter_mut().enumerate() {
                    let take = base + usize::from(shard < remainder);
                    bucket.extend_from_slice(&cells[cursor..cursor + take]);
                    cursor += take;
                }
            }
            ShardStrategy::RoundRobin => {
                for cell in cells {
                    let shard = cell.index % shard_count;
                    buckets[shard].push(cell);
                }
            }
        }
        let shards = buckets
            .into_iter()
            .enumerate()
            .map(|(index, cells)| Shard {
                index,
                total: shard_count,
                cells,
            })
            .collect();
        Ok(Self {
            scenario: scenario.into(),
            config,
            seed_strategy,
            strategy,
            shards,
        })
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total cells across all shards (the grid size).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.shards.iter().map(|s| s.cells.len()).sum()
    }

    /// Looks up one shard by index.
    #[must_use]
    pub fn shard(&self, index: usize) -> Option<&Shard> {
        self.shards.get(index)
    }

    /// The grid-wide context of this plan (scenario, configuration, seed
    /// strategy), without the shards.
    #[must_use]
    pub fn header(&self) -> PlanHeader {
        PlanHeader {
            scenario: self.scenario.clone(),
            config: self.config.clone(),
            seed_strategy: self.seed_strategy,
        }
    }

    /// A stable 128-bit content hash of the whole plan (32 lowercase hex
    /// digits), over its canonical JSON form with a version prefix.
    ///
    /// Two processes holding the same plan bytes agree on the hash, and any
    /// difference — a re-plan with another seed, shard count or strategy —
    /// changes it.  The work-server protocol uses it as the fleet's session
    /// identity: a worker holding a stale plan is refused at handshake, and
    /// every submission is checked against it before entering the merge.
    #[must_use]
    pub fn content_hash(&self) -> String {
        let json = serde_json::to_string(self).expect("plans always serialize");
        fabric_power_fabric::provider::stable_hash_hex(
            format!("{PLAN_HASH_DOMAIN}:{json}").as_bytes(),
        )
    }

    /// Serializes to pretty JSON (deterministic bytes).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a plan previously emitted by [`SweepPlan::to_json_string`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_json_str(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the JSON form to `path` (with a trailing newline),
    /// atomically — a crash mid-write can orphan a temp file but never leave
    /// a truncated plan for a later `run-shard` to trip over (see
    /// [`crate::emit::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Propagates serializer and I/O errors.
    pub fn write_json(&self, path: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
        crate::emit::write_atomic(path, &(self.to_json_string()? + "\n"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan(shards: usize, strategy: ShardStrategy) -> SweepPlan {
        SweepPlan::new(
            "plan-test",
            ExperimentConfig::quick(),
            SeedStrategy::Shared,
            shards,
            strategy,
        )
        .expect("plan builds")
    }

    #[test]
    fn every_cell_lands_in_exactly_one_shard() {
        let grid = ExperimentConfig::quick().grid_size();
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            for shards in [1, 2, 3, 7, grid, grid + 5] {
                let plan = quick_plan(shards, strategy);
                assert_eq!(plan.shard_count(), shards);
                assert_eq!(plan.total_cells(), grid, "{strategy:?} x{shards}");
                let mut seen = vec![false; grid];
                for shard in &plan.shards {
                    assert_eq!(shard.total, shards);
                    for cell in &shard.cells {
                        assert!(!seen[cell.index], "cell {} duplicated", cell.index);
                        seen[cell.index] = true;
                    }
                    // Cells stay in ascending grid order inside a shard.
                    assert!(shard.cells.windows(2).all(|w| w[0].index < w[1].index));
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "{strategy:?} x{shards} missed cells"
                );
            }
        }
    }

    #[test]
    fn contiguous_shards_are_ranges_and_balanced() {
        let plan = quick_plan(3, ShardStrategy::Contiguous);
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.cells.len()).collect();
        assert_eq!(sizes, vec![8, 8, 8]); // 24 cells over 3 shards
        for shard in &plan.shards {
            let (first, last) = shard.cell_index_range().unwrap();
            assert_eq!(last - first + 1, shard.cells.len(), "contiguous range");
        }
    }

    #[test]
    fn round_robin_strides_cells_across_shards() {
        let plan = quick_plan(3, ShardStrategy::RoundRobin);
        for shard in &plan.shards {
            assert!(shard.cells.iter().all(|c| c.index % 3 == shard.index));
        }
    }

    #[test]
    fn unbalanced_split_never_differs_by_more_than_one() {
        let plan = quick_plan(5, ShardStrategy::Contiguous);
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.cells.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 24);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = quick_plan(3, ShardStrategy::RoundRobin);
        let json = plan.to_json_string().expect("serialize");
        let back = SweepPlan::from_json_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }

    #[test]
    fn zero_shards_is_rejected() {
        let err = SweepPlan::new(
            "bad",
            ExperimentConfig::quick(),
            SeedStrategy::Shared,
            0,
            ShardStrategy::Contiguous,
        )
        .unwrap_err();
        assert_eq!(err, PlanError::ZeroShards);
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn shard_helpers_describe_the_slice() {
        let plan = quick_plan(2, ShardStrategy::Contiguous);
        let shard = plan.shard(0).unwrap();
        assert_eq!(shard.cell_index_range(), Some((0, 11)));
        assert_eq!(shard.unique_ports(), vec![4]);
        assert!(plan.shard(2).is_none());
        let empty = Shard {
            index: 0,
            total: 1,
            cells: Vec::new(),
        };
        assert_eq!(empty.cell_index_range(), None);
        assert!(empty.unique_ports().is_empty());
    }

    #[test]
    fn header_carries_the_grid_wide_context() {
        let plan = quick_plan(3, ShardStrategy::Contiguous);
        let header = plan.header();
        assert_eq!(header.scenario, plan.scenario);
        assert_eq!(header.config, plan.config);
        assert_eq!(header.seed_strategy, plan.seed_strategy);
        // The header round-trips through JSON (it travels over the wire).
        let json = serde_json::to_string(&header).unwrap();
        let back: PlanHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(back, header);
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        let plan = quick_plan(3, ShardStrategy::Contiguous);
        let hash = plan.content_hash();
        assert_eq!(hash.len(), 32);
        assert!(hash.bytes().all(|b| b.is_ascii_hexdigit()));
        // The same plan bytes hash identically, including after a round trip
        // through JSON (the worker-vs-server agreement the protocol needs).
        let round = SweepPlan::from_json_str(&plan.to_json_string().unwrap()).unwrap();
        assert_eq!(round.content_hash(), hash);
        // Any re-plan changes it.
        assert_ne!(
            quick_plan(2, ShardStrategy::Contiguous).content_hash(),
            hash
        );
        assert_ne!(
            quick_plan(3, ShardStrategy::RoundRobin).content_hash(),
            hash
        );
        let mut relabeled = plan;
        relabeled.scenario = "something-else".into();
        assert_ne!(relabeled.content_hash(), hash);
    }

    #[test]
    fn plans_write_atomically_with_no_temp_droppings() {
        let dir =
            std::env::temp_dir().join(format!("fabric-power-plan-write-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        let plan = quick_plan(2, ShardStrategy::Contiguous);
        plan.write_json(&path).unwrap();
        // Overwrite with a different plan: readers only ever see a whole one.
        let replacement = quick_plan(3, ShardStrategy::RoundRobin);
        replacement.write_json(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        let back = SweepPlan::from_json_str(read.trim_end()).unwrap();
        assert_eq!(back, replacement);
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["plan.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strategies_parse_and_slug_round_trip() {
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            assert_eq!(ShardStrategy::parse(strategy.slug()).unwrap(), strategy);
        }
        assert!(ShardStrategy::parse("spiral").is_err());
    }
}
