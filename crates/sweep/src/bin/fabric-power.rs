//! The `fabric-power` CLI: the user-facing entry point to the sweep engine
//! and the model-provider layer.
//!
//! ```text
//! fabric-power list-scenarios
//! fabric-power sweep --scenario paper-fig9 --threads 8 --out fig9.json
//! fabric-power sweep --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power cache warm --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power diff a.json b.json
//! fabric-power report --in fig9.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fabric_power_sweep::{
    diff_documents, report, ModelProvider, Scenario, ScenarioRegistry, SeedStrategy, SweepDocument,
    SweepEngine,
};

const USAGE: &str = "\
fabric-power — switch-fabric power sweeps (DAC 2002 reproduction)

USAGE:
    fabric-power <COMMAND> [OPTIONS]

COMMANDS:
    list-scenarios                 List every registered scenario
    export-scenario <NAME>         Print a scenario as JSON (editable, then
                                   runnable via `sweep --scenario-file`)
    sweep                          Run a scenario's grid
        --scenario <NAME>          A registered scenario, or
        --scenario-file <FILE>     a scenario loaded from JSON
        [--threads <N>]            Worker threads (default: all cores; results
                                   are identical for every thread count)
        [--seed <SEED>]            Override the scenario's base RNG seed
        [--seed-strategy <S>]      `shared` (default) or `per-cell`
        [--model-cache <DIR>]      Persist derived energy models in a
                                   content-addressed on-disk cache
        [--out <FILE.json>]        Write the JSON document here
        [--csv <FILE.csv>]         Also write a CSV table here
    cache <ACTION> --model-cache <DIR>
        stats                      Summarize the cache directory
        clear                      Delete every cached model
        warm --scenario <NAME>     Pre-build every model a scenario needs
             [--scenario-file <FILE>]
    diff <A.json> <B.json>         Compare two sweep documents cell by cell
        [--tolerance <REL>]        Accepted relative deviation (default 0 =
                                   byte-exact); exits nonzero on mismatch
    report --in <FILE.json>        Summarize a previously emitted document
    help                           Show this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `fabric-power help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let done = |result: Result<(), String>| result.map(|()| ExitCode::SUCCESS);
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("list-scenarios") => done(list_scenarios()),
        Some("export-scenario") => done(export_scenario(&args[1..])),
        Some("sweep") => done(sweep(&args[1..])),
        Some("cache") => done(cache(&args[1..])),
        Some("diff") => diff(&args[1..]),
        Some("report") => done(report_command(&args[1..])),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn list_scenarios() -> Result<(), String> {
    let registry = ScenarioRegistry::builtin();
    println!("{:<20} {:>7}  description", "scenario", "points");
    for scenario in registry.scenarios() {
        println!(
            "{:<20} {:>7}  {}",
            scenario.name,
            scenario.config.grid_size(),
            scenario.summary
        );
    }
    Ok(())
}

fn export_scenario(args: &[String]) -> Result<(), String> {
    let [name] = args else {
        return Err("export-scenario needs exactly one scenario name".into());
    };
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get(name).ok_or_else(|| unknown_scenario(name))?;
    println!(
        "{}",
        serde_json::to_string_pretty(scenario).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Pulls the value of `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return match iter.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(format!("`{flag}` needs a value")),
            };
        }
    }
    Ok(None)
}

/// Validates that `args` contains only `--flag value` pairs from `flags`,
/// with up to `positionals` leading positional arguments.
fn known_flags_with_positionals(
    args: &[String],
    positionals: usize,
    flags: &[&str],
) -> Result<(), String> {
    let mut expect_value = false;
    let mut seen_positionals = 0;
    for arg in args {
        if expect_value {
            expect_value = false;
            continue;
        }
        if flags.contains(&arg.as_str()) {
            expect_value = true;
        } else if !arg.starts_with('-') && seen_positionals < positionals {
            seen_positionals += 1;
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok(())
}

fn known_flags(args: &[String], flags: &[&str]) -> Result<(), String> {
    known_flags_with_positionals(args, 0, flags)
}

fn unknown_scenario(name: &str) -> String {
    format!(
        "unknown scenario `{name}` (available: {})",
        ScenarioRegistry::builtin().names().join(", ")
    )
}

/// Resolves the scenario from `--scenario <NAME>` or `--scenario-file
/// <FILE>` (exactly one of the two).
fn resolve_scenario(args: &[String]) -> Result<Scenario, String> {
    let name = flag_value(args, "--scenario")?;
    let file = flag_value(args, "--scenario-file")?;
    match (name, file) {
        (Some(_), Some(_)) => {
            Err("`--scenario` and `--scenario-file` are mutually exclusive".into())
        }
        (None, None) => Err("need `--scenario <NAME>` or `--scenario-file <FILE>`".into()),
        (Some(name), None) => {
            let registry = ScenarioRegistry::builtin();
            registry
                .get(&name)
                .cloned()
                .ok_or_else(|| unknown_scenario(&name))
        }
        (None, Some(path)) => {
            let json =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let scenario: Scenario = serde_json::from_str(json.trim())
                .map_err(|e| format!("parsing {path}: {e} (expected a scenario object like `fabric-power export-scenario` prints)"))?;
            Ok(scenario)
        }
    }
}

/// Builds the model provider: disk-backed when `--model-cache` is given,
/// otherwise the process-wide in-memory one.
fn resolve_provider(args: &[String]) -> Result<Arc<ModelProvider>, String> {
    ModelProvider::from_cache_dir_arg(flag_value(args, "--model-cache")?.as_deref())
}

fn print_cache_stats(provider: &ModelProvider) {
    if let Some(dir) = provider.cache_dir() {
        eprintln!("model cache: {} (dir: {})", provider.stats(), dir.display());
    }
}

fn sweep(args: &[String]) -> Result<(), String> {
    known_flags(
        args,
        &[
            "--scenario",
            "--scenario-file",
            "--threads",
            "--seed",
            "--seed-strategy",
            "--model-cache",
            "--out",
            "--csv",
        ],
    )?;
    let scenario = resolve_scenario(args)?;
    let provider = resolve_provider(args)?;

    let mut config = scenario.config.clone();
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = parse_seed(&seed)?;
    }

    let mut engine = SweepEngine::new().with_provider(Arc::clone(&provider));
    if let Some(threads) = flag_value(args, "--threads")? {
        engine = engine.with_threads(fabric_power_sweep::executor::parse_thread_count(&threads)?);
    }
    if let Some(strategy) = flag_value(args, "--seed-strategy")? {
        engine = engine.with_seed_strategy(SeedStrategy::parse(&strategy)?);
    }

    eprintln!(
        "running scenario `{}`: {} points on {} thread(s)...",
        scenario.name,
        config.grid_size(),
        engine.threads()
    );
    let started = std::time::Instant::now();
    let points = engine.run(&config).map_err(|e| e.to_string())?;
    eprintln!(
        "completed {} points in {:.2?}",
        points.len(),
        started.elapsed()
    );
    print_cache_stats(&provider);

    let document = SweepDocument {
        scenario: scenario.name.clone(),
        config,
        seed_strategy: engine.seed_strategy(),
        points,
    };

    let out = flag_value(args, "--out")?.map(PathBuf::from);
    let csv = flag_value(args, "--csv")?.map(PathBuf::from);
    match (&out, &csv) {
        (None, None) => {
            // No files requested: the JSON document goes to stdout.
            println!("{}", document.to_json_string().map_err(|e| e.to_string())?);
        }
        _ => {
            if let Some(path) = &out {
                document.write_json(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            if let Some(path) = &csv {
                document.write_csv(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
        }
    }
    Ok(())
}

fn cache(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .ok_or_else(|| "cache needs an action: stats, clear or warm".to_string())?;
    let rest = &args[1..];
    let require_dir = |rest: &[String]| -> Result<Arc<ModelProvider>, String> {
        if flag_value(rest, "--model-cache")?.is_none() {
            return Err(format!("cache {action} needs `--model-cache <DIR>`"));
        }
        resolve_provider(rest)
    };
    match action.as_str() {
        "stats" => {
            known_flags(rest, &["--model-cache"])?;
            let provider = require_dir(rest)?;
            let entries = provider.disk_entries().map_err(|e| e.to_string())?;
            let total_bytes: u64 = entries.iter().map(|e| e.bytes).sum();
            let corrupt = entries.iter().filter(|e| e.spec.is_none()).count();
            println!(
                "{} entries, {} bytes, {} corrupt (dir: {})",
                entries.len(),
                total_bytes,
                corrupt,
                provider.cache_dir().expect("dir required above").display()
            );
            for entry in &entries {
                let file = entry
                    .path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("?");
                match &entry.spec {
                    Some(spec) => println!(
                        "{file}  {:>7} B  {}x{} {} model",
                        entry.bytes,
                        spec.ports,
                        spec.ports,
                        spec.kind_label()
                    ),
                    None => println!("{file}  {:>7} B  CORRUPT", entry.bytes),
                }
            }
            Ok(())
        }
        "clear" => {
            known_flags(rest, &["--model-cache"])?;
            let provider = require_dir(rest)?;
            let removed = provider.clear_disk().map_err(|e| e.to_string())?;
            println!("removed {removed} cached model(s)");
            Ok(())
        }
        "warm" => {
            known_flags(rest, &["--model-cache", "--scenario", "--scenario-file"])?;
            let provider = require_dir(rest)?;
            let scenario = resolve_scenario(rest)?;
            let mut warmed = Vec::new();
            for &ports in &scenario.config.port_counts {
                if warmed.contains(&ports) {
                    continue;
                }
                provider
                    .get(&scenario.config.model_spec(ports))
                    .map_err(|e| e.to_string())?;
                warmed.push(ports);
            }
            println!(
                "warmed {} model(s) for scenario `{}`: {}",
                warmed.len(),
                scenario.name,
                provider.stats()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` (expected stats, clear or warm)"
        )),
    }
}

fn read_document(path: &str) -> Result<SweepDocument, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SweepDocument::from_json_str(json.trim_end()).map_err(|e| format!("parsing {path}: {e}"))
}

/// Compares two documents; a mismatch is a *result* (exit code 1 with the
/// delta report on stdout), not a usage error.
fn diff(args: &[String]) -> Result<ExitCode, String> {
    known_flags_with_positionals(args, 2, &["--tolerance"])?;
    let tolerance = match flag_value(args, "--tolerance")? {
        Some(value) => value
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("invalid tolerance `{value}`"))?,
        None => 0.0,
    };
    // The two document paths are the arguments left once `--tolerance` and
    // its value are removed.
    let mut positionals = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
        } else if arg == "--tolerance" {
            skip_next = true;
        } else {
            positionals.push(arg);
        }
    }
    let [a_path, b_path] = positionals.as_slice() else {
        return Err("diff needs exactly two document paths".into());
    };
    let a = read_document(a_path)?;
    let b = read_document(b_path)?;
    let result = diff_documents(&a, &b, tolerance);
    print!("{}", result.format());
    if result.is_match() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn parse_seed(input: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = input
        .strip_prefix("0x")
        .or_else(|| input.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        input.parse()
    };
    parsed.map_err(|_| format!("invalid seed `{input}`"))
}

fn report_command(args: &[String]) -> Result<(), String> {
    known_flags(args, &["--in"])?;
    let path =
        flag_value(args, "--in")?.ok_or_else(|| "report needs `--in <FILE.json>`".to_string())?;
    let document = read_document(&path)?;
    print!("{}", report::format_document(&document));
    Ok(())
}
