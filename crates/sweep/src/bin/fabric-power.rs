//! The `fabric-power` CLI: the user-facing entry point to the sweep engine
//! and the model-provider layer.
//!
//! ```text
//! fabric-power list-scenarios
//! fabric-power sweep --scenario paper-fig9 --threads 8 --out fig9.json
//! fabric-power plan paper-fig9 --shards 3 --out plan.json
//! fabric-power run-shard plan.json --index 0 --out part0.json
//! fabric-power merge part0.json part1.json part2.json --out fig9.json
//! fabric-power serve plan.json --listen 127.0.0.1:7351 --out fig9.json
//! fabric-power worker --connect 127.0.0.1:7351 --threads 8
//! fabric-power sweep --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power cache warm --scenario derived-quick --model-cache ~/.cache/fabric-power
//! fabric-power cache prune --model-cache ~/.cache/fabric-power --max-age-days 30
//! fabric-power diff a.json b.json
//! fabric-power report --in fig9.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use fabric_power_obs as obs;
use fabric_power_sweep::{
    diff_documents, merge_documents, report, run_worker, status::render_status, JournalOptions,
    ModelProvider, Scenario, ScenarioRegistry, SeedStrategy, ServeOptions, ShardDocument,
    ShardStrategy, StatusProbe, SweepDocument, SweepEngine, SweepPlan, WorkServer, WorkerOptions,
};

const USAGE: &str = "\
fabric-power — switch-fabric power sweeps (DAC 2002 reproduction)

USAGE:
    fabric-power <COMMAND> [OPTIONS]

COMMANDS:
    list-scenarios                 List every registered scenario (the noc-*
                                   family sweeps multi-router mesh networks)
    export-scenario <NAME>         Print a scenario as JSON (editable, then
                                   runnable via `sweep --scenario-file`)
    sweep                          Run a scenario's grid
        --scenario <NAME>          A registered scenario, or
        --scenario-file <FILE>     a scenario loaded from JSON
        [--threads <N>]            Worker threads (default: all cores; results
                                   are identical for every thread count)
        [--seed <SEED>]            Override the scenario's base RNG seed
        [--seed-strategy <S>]      `shared` (default) or `per-cell`
        [--model-cache <DIR>]      Persist derived energy models in a
                                   content-addressed on-disk cache
        [--out <FILE.json>]        Write the JSON document here
        [--csv <FILE.csv>]         Also write a CSV table here
    plan <SCENARIO> --shards <N>   Expand a scenario once and split it into
                                   self-describing shards (a JSON plan)
        [--scenario-file <FILE>]   Plan a scenario loaded from JSON instead
        [--strategy <S>]           `contiguous` (default) or `round-robin`
        [--seed <SEED>]            Override the scenario's base RNG seed
        [--seed-strategy <S>]      `shared` (default) or `per-cell`
        [--out <FILE.json>]        Write the plan here (default: stdout)
    run-shard <PLAN.json>          Run one shard of a plan, emitting a
        --index <I>                partial document for `merge`
        [--threads <N>] [--model-cache <DIR>] [--out <FILE.json>]
    merge <PART.json>...           Recombine partial shard documents into the
                                   full sweep document (byte-identical to a
                                   single-process run; refuses overlapping or
                                   missing cells)
        [--out <FILE.json>] [--csv <FILE.csv>]
    serve <PLAN.json>              Own a plan and lease its shards to workers
        --listen <ADDR>            over TCP; when the last shard lands, merge
                                   and emit like `merge` does
        [--lease-timeout-secs <S>] Re-lease a shard whose worker stays silent
                                   for S seconds (default: 60)
        [--journal <DIR>]          Append every accepted shard to a durable,
                                   checksummed drain journal keyed by the
                                   plan's content hash
        [--resume]                 Restore completed shards from the journal
                                   (tolerating a torn final record) and
                                   re-lease only the remainder; the resumed
                                   merge is byte-identical to an
                                   uninterrupted run
        [--out <FILE.json>] [--csv <FILE.csv>]
    worker                         Claim, execute and submit shards in a loop
        --connect <ADDR>           until the server drains the fleet
        [--threads <N>] [--model-cache <DIR>]
        [--plan-hash <HASH>]       Refuse to work unless the server is
                                   serving exactly this plan (see `serve`'s
                                   startup log for the hash)
        [--reconnect-attempts <N>] Consecutive lost sessions to survive by
                                   reconnecting with capped exponential
                                   backoff before giving up (default: 8)
        [--backoff-seed <SEED>]    Pin the backoff jitter stream (default:
                                   the worker's pid, desynchronizing a
                                   fleet's reconnect stampede)
    status                         Probe a running `serve` for live fleet
        --connect <ADDR>           status (plan hash, shard and cell
                                   progress, per-worker state, uptime)
        [--json]                   Emit the snapshot as one JSON line
        [--watch]                  Re-probe every second until the plan
                                   completes
    cache <ACTION> --model-cache <DIR>
        stats                      Summarize the cache directory
        clear                      Delete every cached model
        prune                      Evict entries by age and/or total size
            [--max-age-days <D>]   Drop entries older than D days
            [--max-bytes <B>]      Evict oldest-first until under B bytes
        warm --scenario <NAME>     Pre-build every model a scenario needs
             [--scenario-file <FILE>]
    diff <A.json> <B.json>         Compare two sweep documents cell by cell
        [--tolerance <REL>]        Accepted relative deviation (default 0 =
                                   byte-exact); exits nonzero on mismatch
    report --in <FILE.json>        Summarize a previously emitted document
    netlist-stats <CLASS>          Generate a Table 1 switch circuit and show
                                   what the netlist pass pipeline bought:
                                   cell/net/level counts plus per-pass
                                   reductions. CLASS is `crosspoint`,
                                   `banyan`, `batcher`, `mux<N>` (e.g.
                                   `mux16`) or `all`
        [--json]                   Emit the statistics as JSON
    help                           Show this message

GLOBAL OPTIONS (any command):
    --log <SPEC>                   Stderr event verbosity: a level (`debug`)
                                   or per-target directives
                                   (`info,sweep.server=trace,fabric=off`);
                                   overrides $FABRIC_POWER_LOG (default: info)
    --log-json <FILE>              Also append every event as one JSON line
                                   to FILE (truncated at startup)
    --metrics <FILE>               Write the process metrics registry as JSON
                                   to FILE at exit

ENVIRONMENT:
    FABRIC_POWER_FAULTS            Deterministic fault injection for chaos
                                   testing, e.g. `seed=7,wire_garbage_every=23,
                                   disk_torn_every=5` (see the README's fault
                                   tolerance section); unset = zero overhead

All instrumentation is out of band (stderr / side files): emitted sweep
documents are byte-identical with observability (and disabled fault
injection) on or off.
";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let observability = match apply_global_flags(&mut args) {
        Ok(observability) => observability,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `fabric-power help` for usage");
            return ExitCode::FAILURE;
        }
    };
    // Chaos harness: $FABRIC_POWER_FAULTS installs a deterministic fault
    // plan process-wide.  A malformed spec fails loudly — a chaos run with
    // a typoed spec must not silently run fault-free.
    match obs::faults::init_from_env() {
        Ok(false) => {}
        Ok(true) => {
            let plan = obs::faults::current().expect("just installed");
            obs::warn!("faults", "fault injection ACTIVE", plan = plan.to_spec(),);
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    }
    let code = match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `fabric-power help` for usage");
            ExitCode::FAILURE
        }
    };
    if let Err(message) = observability.finish() {
        eprintln!("error: {message}");
        return ExitCode::FAILURE;
    }
    code
}

/// What the global observability flags asked for beyond immediate logger
/// configuration: work to do when the command finishes.
struct Observability {
    metrics_out: Option<PathBuf>,
}

impl Observability {
    fn finish(self) -> Result<(), String> {
        if let Some(path) = self.metrics_out {
            let json = obs::metrics::snapshot().to_json();
            std::fs::write(&path, format!("{json}\n"))
                .map_err(|e| format!("writing metrics to {}: {e}", path.display()))?;
            eprintln!("wrote metrics to {}", path.display());
        }
        Ok(())
    }
}

/// Strips the global `--log` / `--log-json` / `--metrics` flags out of the
/// argument list (they are accepted anywhere, for every command) and
/// configures the logger accordingly.  `--log` beats `$FABRIC_POWER_LOG`,
/// which the logger already read at first use.
fn apply_global_flags(args: &mut Vec<String>) -> Result<Observability, String> {
    let mut log_spec = None;
    let mut log_json = None;
    let mut metrics_out = None;
    let mut index = 0;
    while index < args.len() {
        let slot = match args[index].as_str() {
            "--log" => &mut log_spec,
            "--log-json" => &mut log_json,
            "--metrics" => &mut metrics_out,
            _ => {
                index += 1;
                continue;
            }
        };
        if index + 1 >= args.len() {
            return Err(format!("`{}` needs a value", args[index]));
        }
        *slot = Some(args.remove(index + 1));
        args.remove(index);
    }
    if let Some(spec) = log_spec {
        obs::log::set_filter(obs::Filter::parse(&spec)?);
    }
    if let Some(path) = log_json {
        obs::log::log_json_to_file(std::path::Path::new(&path))
            .map_err(|e| format!("opening log file {path}: {e}"))?;
    }
    Ok(Observability {
        metrics_out: metrics_out.map(PathBuf::from),
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let done = |result: Result<(), String>| result.map(|()| ExitCode::SUCCESS);
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("list-scenarios") => done(list_scenarios()),
        Some("export-scenario") => done(export_scenario(&args[1..])),
        Some("sweep") => done(sweep(&args[1..])),
        Some("plan") => done(plan(&args[1..])),
        Some("run-shard") => done(run_shard(&args[1..])),
        Some("merge") => done(merge(&args[1..])),
        Some("serve") => done(serve(&args[1..])),
        Some("worker") => done(worker(&args[1..])),
        Some("status") => done(status_command(&args[1..])),
        Some("cache") => done(cache(&args[1..])),
        Some("diff") => diff(&args[1..]),
        Some("report") => done(report_command(&args[1..])),
        Some("netlist-stats") => done(netlist_stats(&args[1..])),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// `fabric-power status --connect <ADDR>`: probe a running serve session.
fn status_command(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut watch = false;
    let mut rest = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--watch" => watch = true,
            _ => rest.push(arg.clone()),
        }
    }
    known_flags(&rest, &["--connect"])?;
    let addr = flag_value(&rest, "--connect")?
        .ok_or_else(|| "status needs `--connect <ADDR>`".to_string())?;
    // One connection for the whole watch: the server stops accepting new
    // connections the moment the plan completes, but held-open connections
    // keep answering through the drain grace period — which is how a watch
    // gets to see (and exit on) the terminal `done` snapshot.
    let mut probe =
        StatusProbe::connect(&addr).map_err(|e| format!("status probe to {addr}: {e}"))?;
    let mut first = true;
    loop {
        let status = probe
            .fetch()
            .map_err(|e| format!("status probe to {addr}: {e}"))?;
        if json {
            println!(
                "{}",
                serde_json::to_string(&status).map_err(|e| e.to_string())?
            );
        } else {
            if !first {
                println!();
            }
            print!("{}", render_status(&status));
        }
        if !watch || status.done {
            return Ok(());
        }
        first = false;
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}

fn list_scenarios() -> Result<(), String> {
    let registry = ScenarioRegistry::builtin();
    println!("{:<20} {:>7}  description", "scenario", "points");
    for scenario in registry.scenarios() {
        println!(
            "{:<20} {:>7}  {}",
            scenario.name,
            scenario.config.grid_size(),
            scenario.summary
        );
    }
    Ok(())
}

fn export_scenario(args: &[String]) -> Result<(), String> {
    let [name] = args else {
        return Err("export-scenario needs exactly one scenario name".into());
    };
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get(name).ok_or_else(|| unknown_scenario(name))?;
    println!(
        "{}",
        serde_json::to_string_pretty(scenario).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Pulls the value of `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return match iter.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(format!("`{flag}` needs a value")),
            };
        }
    }
    Ok(None)
}

/// Validates that `args` contains only `--flag value` pairs from `flags`,
/// with up to `positionals` leading positional arguments.
fn known_flags_with_positionals(
    args: &[String],
    positionals: usize,
    flags: &[&str],
) -> Result<(), String> {
    let mut expect_value = false;
    let mut seen_positionals = 0;
    for arg in args {
        if expect_value {
            expect_value = false;
            continue;
        }
        if flags.contains(&arg.as_str()) {
            expect_value = true;
        } else if !arg.starts_with('-') && seen_positionals < positionals {
            seen_positionals += 1;
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok(())
}

fn known_flags(args: &[String], flags: &[&str]) -> Result<(), String> {
    known_flags_with_positionals(args, 0, flags)
}

/// The arguments left once every `--flag value` pair in `flags` is removed.
fn positional_args<'a>(args: &'a [String], flags: &[&str]) -> Vec<&'a String> {
    let mut positionals = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
        } else if flags.contains(&arg.as_str()) {
            skip_next = true;
        } else {
            positionals.push(arg);
        }
    }
    positionals
}

fn unknown_scenario(name: &str) -> String {
    format!(
        "unknown scenario `{name}` (available: {})",
        ScenarioRegistry::builtin().names().join(", ")
    )
}

/// Loads a scenario from a registry name or a JSON file (exactly one of the
/// two) — the single resolution path every subcommand shares, so lookup
/// behavior and error wording cannot drift between them.
fn load_scenario(
    name: Option<String>,
    file: Option<String>,
    neither: &str,
    both: &str,
) -> Result<Scenario, String> {
    match (name, file) {
        (Some(_), Some(_)) => Err(both.into()),
        (None, None) => Err(neither.into()),
        (Some(name), None) => {
            let registry = ScenarioRegistry::builtin();
            registry
                .get(&name)
                .cloned()
                .ok_or_else(|| unknown_scenario(&name))
        }
        (None, Some(path)) => {
            let json =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let scenario: Scenario = serde_json::from_str(json.trim())
                .map_err(|e| format!("parsing {path}: {e} (expected a scenario object like `fabric-power export-scenario` prints)"))?;
            Ok(scenario)
        }
    }
}

/// Resolves the scenario from `--scenario <NAME>` or `--scenario-file
/// <FILE>` (exactly one of the two).
fn resolve_scenario(args: &[String]) -> Result<Scenario, String> {
    load_scenario(
        flag_value(args, "--scenario")?,
        flag_value(args, "--scenario-file")?,
        "need `--scenario <NAME>` or `--scenario-file <FILE>`",
        "`--scenario` and `--scenario-file` are mutually exclusive",
    )
}

/// Builds the model provider: disk-backed when `--model-cache` is given,
/// otherwise the process-wide in-memory one.
fn resolve_provider(args: &[String]) -> Result<Arc<ModelProvider>, String> {
    ModelProvider::from_cache_dir_arg(flag_value(args, "--model-cache")?.as_deref())
}

/// Builds the provider + engine pair every executing subcommand shares:
/// `--model-cache` selects the provider, `--threads` the worker count.
fn resolve_engine(args: &[String]) -> Result<(Arc<ModelProvider>, SweepEngine), String> {
    let provider = resolve_provider(args)?;
    let mut engine = SweepEngine::new().with_provider(Arc::clone(&provider));
    if let Some(threads) = flag_value(args, "--threads")? {
        engine = engine.with_threads(fabric_power_sweep::executor::parse_thread_count(&threads)?);
    }
    Ok((provider, engine))
}

fn print_cache_stats(provider: &ModelProvider) {
    if let Some(dir) = provider.cache_dir() {
        eprintln!("model cache: {} (dir: {})", provider.stats(), dir.display());
    }
}

fn sweep(args: &[String]) -> Result<(), String> {
    known_flags(
        args,
        &[
            "--scenario",
            "--scenario-file",
            "--threads",
            "--seed",
            "--seed-strategy",
            "--model-cache",
            "--out",
            "--csv",
        ],
    )?;
    let scenario = resolve_scenario(args)?;
    let (provider, mut engine) = resolve_engine(args)?;

    let mut config = scenario.config.clone();
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = parse_seed(&seed)?;
    }
    if let Some(strategy) = flag_value(args, "--seed-strategy")? {
        engine = engine.with_seed_strategy(SeedStrategy::parse(&strategy)?);
    }

    eprintln!(
        "running scenario `{}`: {} points on {} thread(s)...",
        scenario.name,
        config.grid_size(),
        engine.threads()
    );
    let started = std::time::Instant::now();
    let points = engine.run(&config).map_err(|e| e.to_string())?;
    eprintln!(
        "completed {} points in {:.2?}",
        points.len(),
        started.elapsed()
    );
    print_cache_stats(&provider);

    let document = SweepDocument {
        scenario: scenario.name.clone(),
        config,
        seed_strategy: engine.seed_strategy(),
        points,
    };

    write_document_outputs(&document, args)
}

/// The one output policy for subcommands that produce a [`SweepDocument`]
/// (`sweep`, `merge`): write `--out` and/or `--csv` when given, otherwise
/// dump the JSON document to stdout.
fn write_document_outputs(document: &SweepDocument, args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out")?.map(PathBuf::from);
    let csv = flag_value(args, "--csv")?.map(PathBuf::from);
    match (&out, &csv) {
        (None, None) => {
            // No files requested: the JSON document goes to stdout.
            println!("{}", document.to_json_string().map_err(|e| e.to_string())?);
        }
        _ => {
            if let Some(path) = &out {
                document.write_json(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            if let Some(path) = &csv {
                document.write_csv(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
        }
    }
    Ok(())
}

fn cache(args: &[String]) -> Result<(), String> {
    let action = args
        .first()
        .ok_or_else(|| "cache needs an action: stats, clear, prune or warm".to_string())?;
    let rest = &args[1..];
    let require_dir = |rest: &[String]| -> Result<Arc<ModelProvider>, String> {
        if flag_value(rest, "--model-cache")?.is_none() {
            return Err(format!("cache {action} needs `--model-cache <DIR>`"));
        }
        resolve_provider(rest)
    };
    match action.as_str() {
        "stats" => {
            known_flags(rest, &["--model-cache"])?;
            let provider = require_dir(rest)?;
            let entries = provider.disk_entries().map_err(|e| e.to_string())?;
            let total_bytes: u64 = entries.iter().map(|e| e.bytes).sum();
            let corrupt = entries.iter().filter(|e| e.spec.is_none()).count();
            // Write-temp orphans are not content-addressed entries, so the
            // listing above never sees them — count them explicitly instead
            // of silently ignoring full-model-sized leftovers.
            let (orphans, orphan_bytes) =
                provider.orphaned_tmp_files().map_err(|e| e.to_string())?;
            println!(
                "{} entries, {} bytes, {} corrupt (dir: {})",
                entries.len(),
                total_bytes,
                corrupt,
                provider.cache_dir().expect("dir required above").display()
            );
            if orphans > 0 {
                println!(
                    "{orphans} orphaned write-temp file(s), {orphan_bytes} bytes \
                     (swept by `cache clear`/`cache prune` once stale)"
                );
            }
            // Process-level cache traffic from the metrics registry: zero in
            // a fresh `cache stats` process, populated when sweeps run in
            // this process (and in any `--metrics` snapshot).
            let metrics = obs::metrics::snapshot();
            let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
            println!(
                "process: {} hit(s), {} miss(es), {} heal(s)",
                counter(obs::metrics::names::MODEL_CACHE_HIT),
                counter(obs::metrics::names::MODEL_CACHE_MISS),
                counter(obs::metrics::names::MODEL_CACHE_HEAL),
            );
            for entry in &entries {
                let file = entry
                    .path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("?");
                match &entry.spec {
                    Some(spec) => println!(
                        "{file}  {:>7} B  {}x{} {} model",
                        entry.bytes,
                        spec.ports,
                        spec.ports,
                        spec.kind_label()
                    ),
                    None => println!("{file}  {:>7} B  CORRUPT", entry.bytes),
                }
            }
            Ok(())
        }
        "clear" => {
            known_flags(rest, &["--model-cache"])?;
            let provider = require_dir(rest)?;
            let removed = provider.clear_disk().map_err(|e| e.to_string())?;
            println!("removed {removed} cached model(s)");
            Ok(())
        }
        "prune" => {
            known_flags(rest, &["--model-cache", "--max-age-days", "--max-bytes"])?;
            let provider = require_dir(rest)?;
            let max_age = match flag_value(rest, "--max-age-days")? {
                Some(value) => {
                    // try_from_secs_f64 rejects negative, non-finite and
                    // out-of-range inputs in one place, so absurd day counts
                    // are a clean error instead of a Duration panic.
                    let age = value
                        .parse::<f64>()
                        .ok()
                        .and_then(|days| {
                            std::time::Duration::try_from_secs_f64(days * 86_400.0).ok()
                        })
                        .ok_or_else(|| format!("invalid `--max-age-days` value `{value}`"))?;
                    Some(age)
                }
                None => None,
            };
            let max_bytes = match flag_value(rest, "--max-bytes")? {
                Some(value) => Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid `--max-bytes` value `{value}`"))?,
                ),
                None => None,
            };
            if max_age.is_none() && max_bytes.is_none() {
                return Err(
                    "cache prune needs `--max-age-days <D>` and/or `--max-bytes <B>`".into(),
                );
            }
            let report = provider
                .prune_disk(max_age, max_bytes)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(())
        }
        "warm" => {
            known_flags(rest, &["--model-cache", "--scenario", "--scenario-file"])?;
            let provider = require_dir(rest)?;
            let scenario = resolve_scenario(rest)?;
            let mut warmed = Vec::new();
            for &ports in &scenario.config.port_counts {
                if warmed.contains(&ports) {
                    continue;
                }
                provider
                    .get(&scenario.config.model_spec(ports))
                    .map_err(|e| e.to_string())?;
                warmed.push(ports);
            }
            println!(
                "warmed {} model(s) for scenario `{}`: {}",
                warmed.len(),
                scenario.name,
                provider.stats()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown cache action `{other}` (expected stats, clear, prune or warm)"
        )),
    }
}

fn read_document(path: &str) -> Result<SweepDocument, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SweepDocument::from_json_str(json.trim_end()).map_err(|e| format!("parsing {path}: {e}"))
}

/// Compares two documents; a mismatch is a *result* (exit code 1 with the
/// delta report on stdout), not a usage error.
fn diff(args: &[String]) -> Result<ExitCode, String> {
    known_flags_with_positionals(args, 2, &["--tolerance"])?;
    let tolerance = match flag_value(args, "--tolerance")? {
        Some(value) => value
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("invalid tolerance `{value}`"))?,
        None => 0.0,
    };
    // The two document paths are the arguments left once `--tolerance` and
    // its value are removed.
    let [a_path, b_path] = positional_args(args, &["--tolerance"])[..] else {
        return Err("diff needs exactly two document paths".into());
    };
    let a = read_document(a_path)?;
    let b = read_document(b_path)?;
    let result = diff_documents(&a, &b, tolerance);
    print!("{}", result.format());
    if result.is_match() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// `fabric-power plan <SCENARIO> --shards N`: expand once, split, serialize.
fn plan(args: &[String]) -> Result<(), String> {
    const FLAGS: &[&str] = &[
        "--scenario-file",
        "--shards",
        "--strategy",
        "--seed",
        "--seed-strategy",
        "--out",
    ];
    known_flags_with_positionals(args, 1, FLAGS)?;
    let shards =
        flag_value(args, "--shards")?.ok_or_else(|| "plan needs `--shards <N>`".to_string())?;
    let shards: usize = shards
        .parse()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("invalid shard count `{shards}` (need a positive integer)"))?;
    let strategy = match flag_value(args, "--strategy")? {
        Some(value) => ShardStrategy::parse(&value)?,
        None => ShardStrategy::Contiguous,
    };

    // The scenario comes from the positional name or `--scenario-file`.
    let positional_name = match positional_args(args, FLAGS)[..] {
        [] => None,
        [name] => Some(name.clone()),
        _ => return Err("plan takes at most one scenario name".into()),
    };
    let Scenario { name, config, .. } = load_scenario(
        positional_name,
        flag_value(args, "--scenario-file")?,
        "plan needs a scenario name or `--scenario-file <FILE>`",
        "give a scenario name or `--scenario-file`, not both",
    )?;

    let mut config = config;
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = parse_seed(&seed)?;
    }
    let seed_strategy = match flag_value(args, "--seed-strategy")? {
        Some(value) => SeedStrategy::parse(&value)?,
        None => SeedStrategy::Shared,
    };

    let plan =
        SweepPlan::new(name, config, seed_strategy, shards, strategy).map_err(|e| e.to_string())?;
    eprintln!(
        "planned scenario `{}`: {} cell(s) over {} {} shard(s)",
        plan.scenario,
        plan.total_cells(),
        plan.shard_count(),
        plan.strategy.slug(),
    );
    emit_json(
        &plan.to_json_string().map_err(|e| e.to_string())?,
        flag_value(args, "--out")?.as_deref(),
    )
}

/// `fabric-power run-shard <PLAN> --index i`: execute one shard of a plan.
fn run_shard(args: &[String]) -> Result<(), String> {
    const FLAGS: &[&str] = &["--index", "--threads", "--model-cache", "--out"];
    known_flags_with_positionals(args, 1, FLAGS)?;
    let [plan_path] = positional_args(args, FLAGS)[..] else {
        return Err("run-shard needs exactly one plan file".into());
    };
    let index =
        flag_value(args, "--index")?.ok_or_else(|| "run-shard needs `--index <I>`".to_string())?;
    let index: usize = index
        .parse()
        .map_err(|_| format!("invalid shard index `{index}`"))?;

    let plan = read_plan(plan_path)?;
    let (provider, engine) = resolve_engine(args)?;

    // Check the index before printing progress, but keep the engine's error
    // as the single source of the message.
    let shard = plan.shard(index).ok_or_else(|| {
        fabric_power_sweep::ExperimentError::InvalidShard {
            index,
            shards: plan.shard_count(),
        }
        .to_string()
    })?;
    eprintln!(
        "running shard {index}/{} of `{}`: {} cell(s) on {} thread(s)...",
        plan.shard_count(),
        plan.scenario,
        shard.cells.len(),
        engine.threads()
    );
    let started = std::time::Instant::now();
    let document = engine.run_shard(&plan, index).map_err(|e| e.to_string())?;
    eprintln!(
        "completed {} cell(s) in {:.2?}",
        document.results.len(),
        started.elapsed()
    );
    print_cache_stats(&provider);
    emit_json(
        &document.to_json_string().map_err(|e| e.to_string())?,
        flag_value(args, "--out")?.as_deref(),
    )
}

/// `fabric-power merge <PART>...`: recombine partial documents by cell index.
fn merge(args: &[String]) -> Result<(), String> {
    const FLAGS: &[&str] = &["--out", "--csv"];
    known_flags_with_positionals(args, usize::MAX, FLAGS)?;
    let part_paths = positional_args(args, FLAGS);
    if part_paths.is_empty() {
        return Err("merge needs at least one shard document".into());
    }
    let mut parts = Vec::with_capacity(part_paths.len());
    for path in part_paths {
        let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parts.push(
            ShardDocument::from_json_str(json.trim_end())
                .map_err(|e| format!("parsing {path}: {e}"))?,
        );
    }
    let document = merge_documents(&parts).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} shard(s) into {} point(s) of `{}`",
        parts.len(),
        document.points.len(),
        document.scenario
    );
    write_document_outputs(&document, args)
}

/// Reads and parses a plan file (shared by `run-shard` and `serve`).
fn read_plan(path: &str) -> Result<SweepPlan, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SweepPlan::from_json_str(json.trim_end()).map_err(|e| format!("parsing {path}: {e}"))
}

/// `fabric-power serve <PLAN> --listen <ADDR>`: own a plan, lease shards to
/// workers, merge and emit when the last shard lands.
fn serve(args: &[String]) -> Result<(), String> {
    const FLAGS: &[&str] = &[
        "--listen",
        "--lease-timeout-secs",
        "--journal",
        "--out",
        "--csv",
    ];
    // `--resume` is a boolean flag; strip it before pair validation.
    let mut resume = false;
    let mut rest = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--resume" => resume = true,
            _ => rest.push(arg.clone()),
        }
    }
    let args = &rest[..];
    known_flags_with_positionals(args, 1, FLAGS)?;
    let [plan_path] = positional_args(args, FLAGS)[..] else {
        return Err("serve needs exactly one plan file".into());
    };
    let listen = flag_value(args, "--listen")?
        .ok_or_else(|| "serve needs `--listen <ADDR>` (e.g. 127.0.0.1:7351)".to_string())?;
    let mut options = ServeOptions::default();
    if let Some(secs) = flag_value(args, "--lease-timeout-secs")? {
        options.lease_timeout = secs
            .parse::<u64>()
            .ok()
            .filter(|&s| s > 0)
            .map(std::time::Duration::from_secs)
            .ok_or_else(|| format!("invalid `--lease-timeout-secs` value `{secs}`"))?;
    }
    match flag_value(args, "--journal")? {
        Some(dir) => {
            options.journal = Some(JournalOptions {
                dir: PathBuf::from(dir),
                resume,
            });
        }
        None if resume => {
            return Err(
                "`--resume` needs `--journal <DIR>`: there is nothing to resume from \
                        without a drain journal"
                    .into(),
            );
        }
        None => {}
    }
    let plan = read_plan(plan_path)?;
    let scenario = plan.scenario.clone();
    let shard_count = plan.shard_count();
    let total_cells = plan.total_cells();
    let server =
        WorkServer::bind(&listen, plan, options).map_err(|e| format!("binding {listen}: {e}"))?;
    eprintln!(
        "serving plan `{scenario}` (hash {}): {shard_count} shard(s), {total_cells} cell(s) on {}",
        server.plan_hash(),
        server.local_addr()
    );
    let outcome = server.run().map_err(|e| e.to_string())?;
    eprintln!(
        "fleet complete: {} worker(s), {} requeue(s), {} restored from journal, \
         {} point(s) merged",
        outcome.workers,
        outcome.requeues,
        outcome.restored,
        outcome.document.points.len()
    );
    write_document_outputs(&outcome.document, args)
}

/// `fabric-power worker --connect <ADDR>`: the claim/execute/submit loop.
fn worker(args: &[String]) -> Result<(), String> {
    known_flags(
        args,
        &[
            "--connect",
            "--threads",
            "--model-cache",
            "--plan-hash",
            "--reconnect-attempts",
            "--backoff-seed",
        ],
    )?;
    let addr = flag_value(args, "--connect")?
        .ok_or_else(|| "worker needs `--connect <ADDR>`".to_string())?;
    let (provider, engine) = resolve_engine(args)?;
    let mut options = WorkerOptions {
        expect_plan_hash: flag_value(args, "--plan-hash")?,
        // Desynchronize a fleet's reconnect stampede by default: each
        // worker process jitters its backoff from its own pid.
        backoff: fabric_power_sweep::BackoffSchedule {
            seed: u64::from(std::process::id()),
            ..fabric_power_sweep::BackoffSchedule::default()
        },
        ..WorkerOptions::default()
    };
    if let Some(attempts) = flag_value(args, "--reconnect-attempts")? {
        options.reconnect_attempts = attempts
            .parse()
            .map_err(|_| format!("invalid `--reconnect-attempts` value `{attempts}`"))?;
    }
    if let Some(seed) = flag_value(args, "--backoff-seed")? {
        options.backoff.seed = parse_seed(&seed)?;
    }
    eprintln!(
        "worker connecting to {addr} on {} thread(s)...",
        engine.threads()
    );
    let report = run_worker(&addr, &engine, options).map_err(|e| e.to_string())?;
    eprintln!(
        "worker {} drained: completed {} shard(s) ({} cell(s)), {} reconnect(s)",
        report.worker, report.shards, report.cells, report.reconnects
    );
    print_cache_stats(&provider);
    Ok(())
}

/// Writes pretty JSON to `--out` (with a trailing newline) or to stdout.
/// File writes are atomic (write-temp-then-rename), so an interrupted
/// `plan`/`run-shard` never leaves a truncated artifact behind.
fn emit_json(json: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            fabric_power_sweep::write_atomic(std::path::Path::new(path), &format!("{json}\n"))
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn parse_seed(input: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = input
        .strip_prefix("0x")
        .or_else(|| input.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        input.parse()
    };
    parsed.map_err(|_| format!("invalid seed `{input}`"))
}

fn report_command(args: &[String]) -> Result<(), String> {
    known_flags(args, &["--in"])?;
    let path =
        flag_value(args, "--in")?.ok_or_else(|| "report needs `--in <FILE.json>`".to_string())?;
    let document = read_document(&path)?;
    print!("{}", report::format_document(&document));
    Ok(())
}

/// One `netlist-stats` row: a generated circuit class and what the standard
/// pass pipeline did to it.
#[derive(serde::Serialize)]
struct NetlistStatsRow {
    class: String,
    bus_width: usize,
    report: fabric_power_netlist::PipelineReport,
}

/// `fabric-power netlist-stats <CLASS> [--json]`: generate a Table 1 switch
/// circuit and print cell/net/level counts with per-pass reductions — the
/// quick way to see what the pass pipeline bought before characterizing.
fn netlist_stats(args: &[String]) -> Result<(), String> {
    use fabric_power_netlist::circuits::{
        banyan_binary_switch, batcher_sorting_switch, crossbar_crosspoint, n_input_mux,
    };
    use fabric_power_netlist::{PassPipeline, SwitchClass};

    // The Table 1 switch set: 32-bit payload buses, 5-bit sort addresses
    // (log2 of the paper's 32-port fabrics), matching the `table1` and
    // `passes_bench` binaries.
    const BUS_WIDTH: usize = 32;
    const ADDRESS_BITS: usize = 5;

    let mut json = false;
    let mut rest = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            _ => rest.push(arg.clone()),
        }
    }
    known_flags_with_positionals(&rest, 1, &[])?;
    let class_arg = rest.first().ok_or_else(|| {
        "netlist-stats needs a class: crosspoint, banyan, batcher, mux<N> or all".to_string()
    })?;
    let classes: Vec<SwitchClass> = match class_arg.as_str() {
        "crosspoint" => vec![SwitchClass::CrossbarCrosspoint],
        "banyan" => vec![SwitchClass::BanyanBinary],
        "batcher" => vec![SwitchClass::BatcherSorting],
        "all" => vec![
            SwitchClass::CrossbarCrosspoint,
            SwitchClass::BanyanBinary,
            SwitchClass::BatcherSorting,
            SwitchClass::Mux { inputs: 4 },
            SwitchClass::Mux { inputs: 8 },
            SwitchClass::Mux { inputs: 16 },
            SwitchClass::Mux { inputs: 32 },
        ],
        other => match other.strip_prefix("mux").and_then(|n| n.parse().ok()) {
            Some(inputs) if inputs >= 2 => vec![SwitchClass::Mux { inputs }],
            _ => {
                return Err(format!(
                    "unknown class `{other}` (expected crosspoint, banyan, batcher, mux<N> or all)"
                ))
            }
        },
    };

    let pipeline = PassPipeline::standard();
    let mut rows = Vec::new();
    for class in classes {
        let circuit = match class {
            SwitchClass::CrossbarCrosspoint => crossbar_crosspoint(BUS_WIDTH),
            SwitchClass::BanyanBinary => banyan_binary_switch(BUS_WIDTH),
            SwitchClass::BatcherSorting => batcher_sorting_switch(BUS_WIDTH, ADDRESS_BITS),
            SwitchClass::Mux { inputs } => n_input_mux(inputs, BUS_WIDTH),
        }
        .map_err(|e| format!("generating {class}: {e}"))?;
        let optimized = pipeline
            .run(&circuit.netlist)
            .map_err(|e| format!("optimizing {class}: {e}"))?;
        rows.push(NetlistStatsRow {
            class: class.to_string(),
            bus_width: BUS_WIDTH,
            report: optimized.report().clone(),
        });
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    for row in &rows {
        let report = &row.report;
        let reduction =
            100.0 * (1.0 - report.final_cells as f64 / report.original_cells.max(1) as f64);
        println!("{} ({}-bit bus)", row.class, row.bus_width);
        println!(
            "  cells {} -> {} ({reduction:.1}% removed), nets {} -> {}, {} levels",
            report.original_cells,
            report.final_cells,
            report.original_nets,
            report.final_nets,
            report.levels
        );
        for pass in &report.passes {
            println!(
                "    {:<16} -{:<5} cells  -{:<5} nets  ({} cells, {} nets after)",
                pass.pass, pass.cells_removed, pass.nets_removed, pass.cells_after, pass.nets_after
            );
        }
    }
    Ok(())
}
