//! The `fabric-power` CLI: the user-facing entry point to the sweep engine.
//!
//! ```text
//! fabric-power list-scenarios
//! fabric-power sweep --scenario paper-fig9 --threads 8 --out fig9.json
//! fabric-power report --in fig9.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fabric_power_sweep::{report, ScenarioRegistry, SeedStrategy, SweepDocument, SweepEngine};

const USAGE: &str = "\
fabric-power — switch-fabric power sweeps (DAC 2002 reproduction)

USAGE:
    fabric-power <COMMAND> [OPTIONS]

COMMANDS:
    list-scenarios                 List every registered scenario
    sweep --scenario <NAME>        Run a scenario's grid
        [--threads <N>]            Worker threads (default: all cores; results
                                   are identical for every thread count)
        [--seed <SEED>]            Override the scenario's base RNG seed
        [--seed-strategy <S>]      `shared` (default) or `per-cell`
        [--out <FILE.json>]        Write the JSON document here
        [--csv <FILE.csv>]         Also write a CSV table here
    report --in <FILE.json>        Summarize a previously emitted document
    help                           Show this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `fabric-power help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list-scenarios") => list_scenarios(),
        Some("sweep") => sweep(&args[1..]),
        Some("report") => report_command(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn list_scenarios() -> Result<(), String> {
    let registry = ScenarioRegistry::builtin();
    println!("{:<20} {:>7}  description", "scenario", "points");
    for scenario in registry.scenarios() {
        println!(
            "{:<20} {:>7}  {}",
            scenario.name,
            scenario.config.grid_size(),
            scenario.summary
        );
    }
    Ok(())
}

/// Pulls the value of `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return match iter.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(format!("`{flag}` needs a value")),
            };
        }
    }
    Ok(None)
}

fn known_flags(args: &[String], flags: &[&str]) -> Result<(), String> {
    let mut expect_value = false;
    for arg in args {
        if expect_value {
            expect_value = false;
            continue;
        }
        if flags.contains(&arg.as_str()) {
            expect_value = true;
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok(())
}

fn sweep(args: &[String]) -> Result<(), String> {
    known_flags(
        args,
        &[
            "--scenario",
            "--threads",
            "--seed",
            "--seed-strategy",
            "--out",
            "--csv",
        ],
    )?;
    let name = flag_value(args, "--scenario")?
        .ok_or_else(|| "sweep needs `--scenario <NAME>`".to_string())?;
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get(&name).ok_or_else(|| {
        format!(
            "unknown scenario `{name}` (available: {})",
            registry.names().join(", ")
        )
    })?;

    let mut config = scenario.config.clone();
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = parse_seed(&seed)?;
    }

    let mut engine = SweepEngine::new();
    if let Some(threads) = flag_value(args, "--threads")? {
        engine = engine.with_threads(fabric_power_sweep::executor::parse_thread_count(&threads)?);
    }
    if let Some(strategy) = flag_value(args, "--seed-strategy")? {
        engine = engine.with_seed_strategy(SeedStrategy::parse(&strategy)?);
    }

    eprintln!(
        "running scenario `{}`: {} points on {} thread(s)...",
        scenario.name,
        config.grid_size(),
        engine.threads()
    );
    let started = std::time::Instant::now();
    let points = engine.run(&config).map_err(|e| e.to_string())?;
    eprintln!(
        "completed {} points in {:.2?}",
        points.len(),
        started.elapsed()
    );

    let document = SweepDocument {
        scenario: scenario.name.clone(),
        config,
        seed_strategy: engine.seed_strategy(),
        points,
    };

    let out = flag_value(args, "--out")?.map(PathBuf::from);
    let csv = flag_value(args, "--csv")?.map(PathBuf::from);
    match (&out, &csv) {
        (None, None) => {
            // No files requested: the JSON document goes to stdout.
            println!("{}", document.to_json_string().map_err(|e| e.to_string())?);
        }
        _ => {
            if let Some(path) = &out {
                document.write_json(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            if let Some(path) = &csv {
                document.write_csv(path).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
        }
    }
    Ok(())
}

fn parse_seed(input: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = input
        .strip_prefix("0x")
        .or_else(|| input.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        input.parse()
    };
    parsed.map_err(|_| format!("invalid seed `{input}`"))
}

fn report_command(args: &[String]) -> Result<(), String> {
    known_flags(args, &["--in"])?;
    let path =
        flag_value(args, "--in")?.ok_or_else(|| "report needs `--in <FILE.json>`".to_string())?;
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let document = SweepDocument::from_json_str(json.trim_end())
        .map_err(|e| format!("parsing {path}: {e}"))?;
    print!("{}", report::format_document(&document));
    Ok(())
}
