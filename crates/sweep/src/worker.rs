//! The worker side of a `fabric-power` work-server fleet: connect, claim,
//! execute, submit, repeat — until the server says drain.
//!
//! A worker is deliberately dumb: all scheduling intelligence (leases,
//! deadlines, requeueing, validation) lives in [`crate::server`].  The
//! worker's whole contract is "run the shard you were leased with
//! [`SweepEngine::run_shard_detached`] and ship the document back" — cells
//! arrive complete with plan-time seeds, so any worker at any thread count
//! produces bit-identical results.
//!
//! While a shard executes, the worker heartbeats: the shard runs on its own
//! thread with a [`fabric_power_obs::Progress`] probe attached, and the
//! connection thread periodically ships the probe's cell count to the server
//! as a [`Request::Heartbeat`].  That keeps the lease alive for as long as
//! the worker is demonstrably making progress, and feeds the per-worker
//! progress shown by `fabric-power status`.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use fabric_power_obs as obs;

use crate::config::ExperimentError;
use crate::engine::SweepEngine;
use crate::merge::ShardDocument;
use crate::plan::{PlanHeader, Shard};
use crate::protocol::{read_message, write_message, Request, Response, PROTOCOL_VERSION};

/// The obs target worker-side events are tagged with.
const TARGET: &str = "sweep.worker";

/// Tunables for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// When set, the handshake fails unless the server is serving exactly
    /// the plan with this content hash (`fabric-power worker --plan-hash`).
    pub expect_plan_hash: Option<String>,
    /// How many connection attempts to make, 100 ms apart, before giving up
    /// — lets a worker start before (or seconds after) its server.
    pub connect_attempts: u32,
    /// How often to heartbeat while a leased shard executes.  Keep it well
    /// under the server's lease timeout: every heartbeat renews the lease,
    /// so a progressing worker is never requeued mid-shard.
    pub heartbeat_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            expect_plan_hash: None,
            connect_attempts: 50,
            heartbeat_interval: Duration::from_secs(1),
        }
    }
}

/// What one worker session accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The id the server assigned this worker.
    pub worker: u64,
    /// Shards whose submission the server accepted.
    pub shards: usize,
    /// Total cells across those shards.
    pub cells: usize,
}

/// Why a worker session failed.
#[derive(Debug)]
pub enum WorkerError {
    /// Connecting, reading or writing failed.
    Io(std::io::Error),
    /// The server refused the handshake or a submission (version mismatch,
    /// stale plan hash, failed validation).
    Refused(String),
    /// Executing a leased shard failed.
    Execution(ExperimentError),
    /// The server answered with something the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "worker connection: {e}"),
            Self::Refused(reason) => write!(f, "server refused: {reason}"),
            Self::Execution(e) => write!(f, "running leased shard: {e}"),
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Runs one worker session against the server at `addr`, blocking until the
/// server drains the fleet (or the session fails).
///
/// # Errors
///
/// * [`WorkerError::Refused`] — the server rejected the handshake (protocol
///   version, stale `--plan-hash`) or a submission;
/// * [`WorkerError::Execution`] — a leased shard failed to run;
/// * [`WorkerError::Io`] / [`WorkerError::Protocol`] — transport trouble.
pub fn run_worker(
    addr: &str,
    engine: &SweepEngine,
    options: WorkerOptions,
) -> Result<WorkerReport, WorkerError> {
    let stream = connect_with_retry(addr, options.connect_attempts)?;
    stream.set_nodelay(true).ok();
    // Every server response is immediate (no long-running work happens on
    // the server side of a request), so a long silence means the server is
    // gone — fail rather than hang forever on a half-open connection.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = &stream;

    write_message(
        &mut writer,
        &Request::Hello {
            protocol: PROTOCOL_VERSION,
            plan_hash: options.expect_plan_hash,
        },
    )?;
    let (worker, plan_hash, header) = match expect_response(&mut reader)? {
        Response::Welcome {
            worker,
            plan_hash,
            header,
            ..
        } => (worker, plan_hash, header),
        Response::Error { message } => return Err(WorkerError::Refused(message)),
        other => {
            return Err(WorkerError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };

    let mut report = WorkerReport {
        worker,
        shards: 0,
        cells: 0,
    };
    loop {
        write_message(&mut writer, &Request::Claim { worker })?;
        match expect_response(&mut reader)? {
            Response::Lease { lease, shard } => {
                obs::info!(
                    TARGET,
                    "lease received",
                    worker = worker,
                    shard = shard.index,
                    cells = shard.cells.len(),
                );
                let document = run_shard_with_heartbeats(
                    engine,
                    &header,
                    &shard,
                    worker,
                    lease,
                    options.heartbeat_interval,
                    &mut reader,
                    &mut writer,
                )?;
                let cells = document.results.len();
                write_message(
                    &mut writer,
                    &Request::Submit {
                        worker,
                        lease,
                        plan_hash: plan_hash.clone(),
                        document: Box::new(document),
                    },
                )?;
                match expect_response(&mut reader)? {
                    Response::Accepted { .. } => {
                        report.shards += 1;
                        report.cells += cells;
                    }
                    // Someone else finished this shard while we held a
                    // revoked lease — not our problem, keep claiming.
                    Response::Stale { .. } => {}
                    Response::Rejected { reason } | Response::Error { message: reason } => {
                        return Err(WorkerError::Refused(reason))
                    }
                    other => {
                        return Err(WorkerError::Protocol(format!(
                            "expected a submission verdict, got {other:?}"
                        )))
                    }
                }
            }
            Response::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 1_000)));
            }
            Response::Drain => {
                let _ = write_message(&mut writer, &Request::Goodbye { worker });
                return Ok(report);
            }
            Response::Error { message } => return Err(WorkerError::Refused(message)),
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected response to Claim: {other:?}"
                )))
            }
        }
    }
}

/// Executes one leased shard on its own thread while the connection thread
/// heartbeats the probe's progress to the server every `interval`.
///
/// Heartbeats only happen *between* protocol exchanges of the claim/submit
/// loop and each one synchronously awaits its `Ack`, so the strictly
/// alternating request/response discipline of the protocol is preserved.
#[allow(clippy::too_many_arguments)] // connection plumbing, not configuration
fn run_shard_with_heartbeats(
    engine: &SweepEngine,
    header: &PlanHeader,
    shard: &Shard,
    worker: u64,
    lease: u64,
    interval: Duration,
    reader: &mut BufReader<TcpStream>,
    writer: &mut &TcpStream,
) -> Result<ShardDocument, WorkerError> {
    let probe = obs::Progress::new();
    let exec_engine = engine.clone().with_progress(probe.clone());
    let cells_total = shard.cells.len() as u64;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| exec_engine.run_shard_detached(header, shard));
        // Sleep in short steps so a finished shard is submitted promptly
        // even with a long heartbeat interval.
        let step = interval
            .min(Duration::from_millis(25))
            .max(Duration::from_millis(1));
        let mut since_heartbeat = Duration::ZERO;
        while !handle.is_finished() {
            std::thread::sleep(step);
            since_heartbeat += step;
            if since_heartbeat < interval {
                continue;
            }
            since_heartbeat = Duration::ZERO;
            let cells_done = probe.done();
            write_message(
                writer,
                &Request::Heartbeat {
                    worker,
                    lease,
                    shard: shard.index,
                    cells_done,
                    cells_total,
                },
            )?;
            match expect_response(reader)? {
                Response::Ack => {
                    obs::debug!(
                        TARGET,
                        "heartbeat acknowledged",
                        shard = shard.index,
                        cells_done = cells_done,
                        cells_total = cells_total,
                    );
                }
                Response::Error { message } | Response::Rejected { reason: message } => {
                    return Err(WorkerError::Refused(message));
                }
                other => {
                    return Err(WorkerError::Protocol(format!(
                        "expected Ack to a heartbeat, got {other:?}"
                    )));
                }
            }
        }
        match handle.join() {
            Ok(result) => result.map_err(WorkerError::Execution),
            // Propagate an execution-thread panic as if the shard had run
            // inline, as it did before heartbeats existed.
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Reads the next server response; a clean close mid-session is a protocol
/// error (the server always says `Drain` first).
fn expect_response(reader: &mut BufReader<TcpStream>) -> Result<Response, WorkerError> {
    read_message::<Response>(reader)?
        .ok_or_else(|| WorkerError::Protocol("server closed the connection mid-session".into()))
}

fn connect_with_retry(addr: &str, attempts: u32) -> Result<TcpStream, WorkerError> {
    let attempts = attempts.max(1);
    let mut last_error = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) => last_error = Some(error),
        }
    }
    Err(WorkerError::Io(
        last_error.expect("at least one connection attempt"),
    ))
}
