//! The worker side of a `fabric-power` work-server fleet: connect, claim,
//! execute, submit, repeat — until the server says drain.
//!
//! A worker is deliberately dumb: all scheduling intelligence (leases,
//! deadlines, requeueing, validation) lives in [`crate::server`].  The
//! worker's whole contract is "run the shard you were leased with
//! [`SweepEngine::run_shard_detached`] and ship the document back" — cells
//! arrive complete with plan-time seeds, so any worker at any thread count
//! produces bit-identical results.
//!
//! While a shard executes, the worker heartbeats: the shard runs on its own
//! thread with a [`fabric_power_obs::Progress`] probe attached, and the
//! connection thread periodically ships the probe's cell count to the server
//! as a [`Request::Heartbeat`].  That keeps the lease alive for as long as
//! the worker is demonstrably making progress, and feeds the per-worker
//! progress shown by `fabric-power status`.
//!
//! # Losing the server is not losing the drain
//!
//! A dropped connection mid-session (server crashed, server restarting with
//! `--resume`, a corrupted frame) does not fail the worker: the session is
//! *lost*, and [`run_worker`] dials back in with capped exponential backoff
//! and deterministic seeded jitter ([`BackoffSchedule`]), re-handshakes,
//! and picks up where it left off.  A shard that finished executing while
//! the wire was down is carried across the reconnect and resubmitted first
//! — deterministic execution makes a double submission harmless (`Stale`).
//! Only *verdicts* end a worker early: a server that refuses the handshake
//! or rejects a submission, or a shard whose execution itself fails.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use fabric_power_obs as obs;
use obs::metrics::names;

use crate::config::ExperimentError;
use crate::engine::SweepEngine;
use crate::merge::ShardDocument;
use crate::plan::{PlanHeader, Shard};
use crate::protocol::{read_message, write_message, Request, Response, PROTOCOL_VERSION};
use crate::retry::BackoffSchedule;

/// The obs target worker-side events are tagged with.
const TARGET: &str = "sweep.worker";

/// Tunables for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// When set, the handshake fails unless the server is serving exactly
    /// the plan with this content hash (`fabric-power worker --plan-hash`).
    pub expect_plan_hash: Option<String>,
    /// How many dial attempts (paced by `backoff`) before a worker that
    /// cannot reach its server at all gives up — lets a worker start before
    /// (or seconds after) its server.
    pub connect_attempts: u32,
    /// How many *consecutive* lost sessions (connection dropped mid-drain)
    /// to survive before giving up.  The counter resets whenever a session
    /// gets a submission accepted, so a long drain tolerates many scattered
    /// server restarts — only a server that stays unreachable exhausts it.
    pub reconnect_attempts: u32,
    /// Paces both the initial dial and every reconnect.  Seed it per worker
    /// to desynchronize a fleet all reconnecting to one restarted server.
    pub backoff: BackoffSchedule,
    /// Read *and* write deadline on the connection.  Every server response
    /// is immediate (no long-running work happens on the server side of a
    /// request), so a long silence means the server is gone — fail the
    /// session rather than hang forever on a half-open connection.
    pub io_timeout: Duration,
    /// How often to heartbeat while a leased shard executes.  Keep it well
    /// under the server's lease timeout: every heartbeat renews the lease,
    /// so a progressing worker is never requeued mid-shard.
    pub heartbeat_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            expect_plan_hash: None,
            connect_attempts: 20,
            reconnect_attempts: 8,
            backoff: BackoffSchedule::default(),
            io_timeout: Duration::from_secs(60),
            heartbeat_interval: Duration::from_secs(1),
        }
    }
}

/// What one worker run accomplished (across all its sessions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The id the server assigned this worker (the latest one, if the
    /// worker reconnected — ids are per-session).
    pub worker: u64,
    /// Shards whose submission the server accepted.
    pub shards: usize,
    /// Total cells across those shards.
    pub cells: usize,
    /// Sessions lost to a dropped connection and reestablished.
    pub reconnects: u32,
}

/// Why a worker run failed.
#[derive(Debug)]
pub enum WorkerError {
    /// Connecting, reading or writing failed beyond what the reconnect
    /// budget could absorb.
    Io(std::io::Error),
    /// The server refused the handshake or a submission (version mismatch,
    /// stale plan hash, failed validation).
    Refused(String),
    /// Executing a leased shard failed.
    Execution(ExperimentError),
    /// The server answered with something the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "worker connection: {e}"),
            Self::Refused(reason) => write!(f, "server refused: {reason}"),
            Self::Execution(e) => write!(f, "running leased shard: {e}"),
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A finished shard whose submission has not been *acknowledged* yet — the
/// one piece of state a worker carries across a reconnect, so work done
/// while the wire was down is never re-executed, just resubmitted.
#[derive(Debug)]
struct PendingSubmission {
    plan_hash: String,
    document: Box<ShardDocument>,
}

/// Runs one worker against the server at `addr`, blocking until the server
/// drains the fleet (or the worker fails for good).
///
/// Dropped connections are survived: the worker reconnects with backoff
/// (see [`WorkerOptions::reconnect_attempts`]) and resumes claiming, so a
/// server restarting under `serve --resume` keeps its fleet.
///
/// # Errors
///
/// * [`WorkerError::Refused`] — the server rejected the handshake (protocol
///   version, stale `--plan-hash`) or a submission;
/// * [`WorkerError::Execution`] — a leased shard failed to run;
/// * [`WorkerError::Io`] / [`WorkerError::Protocol`] — transport trouble
///   beyond the dial and reconnect budgets.
pub fn run_worker(
    addr: &str,
    engine: &SweepEngine,
    options: WorkerOptions,
) -> Result<WorkerReport, WorkerError> {
    let mut report = WorkerReport {
        worker: 0,
        shards: 0,
        cells: 0,
        reconnects: 0,
    };
    let mut pending: Option<PendingSubmission> = None;
    let mut consecutive_losses: u32 = 0;
    loop {
        let stream = connect_with_retry(addr, &options)?;
        let shards_before = report.shards;
        match run_session(&stream, engine, &options, &mut report, &mut pending) {
            Ok(()) => return Ok(report),
            Err(WorkerError::Io(error)) => {
                // The wire died, not the work: reconnect with backoff.  A
                // session that got a submission accepted demonstrably
                // reached a live server, so it refills the loss budget.
                if report.shards > shards_before {
                    consecutive_losses = 0;
                }
                consecutive_losses += 1;
                if consecutive_losses > options.reconnect_attempts {
                    return Err(WorkerError::Io(std::io::Error::new(
                        error.kind(),
                        format!(
                            "gave up after {consecutive_losses} consecutive lost \
                             sessions (last: {error})"
                        ),
                    )));
                }
                report.reconnects += 1;
                obs::metrics::counter(names::WORKER_RECONNECTS).increment();
                obs::warn!(
                    TARGET,
                    "session lost, reconnecting",
                    error = error.to_string(),
                    consecutive_losses = consecutive_losses,
                    budget = options.reconnect_attempts,
                );
                std::thread::sleep(options.backoff.delay(consecutive_losses));
            }
            Err(fatal) => return Err(fatal),
        }
    }
}

/// One connection's worth of the worker loop: handshake, resubmit any
/// pending document, then claim/execute/submit until `Drain`.
///
/// Returns `Ok(())` only on a clean drain.  Every [`WorkerError::Io`]
/// (dropped connection, timeout, unparseable frame, mid-session close) is a
/// *lost session* the caller may retry; other errors are verdicts and end
/// the worker.
fn run_session(
    stream: &TcpStream,
    engine: &SweepEngine,
    options: &WorkerOptions,
    report: &mut WorkerReport,
    pending: &mut Option<PendingSubmission>,
) -> Result<(), WorkerError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(options.io_timeout))?;
    stream.set_write_timeout(Some(options.io_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    write_message(
        &mut writer,
        &Request::Hello {
            protocol: PROTOCOL_VERSION,
            plan_hash: options.expect_plan_hash.clone(),
        },
    )?;
    let (worker, plan_hash, header) = match expect_response(&mut reader)? {
        Response::Welcome {
            worker,
            plan_hash,
            header,
            ..
        } => (worker, plan_hash, header),
        Response::Error { message } => return Err(WorkerError::Refused(message)),
        other => {
            return Err(WorkerError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };
    report.worker = worker;

    // A document finished while the previous session was down comes first —
    // before it lands (or is ruled stale) there is no point claiming more.
    if let Some(stash) = pending.take() {
        if stash.plan_hash == plan_hash {
            obs::info!(
                TARGET,
                "resubmitting shard finished before reconnect",
                worker = worker,
                shard = stash.document.shard_index,
            );
            let cells = stash.document.results.len();
            // Lease ids are per-server-session; 0 is honest here and the
            // server decides by shard state, not lease number.
            if submit_and_check(
                &mut reader,
                &mut writer,
                worker,
                0,
                &plan_hash,
                stash.document,
                pending,
            )? {
                report.shards += 1;
                report.cells += cells;
            }
        } else {
            // A different plan is being served now; the stashed document
            // belongs to a drain that no longer exists.
            obs::warn!(
                TARGET,
                "dropping pending shard: server now serves a different plan",
                shard = stash.document.shard_index,
            );
        }
    }

    loop {
        write_message(&mut writer, &Request::Claim { worker })?;
        match expect_response(&mut reader)? {
            Response::Lease { lease, shard } => {
                obs::info!(
                    TARGET,
                    "lease received",
                    worker = worker,
                    shard = shard.index,
                    cells = shard.cells.len(),
                );
                let (document, wire_alive) = run_shard_with_heartbeats(
                    engine,
                    &header,
                    &shard,
                    worker,
                    lease,
                    options.heartbeat_interval,
                    &mut reader,
                    &mut writer,
                )?;
                let cells = document.results.len();
                if !wire_alive {
                    // The connection died while the shard executed; the
                    // result is good, the session is not.  Stash the
                    // document and surface the loss so the caller
                    // reconnects and resubmits.
                    *pending = Some(PendingSubmission {
                        plan_hash: plan_hash.clone(),
                        document: Box::new(document),
                    });
                    return Err(WorkerError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "connection lost while the leased shard executed",
                    )));
                }
                if submit_and_check(
                    &mut reader,
                    &mut writer,
                    worker,
                    lease,
                    &plan_hash,
                    Box::new(document),
                    pending,
                )? {
                    report.shards += 1;
                    report.cells += cells;
                }
            }
            Response::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 1_000)));
            }
            Response::Drain => {
                let _ = write_message(&mut writer, &Request::Goodbye { worker });
                return Ok(());
            }
            Response::Error { message } => return Err(WorkerError::Refused(message)),
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected response to Claim: {other:?}"
                )))
            }
        }
    }
}

/// Ships one document and awaits the verdict; `Ok(true)` means accepted,
/// `Ok(false)` means stale (someone else's copy landed first).  If the wire
/// dies before the verdict arrives, the document is stashed in `pending` —
/// the server may or may not have recorded it, and resubmitting after the
/// reconnect resolves the ambiguity either way (`Accepted` or `Stale`).
fn submit_and_check(
    reader: &mut BufReader<TcpStream>,
    writer: &mut &TcpStream,
    worker: u64,
    lease: u64,
    plan_hash: &str,
    document: Box<ShardDocument>,
    pending: &mut Option<PendingSubmission>,
) -> Result<bool, WorkerError> {
    let verdict = (|| {
        write_message(
            writer,
            &Request::Submit {
                worker,
                lease,
                plan_hash: plan_hash.to_owned(),
                document: document.clone(),
            },
        )?;
        expect_response(reader)
    })();
    match verdict {
        Ok(Response::Accepted { .. }) => Ok(true),
        // Someone else finished this shard while we held a revoked lease —
        // not our problem, keep claiming.
        Ok(Response::Stale { .. }) => Ok(false),
        Ok(Response::Rejected { reason } | Response::Error { message: reason }) => {
            Err(WorkerError::Refused(reason))
        }
        Ok(other) => Err(WorkerError::Protocol(format!(
            "expected a submission verdict, got {other:?}"
        ))),
        Err(WorkerError::Io(e)) => {
            *pending = Some(PendingSubmission {
                plan_hash: plan_hash.to_owned(),
                document,
            });
            Err(WorkerError::Io(e))
        }
        Err(other) => Err(other),
    }
}

/// Executes one leased shard on its own thread while the connection thread
/// heartbeats the probe's progress to the server every `interval`.
///
/// Heartbeats only happen *between* protocol exchanges of the claim/submit
/// loop and each one synchronously awaits its `Ack`, so the strictly
/// alternating request/response discipline of the protocol is preserved.
///
/// Returns the document plus whether the wire survived: a heartbeat that
/// fails with an I/O error (server crashed mid-execution) stops the
/// heartbeating but **not** the execution — the nearly-finished shard is
/// still worth completing and resubmitting over a fresh connection.
#[allow(clippy::too_many_arguments)] // connection plumbing, not configuration
fn run_shard_with_heartbeats(
    engine: &SweepEngine,
    header: &PlanHeader,
    shard: &Shard,
    worker: u64,
    lease: u64,
    interval: Duration,
    reader: &mut BufReader<TcpStream>,
    writer: &mut &TcpStream,
) -> Result<(ShardDocument, bool), WorkerError> {
    let probe = obs::Progress::new();
    let exec_engine = engine.clone().with_progress(probe.clone());
    let cells_total = shard.cells.len() as u64;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| exec_engine.run_shard_detached(header, shard));
        // Sleep in short steps so a finished shard is submitted promptly
        // even with a long heartbeat interval.
        let step = interval
            .min(Duration::from_millis(25))
            .max(Duration::from_millis(1));
        let mut since_heartbeat = Duration::ZERO;
        let mut wire_alive = true;
        while !handle.is_finished() {
            std::thread::sleep(step);
            since_heartbeat += step;
            if since_heartbeat < interval || !wire_alive {
                continue;
            }
            since_heartbeat = Duration::ZERO;
            let cells_done = probe.done();
            match heartbeat_once(
                reader,
                writer,
                worker,
                lease,
                shard.index,
                cells_done,
                cells_total,
            ) {
                Ok(()) => {}
                Err(WorkerError::Io(e)) => {
                    // The server is gone (or the frame was mangled); let
                    // the shard finish — its lease will expire, but the
                    // deterministic result stays correct and resubmission
                    // after the reconnect settles it.
                    obs::warn!(
                        TARGET,
                        "heartbeat failed, finishing shard without a wire",
                        shard = shard.index,
                        error = e.to_string(),
                    );
                    wire_alive = false;
                }
                Err(fatal) => return Err(fatal),
            }
        }
        let document = match handle.join() {
            Ok(result) => result.map_err(WorkerError::Execution)?,
            // Propagate an execution-thread panic as if the shard had run
            // inline, as it did before heartbeats existed.
            Err(panic) => std::panic::resume_unwind(panic),
        };
        Ok((document, wire_alive))
    })
}

/// One heartbeat round trip.
fn heartbeat_once(
    reader: &mut BufReader<TcpStream>,
    writer: &mut &TcpStream,
    worker: u64,
    lease: u64,
    shard: usize,
    cells_done: u64,
    cells_total: u64,
) -> Result<(), WorkerError> {
    write_message(
        writer,
        &Request::Heartbeat {
            worker,
            lease,
            shard,
            cells_done,
            cells_total,
        },
    )?;
    match expect_response(reader)? {
        Response::Ack => {
            obs::debug!(
                TARGET,
                "heartbeat acknowledged",
                shard = shard,
                cells_done = cells_done,
                cells_total = cells_total,
            );
            Ok(())
        }
        Response::Error { message } | Response::Rejected { reason: message } => {
            Err(WorkerError::Refused(message))
        }
        other => Err(WorkerError::Protocol(format!(
            "expected Ack to a heartbeat, got {other:?}"
        ))),
    }
}

/// Reads the next server response; a clean close mid-session surfaces as an
/// I/O error (the server always says `Drain` before a *deliberate* close,
/// so an unannounced one means the server died — a lost session, not a
/// protocol verdict).
fn expect_response(reader: &mut BufReader<TcpStream>) -> Result<Response, WorkerError> {
    read_message::<Response>(reader)?.ok_or_else(|| {
        WorkerError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-session",
        ))
    })
}

/// Dials the server, pacing attempts with the worker's backoff schedule.
fn connect_with_retry(addr: &str, options: &WorkerOptions) -> Result<TcpStream, WorkerError> {
    let attempts = options.connect_attempts.max(1);
    let mut last_error = None;
    for attempt in 0..attempts {
        let delay = options.backoff.delay(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        if attempt > 0 {
            obs::metrics::counter(names::CONNECT_RETRIES).increment();
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) => last_error = Some(error),
        }
    }
    Err(WorkerError::Io(
        last_error.expect("at least one connection attempt"),
    ))
}
