//! Plain-text summaries of sweep documents, used by `fabric-power report`.

use crate::emit::SweepDocument;
use crate::sweeps::ThroughputSweep;

/// Renders a per-fabric-size power table plus headline observations for a
/// sweep document.
#[must_use]
pub fn format_document(document: &SweepDocument) -> String {
    // Reuse ThroughputSweep's point lookup and cheapest-architecture
    // selection so the CLI report and the programmatic API can never
    // diverge on matching tolerance or tie-breaks.
    let sweep = ThroughputSweep {
        points: document.points.clone(),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "scenario: {} ({} points, seed 0x{:X}, {} seeding)\n",
        document.scenario,
        document.points.len(),
        document.config.seed,
        match document.seed_strategy {
            crate::cell::SeedStrategy::Shared => "shared",
            crate::cell::SeedStrategy::PerCell => "per-cell",
        }
    ));

    for &ports in &document.config.port_counts {
        out.push_str(&format!("\n{ports}x{ports} fabric — average power [mW]\n"));
        out.push_str(&format!("{:<16}", "load"));
        for &load in &document.config.offered_loads {
            out.push_str(&format!("{:>12.0}%", load * 100.0));
        }
        out.push('\n');
        for &architecture in &document.config.architectures {
            out.push_str(&format!("{:<16}", architecture.slug()));
            for &load in &document.config.offered_loads {
                match sweep.power(architecture, ports, load) {
                    Some(power) => {
                        out.push_str(&format!("{:>13.3}", power.as_milliwatts()));
                    }
                    None => out.push_str(&format!("{:>13}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{ports}x{ports} fabric — latency [cycles] (mean p50/p95/p99)\n"
        ));
        out.push_str(&format!("{:<16}", "load"));
        for &load in &document.config.offered_loads {
            out.push_str(&format!("{:>17.0}%", load * 100.0));
        }
        out.push('\n');
        for &architecture in &document.config.architectures {
            out.push_str(&format!("{:<16}", architecture.slug()));
            for &load in &document.config.offered_loads {
                match sweep.point(architecture, ports, load) {
                    Some(point) => out.push_str(&format!(
                        "{:>18}",
                        format!(
                            "{:.1} {:.0}/{:.0}/{:.0}",
                            point.average_latency_cycles,
                            point.latency_p50,
                            point.latency_p95,
                            point.latency_p99
                        )
                    )),
                    None => out.push_str(&format!("{:>18}", "-")),
                }
            }
            out.push('\n');
        }
        for &load in &document.config.offered_loads {
            if let Some(cheapest) = sweep.cheapest(ports, load) {
                out.push_str(&format!(
                    "  cheapest at {:.0}% load: {}\n",
                    load * 100.0,
                    cheapest.slug()
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::engine::SweepEngine;

    #[test]
    fn report_mentions_every_architecture_and_size() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.1, 0.3],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "report-test".into(),
            config: config.clone(),
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points,
        };
        let text = format_document(&document);
        assert!(text.contains("4x4 fabric"));
        for architecture in &config.architectures {
            assert!(text.contains(architecture.slug()), "{architecture}");
        }
        assert!(text.contains("cheapest at 10% load"));
    }

    #[test]
    fn report_prints_latency_columns_with_percentiles() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.3],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "latency-report-test".into(),
            config,
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points: points.clone(),
        };
        let text = format_document(&document);
        assert!(text.contains("latency [cycles] (mean p50/p95/p99)"));
        // The table carries the actual measured values, not placeholders.
        let point = &points[0];
        assert!(text.contains(&format!(
            "{:.1} {:.0}/{:.0}/{:.0}",
            point.average_latency_cycles, point.latency_p50, point.latency_p95, point.latency_p99
        )));
    }
}
