//! Plain-text summaries of sweep documents, used by `fabric-power report`.

use crate::emit::SweepDocument;
use crate::sweeps::ThroughputSweep;

/// Renders a per-fabric-size power table plus headline observations for a
/// sweep document.
#[must_use]
pub fn format_document(document: &SweepDocument) -> String {
    // Reuse ThroughputSweep's point lookup and cheapest-architecture
    // selection so the CLI report and the programmatic API can never
    // diverge on matching tolerance or tie-breaks.
    let sweep = ThroughputSweep {
        points: document.points.clone(),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "scenario: {} ({} points, seed 0x{:X}, {} seeding)\n",
        document.scenario,
        document.points.len(),
        document.config.seed,
        match document.seed_strategy {
            crate::cell::SeedStrategy::Shared => "shared",
            crate::cell::SeedStrategy::PerCell => "per-cell",
        }
    ));

    for &ports in &document.config.port_counts {
        out.push_str(&format!("\n{ports}x{ports} fabric — average power [mW]\n"));
        out.push_str(&format!("{:<16}", "load"));
        for &load in &document.config.offered_loads {
            out.push_str(&format!("{:>12.0}%", load * 100.0));
        }
        out.push('\n');
        for &architecture in &document.config.architectures {
            out.push_str(&format!("{:<16}", architecture.slug()));
            for &load in &document.config.offered_loads {
                match sweep.power(architecture, ports, load) {
                    Some(power) => {
                        out.push_str(&format!("{:>13.3}", power.as_milliwatts()));
                    }
                    None => out.push_str(&format!("{:>13}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{ports}x{ports} fabric — latency [cycles] (mean p50/p95/p99)\n"
        ));
        out.push_str(&format!("{:<16}", "load"));
        for &load in &document.config.offered_loads {
            out.push_str(&format!("{:>17.0}%", load * 100.0));
        }
        out.push('\n');
        for &architecture in &document.config.architectures {
            out.push_str(&format!("{:<16}", architecture.slug()));
            for &load in &document.config.offered_loads {
                match sweep.point(architecture, ports, load) {
                    Some(point) => out.push_str(&format!(
                        "{:>18}",
                        format!(
                            "{:.1} {:.0}/{:.0}/{:.0}",
                            point.average_latency_cycles,
                            point.latency_p50,
                            point.latency_p95,
                            point.latency_p99
                        )
                    )),
                    None => out.push_str(&format!("{:>18}", "-")),
                }
            }
            out.push('\n');
        }
        for &load in &document.config.offered_loads {
            if let Some(cheapest) = sweep.cheapest(ports, load) {
                out.push_str(&format!(
                    "  cheapest at {:.0}% load: {}\n",
                    load * 100.0,
                    cheapest.slug()
                ));
            }
        }
    }

    // Network aggregates, for sweeps with a mesh axis: one row per
    // networked point (1×1 cells report as plain single routers and carry
    // no row here).
    let networked: Vec<_> = document
        .points
        .iter()
        .filter_map(|point| point.network.as_ref().map(|stats| (point, stats)))
        .collect();
    if !networked.is_empty() {
        out.push_str("\nnetwork aggregates (per-hop energy over router + link traversals)\n");
        out.push_str(&format!(
            "{:<12}{:<18}{:>6}{:>10}{:>15}{:>14}{:>13}{:>10}{:>9}\n",
            "mesh",
            "routing",
            "load",
            "avg hops",
            "p50/p95/p99",
            "per-hop [pJ]",
            "link [pJ]",
            "sat thpt",
            "stalls"
        ));
        for (point, stats) in networked {
            out.push_str(&format!(
                "{:<12}{:<18}{:>5.0}%{:>10.2}{:>15}{:>14.3}{:>13.3}{:>10.3}{:>9}\n",
                format!(
                    "{}x{}{}",
                    stats.width,
                    stats.height,
                    if stats.torus { " torus" } else { "" }
                ),
                stats.routing.slug(),
                point.offered_load * 100.0,
                stats.average_hops,
                format!(
                    "{:.0}/{:.0}/{:.0}",
                    stats.hops_p50, stats.hops_p95, stats.hops_p99
                ),
                stats.per_hop_energy.as_picojoules(),
                stats.link_energy.as_picojoules(),
                stats.saturation_throughput,
                stats.credit_stalls,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::engine::SweepEngine;

    #[test]
    fn report_mentions_every_architecture_and_size() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.1, 0.3],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "report-test".into(),
            config: config.clone(),
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points,
        };
        let text = format_document(&document);
        assert!(text.contains("4x4 fabric"));
        for architecture in &config.architectures {
            assert!(text.contains(architecture.slug()), "{architecture}");
        }
        assert!(text.contains("cheapest at 10% load"));
    }

    #[test]
    fn report_appends_the_network_section_for_mesh_sweeps() {
        let config = ExperimentConfig {
            port_counts: vec![8],
            offered_loads: vec![0.2],
            architectures: vec![fabric_power_fabric::Architecture::Crossbar],
            warmup_cycles: 20,
            measure_cycles: 100,
            network: Some(crate::config::NetworkSweepConfig::meshes(&[(2, 2)])),
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "noc-report-test".into(),
            config,
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points,
        };
        let text = format_document(&document);
        assert!(text.contains("network aggregates"));
        assert!(text.contains("2x2"));
        assert!(text.contains("dimension-order"));
        // Single-router documents never grow the section.
        let plain = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2],
            warmup_cycles: 20,
            measure_cycles: 100,
            ..ExperimentConfig::quick()
        };
        let plain_points = SweepEngine::new().with_threads(1).run(&plain).unwrap();
        let plain_text = format_document(&SweepDocument {
            scenario: "plain".into(),
            config: plain,
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points: plain_points,
        });
        assert!(!plain_text.contains("network aggregates"));
    }

    #[test]
    fn report_prints_latency_columns_with_percentiles() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.3],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "latency-report-test".into(),
            config,
            seed_strategy: crate::cell::SeedStrategy::Shared,
            points: points.clone(),
        };
        let text = format_document(&document);
        assert!(text.contains("latency [cycles] (mean p50/p95/p99)"));
        // The table carries the actual measured values, not placeholders.
        let point = &points[0];
        assert!(text.contains(&format!(
            "{:.1} {:.0}/{:.0}/{:.0}",
            point.average_latency_cycles, point.latency_p50, point.latency_p95, point.latency_p99
        )));
    }
}
