//! Structured emitters: deterministic JSON and CSV documents for sweep
//! results.
//!
//! A [`SweepDocument`] bundles the scenario name, the exact configuration
//! that ran, and every measured point.  Serialization is fully
//! deterministic — object keys keep declaration order, floats render via
//! shortest-round-trip formatting — so the same sweep always produces the
//! same bytes, whatever the thread count (exercised by the workspace's
//! determinism tests).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::cell::{SeedStrategy, SweepPoint};
use crate::config::ExperimentConfig;

/// Writes `contents` to `path` atomically: the bytes land in a uniquely
/// named temporary file next to `path`, which is then renamed over it.
///
/// A crash mid-write leaves at worst an orphaned `*.tmp.*` file — never a
/// truncated document that a later `run-shard` / `merge` / `serve` fails on
/// confusingly.  Same pattern as the model store's persistence
/// (`fabric_power_fabric::provider`); the temp name is unique per call (pid
/// plus a process-wide nonce) so two threads writing the same path cannot
/// truncate each other mid-rename.
///
/// # Errors
///
/// Propagates I/O errors from the write or the rename; a failed rename
/// removes the temporary file before returning.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    static TMP_NONCE: AtomicU64 = AtomicU64::new(0);
    let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{nonce}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(error) => {
            let _ = std::fs::remove_file(&tmp);
            Err(error)
        }
    }
}

/// A complete, self-describing sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepDocument {
    /// The scenario name this sweep ran (or a free-form label).
    pub scenario: String,
    /// The exact configuration that produced the points.
    pub config: ExperimentConfig,
    /// How each cell's seed was derived from `config.seed` — without this a
    /// `per-cell` run could not be reproduced from its own document.
    pub seed_strategy: SeedStrategy,
    /// One point per grid cell, in canonical order.
    pub points: Vec<SweepPoint>,
}

/// The CSV header [`SweepDocument::to_csv_string`] writes.
pub const CSV_HEADER: &str = "architecture,ports,offered_load,measured_throughput,power_mw,\
switch_energy_j,buffer_energy_j,wire_energy_j,buffered_words,average_latency_cycles,\
latency_p50,latency_p95,latency_p99";

/// Extra columns appended to [`CSV_HEADER`] when at least one point carries
/// network aggregates (a sweep with a mesh axis).  Single-router documents
/// keep the original 13-column shape byte for byte.
pub const CSV_NETWORK_COLUMNS: &str = ",width,height,torus,routing,average_hops,\
hops_p50,hops_p95,hops_p99,link_energy_j,per_hop_energy_j,saturation_throughput,\
link_words,credit_stalls";

impl SweepDocument {
    /// Serializes to pretty JSON (deterministic bytes).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a document previously emitted by
    /// [`SweepDocument::to_json_string`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_json_str(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders the points as CSV (header plus one row per point).
    ///
    /// When any point carries network aggregates the
    /// [`CSV_NETWORK_COLUMNS`] are appended to the header and every row —
    /// empty fields on rows without them (a 1×1 network cell in a mixed
    /// document).  Documents without any stay in the original 13-column
    /// shape.
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let networked = self.points.iter().any(|point| point.network.is_some());
        let mut out = String::from(CSV_HEADER);
        if networked {
            out.push_str(CSV_NETWORK_COLUMNS);
        }
        out.push('\n');
        for point in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                point.architecture.slug(),
                point.ports,
                point.offered_load,
                point.measured_throughput,
                point.power.as_milliwatts(),
                point.switch_energy.as_joules(),
                point.buffer_energy.as_joules(),
                point.wire_energy.as_joules(),
                point.buffered_words,
                point.average_latency_cycles,
                point.latency_p50,
                point.latency_p95,
                point.latency_p99,
            ));
            if networked {
                match &point.network {
                    Some(stats) => out.push_str(&format!(
                        ",{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        stats.width,
                        stats.height,
                        stats.torus,
                        stats.routing.slug(),
                        stats.average_hops,
                        stats.hops_p50,
                        stats.hops_p95,
                        stats.hops_p99,
                        stats.link_energy.as_joules(),
                        stats.per_hop_energy.as_joules(),
                        stats.saturation_throughput,
                        stats.link_words,
                        stats.credit_stalls,
                    )),
                    None => out.push_str(&",".repeat(13)),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the JSON form to `path` (with a trailing newline),
    /// atomically — see [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Propagates serializer and I/O errors.
    pub fn write_json(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        write_atomic(path, &(self.to_json_string()? + "\n"))?;
        Ok(())
    }

    /// Writes the CSV form to `path`, atomically — see [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        write_atomic(path, &self.to_csv_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepEngine;

    fn quick_document() -> SweepDocument {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        SweepDocument {
            scenario: "unit-test".into(),
            config,
            seed_strategy: SeedStrategy::Shared,
            points,
        }
    }

    #[test]
    fn json_round_trips_losslessly() {
        let document = quick_document();
        let json = document.to_json_string().expect("serialize");
        let back = SweepDocument::from_json_str(&json).expect("deserialize");
        assert_eq!(document, back);
    }

    #[test]
    fn json_bytes_are_deterministic() {
        let a = quick_document().to_json_string().unwrap();
        let b = quick_document().to_json_string().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_point() {
        let document = quick_document();
        let csv = document.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + document.points.len());
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), 13);
        assert_eq!(fields[1], "4");
        // The three percentile columns sit after the mean latency.
        assert!(CSV_HEADER.ends_with("latency_p50,latency_p95,latency_p99"));
    }

    #[test]
    fn network_sweeps_append_the_network_csv_columns() {
        let config = ExperimentConfig {
            port_counts: vec![8],
            offered_loads: vec![0.2],
            architectures: vec![fabric_power_fabric::Architecture::Crossbar],
            warmup_cycles: 20,
            measure_cycles: 100,
            network: Some(crate::config::NetworkSweepConfig::meshes(&[(1, 1), (2, 2)])),
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let document = SweepDocument {
            scenario: "noc-csv".into(),
            config,
            seed_strategy: SeedStrategy::Shared,
            points,
        };
        let csv = document.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], format!("{CSV_HEADER}{CSV_NETWORK_COLUMNS}"));
        assert!(lines[0].ends_with("credit_stalls"));
        let columns = lines[0].split(',').count();
        // The 1×1 cell has no network aggregates: its row pads with empty
        // fields but keeps the column count.
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), columns, "{row}");
        }
        assert!(lines[1].ends_with(&",".repeat(13)), "1x1 row pads empty");
        let multi: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(multi[13], "2", "width column");
        assert_eq!(multi[14], "2", "height column");
        assert_eq!(multi[16], "dimension-order");
        // The JSON form round-trips the aggregates losslessly.
        let back = SweepDocument::from_json_str(&document.to_json_string().unwrap()).unwrap();
        assert_eq!(back, document);
        assert!(back.points[0].network.is_none());
        assert!(back.points[1].network.is_some());
    }

    #[test]
    fn documents_without_percentile_fields_still_parse() {
        // A point as emitted before the latency-percentile columns existed:
        // no latency_p50/p95/p99 keys.  `#[serde(default)]` reads them as 0
        // instead of rejecting the whole document.
        let legacy = r#"{
            "architecture": "Crossbar",
            "ports": 4,
            "offered_load": 0.2,
            "measured_throughput": 0.19,
            "power": 0.0015,
            "switch_energy": 1e-9,
            "buffer_energy": 0.0,
            "wire_energy": 1e-9,
            "buffered_words": 0,
            "average_latency_cycles": 17.5
        }"#;
        let point: crate::cell::SweepPoint = serde_json::from_str(legacy).expect("legacy parses");
        assert_eq!(point.average_latency_cycles, 17.5);
        assert_eq!(point.latency_p50, 0.0);
        assert_eq!(point.latency_p95, 0.0);
        assert_eq!(point.latency_p99, 0.0);
    }

    #[test]
    fn atomic_writes_replace_and_leave_no_temp_files() {
        let dir =
            std::env::temp_dir().join(format!("fabric-power-emit-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_atomic(&path, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        // Overwriting an existing file goes through the same rename.
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        // Nothing but the target remains — no stray temp files.
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["doc.json".to_string()]);
        // A write into a missing directory fails without inventing files.
        let missing = dir.join("no-such-dir").join("doc.json");
        assert!(write_atomic(&missing, "x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn files_round_trip_through_disk() {
        let document = quick_document();
        let dir = std::env::temp_dir();
        let json_path = dir.join("fabric_power_sweep_emit_test.json");
        let csv_path = dir.join("fabric_power_sweep_emit_test.csv");
        document.write_json(&json_path).expect("write json");
        document.write_csv(&csv_path).expect("write csv");
        let json = std::fs::read_to_string(&json_path).expect("read json");
        let back = SweepDocument::from_json_str(json.trim_end()).expect("parse");
        assert_eq!(document, back);
        assert!(std::fs::read_to_string(&csv_path)
            .expect("read csv")
            .starts_with("architecture,"));
        let _ = std::fs::remove_file(json_path);
        let _ = std::fs::remove_file(csv_path);
    }
}
