//! A self-scheduling parallel map over a fixed work list.
//!
//! Worker threads pull the next unclaimed item from a shared atomic cursor
//! (work-stealing in the degenerate-but-effective "steal from one shared
//! deque" form): a thread that draws short cells simply comes back for more,
//! so load balances dynamically without any up-front partitioning.  Results
//! are written back **by item index**, which makes the output order — and
//! therefore anything serialized from it — independent of thread count and
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `threads` worker threads, preserving item
/// order in the returned vector.
///
/// `threads == 1` (or a single item) runs inline on the calling thread with
/// no synchronization at all, so the sequential path stays as cheap as a
/// plain loop.
///
/// # Panics
///
/// Panics if `threads == 0` or if a worker thread panics.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "executor needs at least one thread");
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            break;
                        };
                        local.push((index, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("sweep worker thread panicked"))
            .collect()
    });

    for (index, result) in collected.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "cell {index} computed twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("cell {index} never computed")))
        .collect()
}

/// Parses a user-supplied `--threads` value, shared by the `fabric-power`
/// CLI and the figure-regeneration binaries so the flag's semantics cannot
/// drift between them.
///
/// # Errors
///
/// Returns a message when the value is not a positive integer.
pub fn parse_thread_count(value: &str) -> Result<usize, String> {
    let threads: usize = value
        .parse()
        .map_err(|_| format!("invalid thread count `{value}`"))?;
    if threads == 0 {
        return Err("`--threads` must be at least 1".into());
    }
    Ok(threads)
}

/// The number of worker threads to use when the caller does not specify one:
/// the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |&x| x * x);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let results = parallel_map(&items, 8, |&i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(results.len(), 500);
    }

    #[test]
    fn single_item_runs_inline() {
        let results = parallel_map(&[41], 8, |&x| x + 1);
        assert_eq!(results, vec![42]);
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = parallel_map(&[1], 0, |&x: &i32| x);
    }
}
