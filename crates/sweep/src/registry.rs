//! The scenario registry: named workloads mapping to full experiment
//! configurations, serializable to and from JSON.
//!
//! Scenarios are how users talk to the `fabric-power` CLI ("run
//! `paper-fig9`") and how future workloads get added without touching code
//! that consumes them: register a name, get orchestration, emission and
//! reporting for free.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::Architecture;
use fabric_power_router::traffic::TrafficPattern;

use crate::config::{ExperimentConfig, ModelSource, NetworkSweepConfig};

/// One named workload: a full experiment configuration plus a summary line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The registry key (kebab-case, e.g. `paper-fig9`).
    pub name: String,
    /// One-line description shown by `fabric-power list-scenarios`.
    pub summary: String,
    /// The grid this scenario expands to.
    pub config: ExperimentConfig,
}

/// An ordered collection of named scenarios.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in scenarios: the paper's figures plus the extended traffic
    /// patterns.
    #[must_use]
    pub fn builtin() -> Self {
        let mut registry = Self::new();

        registry.register(Scenario {
            name: "paper-fig9".into(),
            summary:
                "Figure 9: power vs. throughput, 4 architectures x {4,8,16,32} ports x 5 loads"
                    .into(),
            config: ExperimentConfig::paper(),
        });
        registry.register(Scenario {
            name: "paper-fig10".into(),
            summary: "Figure 10: power vs. ports at the paper's fixed 50% offered load".into(),
            config: ExperimentConfig {
                offered_loads: vec![0.50],
                ..ExperimentConfig::paper()
            },
        });
        registry.register(Scenario {
            name: "quick".into(),
            summary: "Reduced smoke grid ({4,8} ports, 3 loads, short windows)".into(),
            config: ExperimentConfig::quick(),
        });
        registry.register(Scenario {
            name: "derived-quick".into(),
            summary: "Quick grid with fully derived energy models (gate-level characterization; \
                 pairs with `--model-cache`)"
                .into(),
            config: ExperimentConfig {
                model_source: ModelSource::Derived,
                ..ExperimentConfig::quick()
            },
        });
        registry.register(Scenario {
            name: "hotspot-ablation".into(),
            summary: "30% of traffic aimed at port 0, {8,16} ports (beyond-paper ablation)".into(),
            config: ExperimentConfig {
                port_counts: vec![8, 16],
                pattern: TrafficPattern::Hotspot {
                    port: 0,
                    fraction: 0.3,
                },
                ..ExperimentConfig::paper()
            },
        });
        registry.register(Scenario {
            name: "tornado".into(),
            summary: "Tornado permutation (half-span destinations), contention-free at the arbiter"
                .into(),
            config: ExperimentConfig {
                pattern: TrafficPattern::Tornado,
                ..ExperimentConfig::paper()
            },
        });
        registry.register(Scenario {
            name: "bit-complement".into(),
            summary: "Bit-complement permutation (destination = !source)".into(),
            config: ExperimentConfig {
                pattern: TrafficPattern::BitComplement,
                ..ExperimentConfig::paper()
            },
        });
        registry.register(Scenario {
            name: "bursty".into(),
            summary: "Two-state on/off traffic: ON 80%, OFF 5%, 400-cycle mean bursts".into(),
            config: ExperimentConfig {
                // The state loads drive bursty traffic; the swept offered
                // load is a nominal label here (see TrafficPattern::Bursty).
                offered_loads: vec![0.425],
                pattern: TrafficPattern::Bursty {
                    on_load: 0.80,
                    off_load: 0.05,
                    mean_burst: 400.0,
                },
                ..ExperimentConfig::paper()
            },
        });

        // The network-of-routers family: every operating point is a mesh (or
        // torus) of radix-8 crossbar routers; `port_counts` is the per-node
        // fabric radix and `offered_loads` the injection rate at each node's
        // local port.  Patterns address *nodes*, not ports.
        let noc_base = ExperimentConfig {
            port_counts: vec![8],
            architectures: vec![Architecture::Crossbar],
            ..ExperimentConfig::paper()
        };
        registry.register(Scenario {
            name: "noc-quick".into(),
            summary: "NoC smoke grid: 2x2 and 4x4 meshes of radix-8 crossbars, short windows"
                .into(),
            config: ExperimentConfig {
                offered_loads: vec![0.10, 0.30],
                warmup_cycles: 100,
                measure_cycles: 600,
                network: Some(NetworkSweepConfig::meshes(&[(2, 2), (4, 4)])),
                ..noc_base.clone()
            },
        });
        registry.register(Scenario {
            name: "noc-uniform".into(),
            summary: "Uniform-random node traffic over {2x2, 4x4, 8x8} meshes".into(),
            config: ExperimentConfig {
                network: Some(NetworkSweepConfig::meshes(&[(2, 2), (4, 4), (8, 8)])),
                ..noc_base.clone()
            },
        });
        registry.register(Scenario {
            name: "noc-hotspot".into(),
            summary: "30% of all node traffic aimed at node 0 of a {4x4, 8x8} mesh".into(),
            config: ExperimentConfig {
                pattern: TrafficPattern::Hotspot {
                    port: 0,
                    fraction: 0.3,
                },
                network: Some(NetworkSweepConfig::meshes(&[(4, 4), (8, 8)])),
                ..noc_base.clone()
            },
        });
        registry.register(Scenario {
            name: "noc-transpose".into(),
            summary: "Transpose permutation (node r*k+c -> c*k+r) over {4x4, 8x8} meshes".into(),
            config: ExperimentConfig {
                pattern: TrafficPattern::Transpose,
                network: Some(NetworkSweepConfig::meshes(&[(4, 4), (8, 8)])),
                ..noc_base
            },
        });

        registry
    }

    /// Adds a scenario, replacing any existing scenario with the same name.
    pub fn register(&mut self, scenario: Scenario) {
        if let Some(existing) = self.scenarios.iter_mut().find(|s| s.name == scenario.name) {
            *existing = scenario;
        } else {
            self.scenarios.push(scenario);
        }
    }

    /// Looks up a scenario by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in registration order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// All scenario names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// Serializes the registry to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Rebuilds a registry from JSON produced by
    /// [`ScenarioRegistry::to_json`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_the_paper_and_the_extended_patterns() {
        let registry = ScenarioRegistry::builtin();
        for name in [
            "paper-fig9",
            "paper-fig10",
            "quick",
            "derived-quick",
            "hotspot-ablation",
            "tornado",
            "bit-complement",
            "bursty",
            "noc-quick",
            "noc-uniform",
            "noc-hotspot",
            "noc-transpose",
        ] {
            assert!(registry.get(name).is_some(), "missing scenario `{name}`");
        }
        // The noc family sweeps meshes of radix-8 crossbars.
        let noc = registry.get("noc-uniform").unwrap();
        let network = noc.config.network.as_ref().expect("network axis");
        assert_eq!(network.meshes.len(), 3);
        assert_eq!(noc.config.port_counts, vec![8]);
        assert_eq!(noc.config.grid_size(), 3 * 5, "3 meshes x 1 arch x 5 loads");
        assert_eq!(
            registry.get("derived-quick").unwrap().config.model_source,
            ModelSource::Derived
        );
        assert_eq!(
            registry.get("paper-fig9").unwrap().config.grid_size(),
            4 * 4 * 5
        );
        assert_eq!(
            registry.get("paper-fig10").unwrap().config.offered_loads,
            vec![0.50]
        );
        assert!(registry.get("nonexistent").is_none());
    }

    #[test]
    fn registry_round_trips_through_json() {
        let registry = ScenarioRegistry::builtin();
        let json = registry.to_json().expect("serialize");
        let back = ScenarioRegistry::from_json(&json).expect("deserialize");
        assert_eq!(registry, back);
    }

    #[test]
    fn register_replaces_by_name() {
        let mut registry = ScenarioRegistry::builtin();
        let count = registry.scenarios().len();
        let mut custom = registry.get("quick").unwrap().clone();
        custom.summary = "replaced".into();
        registry.register(custom);
        assert_eq!(registry.scenarios().len(), count);
        assert_eq!(registry.get("quick").unwrap().summary, "replaced");
    }
}
