//! The Figure 9 / Figure 10 datasets, as thin views over the sweep engine.
//!
//! `ThroughputSweep::run` keeps the exact behaviour of the original
//! sequential implementation (same grid order, same shared seed per point)
//! while delegating the evaluation to [`SweepEngine`] — which runs the cells
//! in parallel and shares one energy model per fabric size across threads.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::Architecture;
use fabric_power_tech::units::Power;

use crate::cell::SweepPoint;
use crate::config::{ExperimentConfig, ExperimentError};
use crate::engine::SweepEngine;

/// The data behind Figure 9: power vs. offered throughput for every
/// architecture and fabric size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSweep {
    /// All simulated points.
    pub points: Vec<SweepPoint>,
}

impl ThroughputSweep {
    /// Runs the sweep described by `config` on every available core.
    ///
    /// Results are bit-identical to the original sequential implementation:
    /// the engine uses the shared-seed strategy and reports points in the
    /// same ports → architecture → load order.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run(config: &ExperimentConfig) -> Result<Self, ExperimentError> {
        Self::run_with(config, &SweepEngine::new())
    }

    /// Runs the sweep on a caller-configured engine (thread count, seed
    /// strategy).
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run_with(
        config: &ExperimentConfig,
        engine: &SweepEngine,
    ) -> Result<Self, ExperimentError> {
        Ok(Self {
            points: engine.run(config)?,
        })
    }

    /// Points of one architecture at one fabric size, ordered by offered load
    /// (one curve of Figure 9).
    #[must_use]
    pub fn curve(&self, architecture: Architecture, ports: usize) -> Vec<&SweepPoint> {
        let mut points: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|p| p.architecture == architecture && p.ports == ports)
            .collect();
        points.sort_by(|a, b| a.offered_load.total_cmp(&b.offered_load));
        points
    }

    /// The full measured point at one operating point, if it was simulated.
    #[must_use]
    pub fn point(
        &self,
        architecture: Architecture,
        ports: usize,
        offered_load: f64,
    ) -> Option<&SweepPoint> {
        self.points.iter().find(|p| {
            p.architecture == architecture
                && p.ports == ports
                && (p.offered_load - offered_load).abs() < 1e-9
        })
    }

    /// The power of one operating point, if it was simulated.
    #[must_use]
    pub fn power(
        &self,
        architecture: Architecture,
        ports: usize,
        offered_load: f64,
    ) -> Option<Power> {
        self.point(architecture, ports, offered_load)
            .map(|p| p.power)
    }

    /// The architecture with the lowest power at the given size and load.
    #[must_use]
    pub fn cheapest(&self, ports: usize, offered_load: f64) -> Option<Architecture> {
        self.points
            .iter()
            .filter(|p| p.ports == ports && (p.offered_load - offered_load).abs() < 1e-9)
            .min_by(|a, b| a.power.as_watts().total_cmp(&b.power.as_watts()))
            .map(|p| p.architecture)
    }
}

/// The data behind Figure 10: power vs. number of ports at one fixed load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortSweep {
    /// Offered load shared by every point (the paper uses 50 %).
    pub offered_load: f64,
    /// All simulated points.
    pub points: Vec<SweepPoint>,
}

impl PortSweep {
    /// Runs the port sweep at `offered_load` over the configured sizes.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run(config: &ExperimentConfig, offered_load: f64) -> Result<Self, ExperimentError> {
        Self::run_with(config, offered_load, &SweepEngine::new())
    }

    /// Runs the port sweep on a caller-configured engine.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run_with(
        config: &ExperimentConfig,
        offered_load: f64,
        engine: &SweepEngine,
    ) -> Result<Self, ExperimentError> {
        let mut single = config.clone();
        single.offered_loads = vec![offered_load];
        let sweep = ThroughputSweep::run_with(&single, engine)?;
        Ok(Self {
            offered_load,
            points: sweep.points,
        })
    }

    /// Power of one architecture at one size.
    #[must_use]
    pub fn power(&self, architecture: Architecture, ports: usize) -> Option<Power> {
        self.points
            .iter()
            .find(|p| p.architecture == architecture && p.ports == ports)
            .map(|p| p.power)
    }

    /// Relative power gap between the fully-connected fabric and the
    /// Batcher-Banyan at one size: `(P_batcher − P_fc) / P_batcher`.
    ///
    /// The paper reports this gap shrinking from 37 % at 4×4 to 20 % at
    /// 32×32 (§6 observation 2).
    #[must_use]
    pub fn fully_connected_vs_batcher_gap(&self, ports: usize) -> Option<f64> {
        let fully = self.power(Architecture::FullyConnected, ports)?;
        let batcher = self.power(Architecture::BatcherBanyan, ports)?;
        if batcher.as_watts() == 0.0 {
            return None;
        }
        Some((batcher.as_watts() - fully.as_watts()) / batcher.as_watts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The point-for-point equivalence between the engine-backed run and the
    // original sequential nested-loop implementation is pinned at workspace
    // level in `tests/sweep_determinism.rs`, which keeps the reference loop
    // in exactly one place.

    #[test]
    fn port_sweep_restricts_to_one_load() {
        let config = ExperimentConfig::quick();
        let sweep = PortSweep::run(&config, 0.3).expect("sweep");
        assert_eq!(
            sweep.points.len(),
            config.port_counts.len() * config.architectures.len()
        );
        assert!(sweep
            .points
            .iter()
            .all(|p| (p.offered_load - 0.3).abs() < 1e-12));
    }
}
