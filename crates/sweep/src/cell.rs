//! Sweep cells: one flattened operating point per cell, each carrying its
//! own deterministic RNG seed, plus the measured [`SweepPoint`] results.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::Architecture;
use fabric_power_noc::{NetworkConfig, NetworkStats};
use fabric_power_router::metrics::SparseLatencyHistogram;
use fabric_power_router::traffic::TrafficPattern;
use fabric_power_tech::units::{Energy, Power};

/// How each cell's simulation seed is derived from the experiment's base
/// seed.
///
/// Either way the seed is fixed when the grid is expanded — before any worker
/// thread starts — so results never depend on thread count or scheduling
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeedStrategy {
    /// Every cell uses the base seed unchanged.  This matches the original
    /// sequential `ThroughputSweep::run` implementation point for point, so
    /// it is the default.
    #[default]
    Shared,
    /// Each cell's seed is mixed from `(base_seed, architecture, ports,
    /// offered_load, pattern)`, decorrelating the traffic streams of
    /// different cells (two cells that differ only in architecture still
    /// share a seed stream under [`SeedStrategy::Shared`]).
    PerCell,
}

impl SeedStrategy {
    /// Parses the CLI spelling (`shared` / `per-cell`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(input: &str) -> Result<Self, String> {
        match input {
            "shared" => Ok(Self::Shared),
            "per-cell" => Ok(Self::PerCell),
            other => Err(format!(
                "unknown seed strategy `{other}` (expected `shared` or `per-cell`)"
            )),
        }
    }

    /// Derives the cell seed for one operating point.
    ///
    /// `network` is the cell's network coordinate, when the sweep has a mesh
    /// axis.  Single-router cells (`None`) derive exactly the seed they did
    /// before the network layer existed, under either strategy.
    #[must_use]
    pub fn cell_seed(
        self,
        base_seed: u64,
        architecture: Architecture,
        ports: usize,
        offered_load: f64,
        pattern: TrafficPattern,
        network: Option<&NetworkConfig>,
    ) -> u64 {
        match self {
            Self::Shared => base_seed,
            Self::PerCell => {
                let mut state = base_seed;
                state = mix(state, architecture_fingerprint(architecture));
                state = mix(state, ports as u64);
                state = mix(state, offered_load.to_bits());
                state = mix(state, pattern_fingerprint(pattern));
                if let Some(network) = network {
                    state = mix(state, network_fingerprint(network));
                }
                state
            }
        }
    }
}

/// SplitMix64-style combine step: deterministic, well-distributed, and
/// platform independent.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn architecture_fingerprint(architecture: Architecture) -> u64 {
    // The slug is stable across compilers and releases, unlike discriminant
    // values or type layout.
    fnv1a(architecture.slug().as_bytes())
}

/// A stable 64-bit fingerprint of a traffic pattern (variant tag plus every
/// parameter), used for per-cell seed derivation.
#[must_use]
pub fn pattern_fingerprint(pattern: TrafficPattern) -> u64 {
    match pattern {
        TrafficPattern::UniformRandom => fnv1a(b"uniform-random"),
        TrafficPattern::Hotspot { port, fraction } => {
            mix(mix(fnv1a(b"hotspot"), port as u64), fraction.to_bits())
        }
        TrafficPattern::Permutation { shift } => mix(fnv1a(b"permutation"), shift as u64),
        TrafficPattern::Tornado => fnv1a(b"tornado"),
        TrafficPattern::BitComplement => fnv1a(b"bit-complement"),
        TrafficPattern::Transpose => fnv1a(b"transpose"),
        TrafficPattern::Bursty {
            on_load,
            off_load,
            mean_burst,
        } => mix(
            mix(mix(fnv1a(b"bursty"), on_load.to_bits()), off_load.to_bits()),
            mean_burst.to_bits(),
        ),
    }
}

/// A stable 64-bit fingerprint of a cell's network coordinate (shape,
/// routing policy and every link knob), used for per-cell seed derivation on
/// sweeps with a mesh axis.
#[must_use]
pub fn network_fingerprint(network: &NetworkConfig) -> u64 {
    let mut state = fnv1a(b"network");
    state = mix(state, network.width as u64);
    state = mix(state, network.height as u64);
    state = mix(state, u64::from(network.torus));
    state = mix(state, fnv1a(network.routing.slug().as_bytes()));
    state = mix(state, network.link_depth as u64);
    state = mix(state, network.link_latency);
    state = mix(state, u64::from(network.link_grids));
    state
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One operating point of an expanded sweep grid, ready to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position in the grid's canonical order (ports → architecture → load),
    /// which is also the order results are reported in.
    pub index: usize,
    /// Architecture to simulate.
    pub architecture: Architecture,
    /// Fabric size.
    pub ports: usize,
    /// Offered load per port.
    pub offered_load: f64,
    /// Traffic destination pattern.
    pub pattern: TrafficPattern,
    /// The simulation seed this cell runs with (already derived; see
    /// [`SeedStrategy`]).
    pub seed: u64,
    /// The network this cell simulates, when the sweep has a mesh axis:
    /// `ports` is then the per-node fabric radix and `offered_load` the
    /// injection rate at each node's local port.  `None` (and omitted from
    /// JSON) for single-router cells, so pre-network plans keep their exact
    /// bytes and still parse.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub network: Option<NetworkConfig>,
}

/// The distinct fabric sizes a cell list touches, in first-seen order — the
/// sizes an executor must acquire energy models for before running it.
#[must_use]
pub fn unique_ports(cells: &[SweepCell]) -> Vec<usize> {
    let mut ports = Vec::new();
    for cell in cells {
        if !ports.contains(&cell.ports) {
            ports.push(cell.ports);
        }
    }
    ports
}

/// One simulated operating point: architecture × size × offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Architecture simulated.
    pub architecture: Architecture,
    /// Fabric size.
    pub ports: usize,
    /// Offered load per port.
    pub offered_load: f64,
    /// Throughput measured at the egress ports.
    pub measured_throughput: f64,
    /// Average switch-fabric power.
    pub power: Power,
    /// Node-switch energy share of the total.
    pub switch_energy: Energy,
    /// Internal-buffer energy share of the total.
    pub buffer_energy: Energy,
    /// Interconnect-wire energy share of the total.
    pub wire_energy: Energy,
    /// Words absorbed by internal buffers (interconnect contention).
    pub buffered_words: u64,
    /// Mean packet latency in cycles.
    pub average_latency_cycles: f64,
    /// Median (50th-percentile) packet latency in cycles, from the
    /// simulator's deterministic fixed-bin latency histogram.  Defaults keep
    /// documents emitted before the percentile columns existed parseable
    /// (they read back as 0).
    #[serde(default)]
    pub latency_p50: f64,
    /// 95th-percentile packet latency in cycles.
    #[serde(default)]
    pub latency_p95: f64,
    /// 99th-percentile packet latency in cycles.
    #[serde(default)]
    pub latency_p99: f64,
    /// The full latency distribution of this cell, sparse over non-zero
    /// bins (the ROADMAP "full latency histograms in emitted documents"
    /// follow-on).  Lossless: expanding it reproduces the simulator's dense
    /// histogram, and sparse histograms from several cells can be combined
    /// by expanding and merging.  Defaults (to empty) keep documents
    /// emitted before this field existed parseable.
    #[serde(default)]
    pub latency_histogram: SparseLatencyHistogram,
    /// Network-level aggregates (hop percentiles, link and per-hop energy,
    /// saturation throughput), for cells that ran a multi-node network.
    /// `None` — and omitted from the JSON — for single-router cells and 1×1
    /// networks, so single-router documents keep their exact bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub network: Option<NetworkStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_power_noc::RoutingPolicy;

    #[test]
    fn shared_strategy_passes_the_base_seed_through() {
        let seed = SeedStrategy::Shared.cell_seed(
            42,
            Architecture::Banyan,
            8,
            0.3,
            TrafficPattern::UniformRandom,
            None,
        );
        assert_eq!(seed, 42);
        // Shared stays the base seed on network cells too — the fleet's
        // seed-compatible default, whatever the axis.
        let networked = SeedStrategy::Shared.cell_seed(
            42,
            Architecture::Banyan,
            8,
            0.3,
            TrafficPattern::UniformRandom,
            Some(&NetworkConfig::mesh(4, 4)),
        );
        assert_eq!(networked, 42);
    }

    #[test]
    fn per_cell_seeds_differ_across_every_coordinate() {
        let base = |architecture, ports, load, pattern| {
            SeedStrategy::PerCell.cell_seed(0xDAC_2002, architecture, ports, load, pattern, None)
        };
        let reference = base(Architecture::Banyan, 8, 0.3, TrafficPattern::UniformRandom);
        assert_ne!(
            reference,
            base(
                Architecture::Crossbar,
                8,
                0.3,
                TrafficPattern::UniformRandom
            )
        );
        assert_ne!(
            reference,
            base(Architecture::Banyan, 16, 0.3, TrafficPattern::UniformRandom)
        );
        assert_ne!(
            reference,
            base(Architecture::Banyan, 8, 0.4, TrafficPattern::UniformRandom)
        );
        assert_ne!(
            reference,
            base(Architecture::Banyan, 8, 0.3, TrafficPattern::Tornado)
        );
        // And it is a pure function of its inputs.
        assert_eq!(
            reference,
            base(Architecture::Banyan, 8, 0.3, TrafficPattern::UniformRandom)
        );
    }

    #[test]
    fn pattern_fingerprints_separate_parameterized_variants() {
        let a = pattern_fingerprint(TrafficPattern::Hotspot {
            port: 0,
            fraction: 0.3,
        });
        let b = pattern_fingerprint(TrafficPattern::Hotspot {
            port: 1,
            fraction: 0.3,
        });
        let c = pattern_fingerprint(TrafficPattern::Hotspot {
            port: 0,
            fraction: 0.4,
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(
            pattern_fingerprint(TrafficPattern::Tornado),
            pattern_fingerprint(TrafficPattern::BitComplement)
        );
    }

    #[test]
    fn network_fingerprints_separate_every_knob() {
        let reference = NetworkConfig::mesh(4, 4);
        let fingerprint = network_fingerprint(&reference);
        assert_eq!(fingerprint, network_fingerprint(&NetworkConfig::mesh(4, 4)));
        for variant in [
            NetworkConfig::mesh(8, 4),
            NetworkConfig::mesh(4, 8),
            NetworkConfig::torus(4, 4),
            NetworkConfig::mesh(4, 4).with_routing(RoutingPolicy::MinimalAdaptive),
            NetworkConfig::mesh(4, 4).with_link_depth(2),
            NetworkConfig {
                link_latency: 2,
                ..NetworkConfig::mesh(4, 4)
            },
            NetworkConfig {
                link_grids: 32,
                ..NetworkConfig::mesh(4, 4)
            },
        ] {
            assert_ne!(fingerprint, network_fingerprint(&variant), "{variant:?}");
        }
        // And the per-cell strategy folds it into the seed.
        let seeded = |network| {
            SeedStrategy::PerCell.cell_seed(
                7,
                Architecture::Banyan,
                8,
                0.3,
                TrafficPattern::UniformRandom,
                network,
            )
        };
        assert_ne!(seeded(None), seeded(Some(&reference)));
        assert_ne!(
            seeded(Some(&reference)),
            seeded(Some(&NetworkConfig::mesh(8, 8)))
        );
    }

    #[test]
    fn seed_strategy_parses_cli_spellings() {
        assert_eq!(SeedStrategy::parse("shared").unwrap(), SeedStrategy::Shared);
        assert_eq!(
            SeedStrategy::parse("per-cell").unwrap(),
            SeedStrategy::PerCell
        );
        assert!(SeedStrategy::parse("banana").is_err());
    }
}
