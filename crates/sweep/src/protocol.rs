//! The work-server wire protocol: how a `fabric-power serve` dispatcher and
//! its `fabric-power worker` fleet talk.
//!
//! Line-delimited JSON over TCP: every message is one compact, externally
//! tagged JSON object terminated by a single `\n` (string escapes keep
//! payload newlines out of the framing).  The conversation is strictly
//! request/response, always initiated by the worker:
//!
//! ```text
//! worker                          server
//! ------                          ------
//! Hello  {protocol, plan_hash?}
//!                                 Welcome {worker, plan_hash, header, shard_count}
//! Claim  {worker}
//!                                 Lease {lease, shard} | Wait {retry_ms} | Drain
//! Heartbeat {worker, lease, shard, cells_done, cells_total}
//!                                 Ack
//! Submit {worker, lease, plan_hash, document}
//!                                 Accepted {remaining} | Stale {reason} | Rejected {reason}
//! Goodbye {worker}
//! ```
//!
//! `Error` can replace any server response (protocol violation, version or
//! plan-hash mismatch) and ends the session.  The `plan_hash` rides on both
//! the handshake and every submission: the server never merges a document
//! it cannot tie to the exact plan it is serving.
//!
//! Two observability messages sit outside the claim/submit loop.
//! `Heartbeat` reports how far a leased shard has progressed (and renews the
//! lease deadline — a worker grinding on a long shard is visibly alive, so
//! its lease should not expire under it).  `Status` asks for a
//! [`FleetStatus`] snapshot; uniquely, it is read-only and is also honored
//! as the *first* message of a connection, so `fabric-power status` can poll
//! a live server without claiming a worker id or affecting the fleet.
//!
//! Bump [`PROTOCOL_VERSION`] on any incompatible change; the server refuses
//! mismatched workers at `Hello` time instead of mis-parsing them later.
//! (The `Status`/`Heartbeat`/`Ack` messages were additive: a build without
//! them never sends them, and answers them with `Error` rather than
//! mis-parsing, so the version stayed 1.)

use std::io::{BufRead, Write};

use fabric_power_obs as obs;
use serde::{Deserialize, Serialize};

use crate::merge::ShardDocument;
use crate::plan::{PlanHeader, Shard};

/// The protocol revision this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// The largest frame either side will buffer.  The biggest legitimate
/// message is a `Submit` carrying a whole shard document — megabytes at
/// the extreme, nowhere near this — so anything longer is corruption or an
/// attacker, and is rejected with a typed error instead of buffering an
/// unbounded line.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Messages a worker sends to the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// The mandatory first message on a fresh connection.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`]; the server refuses mismatches.
        protocol: u32,
        /// When set, the server refuses the handshake unless it is serving
        /// exactly the plan with this [`crate::plan::SweepPlan::content_hash`]
        /// — how a worker pinned to a specific plan detects a stale or wrong
        /// server.
        plan_hash: Option<String>,
    },
    /// Ask for a shard to execute.
    Claim {
        /// The id the server assigned in `Welcome`.
        worker: u64,
    },
    /// Deliver the result of a leased shard.
    Submit {
        /// The id the server assigned in `Welcome`.
        worker: u64,
        /// The lease id the shard was granted under.
        lease: u64,
        /// The plan hash from `Welcome`, echoed back so a submission can
        /// never cross plans.
        plan_hash: String,
        /// The executed shard (boxed: a result document dwarfs every other
        /// message, and boxing keeps the request enum itself small).
        document: Box<ShardDocument>,
    },
    /// Polite end of session (closing the connection means the same).
    Goodbye {
        /// The id the server assigned in `Welcome`.
        worker: u64,
    },
    /// Progress report on a leased shard; also renews the lease deadline.
    /// Answered with [`Response::Ack`].
    Heartbeat {
        /// The id the server assigned in `Welcome`.
        worker: u64,
        /// The lease id the shard was granted under.
        lease: u64,
        /// The shard index being executed.
        shard: usize,
        /// Cells of the shard completed so far.
        cells_done: u64,
        /// Total cells in the shard (lets the server render progress even
        /// for a shard leased before it restarted — defensive; normally it
        /// knows this from its own plan).
        cells_total: u64,
    },
    /// Ask for a [`FleetStatus`] snapshot.  Read-only: honored both on an
    /// established worker session and as the first message of a fresh
    /// connection (no `Hello` needed), so status probes never consume
    /// worker ids.
    Status,
}

/// Messages the server sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// The id this worker must cite in every later request.
        worker: u64,
        /// Content hash of the plan being served.
        plan_hash: String,
        /// How many shards the plan has in total.
        shard_count: usize,
        /// The grid-wide context every shard of this plan shares.
        header: PlanHeader,
    },
    /// A shard to execute, under a lease.
    Lease {
        /// Identifies this grant; cite it in the `Submit`.
        lease: u64,
        /// The cells to run, complete with plan-time seeds.
        shard: Shard,
    },
    /// Nothing to lease right now (every remaining shard is out on lease);
    /// sleep and claim again.
    Wait {
        /// Suggested sleep before the next claim, in milliseconds.
        retry_ms: u64,
    },
    /// Every shard has been merged; the worker can exit.
    Drain,
    /// Submission validated and recorded.
    Accepted {
        /// Shards still outstanding after this one (0 = the plan is done).
        remaining: usize,
    },
    /// Submission ignored without prejudice (e.g. the shard was already
    /// completed by another worker after this one's lease was requeued).
    /// The worker keeps claiming.
    Stale {
        /// Why the submission was ignored.
        reason: String,
    },
    /// Submission failed validation — the worker's data cannot be trusted
    /// and it should stop.
    Rejected {
        /// The first validation failure.
        reason: String,
    },
    /// Heartbeat received (whether or not the lease is still current —
    /// a worker whose lease was requeued finds out at `Submit` time, as
    /// before).
    Ack,
    /// The fleet-status snapshot a [`Request::Status`] asked for.
    Status(FleetStatus),
    /// Protocol violation, version mismatch or plan-hash mismatch; the
    /// session is over.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// A point-in-time snapshot of a serve session, as answered to
/// [`Request::Status`].
///
/// Everything here is the server's own bookkeeping — shard slots, lease
/// table, heartbeat progress — so a status probe is cheap and read-only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// The scenario name of the plan being served.
    pub scenario: String,
    /// Content hash of the plan being served.
    pub plan_hash: String,
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Shards in the plan.
    pub shards_total: usize,
    /// Shards whose submission has been validated and recorded.
    pub shards_completed: usize,
    /// Shards currently out on a live lease.
    pub shards_leased: usize,
    /// Shards waiting to be leased (including requeued ones).
    pub shards_pending: usize,
    /// Cells in the whole plan.
    pub cells_total: usize,
    /// Cells completed: every cell of a completed shard, plus the
    /// heartbeat-reported progress of shards still out on lease.
    pub cells_completed: u64,
    /// Leases revoked so far (worker disconnected or missed its deadline).
    pub requeues: u64,
    /// Worker connections currently live, with their per-shard progress.
    pub workers: Vec<WorkerStatus>,
    /// Milliseconds since the server started serving.
    pub uptime_ms: u64,
    /// Whether every shard has been submitted (the server only lingers
    /// briefly once this is true).
    pub done: bool,
}

/// One live worker's place in a [`FleetStatus`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStatus {
    /// The id the server assigned in `Welcome`.
    pub worker: u64,
    /// The shard index this worker currently holds a lease on, if any.
    pub shard: Option<usize>,
    /// Heartbeat-reported cells completed of the leased shard.
    pub cells_done: u64,
    /// Total cells in the leased shard.
    pub cells_total: u64,
    /// Shards this worker has submitted successfully.
    pub shards_completed: u64,
}

/// Writes one message as a single JSON line and flushes.
///
/// # Errors
///
/// Propagates I/O errors; serializer failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn write_message<T: Serialize>(writer: &mut impl Write, message: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if obs::faults::active() {
        if let Some(fault) = obs::faults::next_wire_fault() {
            return inject_wire_fault(writer, &json, fault);
        }
    }
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    obs::metrics::counter(obs::metrics::names::WIRE_BYTES_SENT).add(json.len() as u64 + 1);
    Ok(())
}

/// Acts out one [`obs::faults::WireFault`] on the frame `json` — the slow
/// path [`write_message`] takes only when a fault plan is installed *and*
/// the schedule fired for this operation.
fn inject_wire_fault(
    writer: &mut impl Write,
    json: &str,
    fault: obs::faults::WireFault,
) -> std::io::Result<()> {
    use obs::faults::WireFault;
    match fault {
        // The connection died before anything left the socket.
        WireFault::Drop => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "fault injection: connection dropped",
        )),
        // Half a frame made it out, then the connection died.
        WireFault::Truncate => {
            let bytes = json.as_bytes();
            writer.write_all(&bytes[..bytes.len() / 2])?;
            let _ = writer.flush();
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "fault injection: truncated frame",
            ))
        }
        // The frame was corrupted in flight: the *sender* sees success,
        // only the receiver discovers the damage — exercising the
        // connection-level recovery path, not the sender's error path.
        WireFault::Garbage => {
            writer.write_all("\u{fffd}garbage-frame\u{fffd}\n".as_bytes())?;
            writer.flush()
        }
        WireFault::Delay(pause) => {
            std::thread::sleep(pause);
            writer.write_all(json.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            obs::metrics::counter(obs::metrics::names::WIRE_BYTES_SENT).add(json.len() as u64 + 1);
            Ok(())
        }
    }
}

/// Reads one JSON-line message; `Ok(None)` means the peer closed the
/// connection cleanly.  Frames longer than [`MAX_FRAME_BYTES`] are
/// rejected, never buffered.
///
/// # Errors
///
/// Propagates I/O errors (including read timeouts); an unparseable, empty
/// or oversized line surfaces as [`std::io::ErrorKind::InvalidData`].
pub fn read_message<T: Deserialize>(reader: &mut impl BufRead) -> std::io::Result<Option<T>> {
    read_message_with_limit(reader, MAX_FRAME_BYTES)
}

/// [`read_message`] with an explicit frame cap — tests use tiny caps to
/// exercise the oversized path without megabyte fixtures.
///
/// # Errors
///
/// As [`read_message`], with "oversized" meaning longer than `max_bytes`.
pub fn read_message_with_limit<T: Deserialize>(
    reader: &mut impl BufRead,
    max_bytes: usize,
) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    read_line_bounded(reader, &mut line, max_bytes)?;
    if line.is_empty() {
        return Ok(None);
    }
    parse_line(&line).map(Some)
}

/// Appends one `\n`-terminated line to `line`, refusing to buffer more
/// than `max_bytes` of it (the terminator is not counted).
///
/// Reads through at most `max_bytes + 1 - line.len()` further bytes: as
/// soon as the line provably exceeds the cap the read stops, so a
/// corruption-sized frame cannot balloon memory no matter how long it is.
/// On `Err` (including [`std::io::ErrorKind::WouldBlock`] from a
/// non-blocking reader) any bytes already read stay in `line`, so patient
/// callers can retry the same buffer — the server's poll loop does.
///
/// # Errors
///
/// Oversized lines surface as [`std::io::ErrorKind::InvalidData`]; other
/// errors come from the reader.  EOF before any terminator returns `Ok`
/// with whatever was read (possibly nothing).
pub fn read_line_bounded(
    reader: &mut impl BufRead,
    line: &mut String,
    max_bytes: usize,
) -> std::io::Result<usize> {
    loop {
        if line.len() > max_bytes {
            return Err(oversized(max_bytes));
        }
        // One byte past the cap: enough to *prove* the line is oversized
        // without buffering it.
        let allowance = (max_bytes + 1 - line.len()) as u64;
        let mut limited = std::io::Read::take(&mut *reader, allowance);
        let read = limited.read_line(line)?;
        if line.ends_with('\n') {
            return Ok(line.len());
        }
        if line.len() > max_bytes {
            return Err(oversized(max_bytes));
        }
        if read == 0 {
            return Ok(line.len()); // EOF (possibly mid-line)
        }
    }
}

fn oversized(max_bytes: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("protocol frame exceeds {max_bytes} bytes"),
    )
}

/// Parses one complete protocol line — the shared back half of
/// [`read_message`], also used by readers that manage their own line
/// buffering (the server's timeout-tolerant read loop).
///
/// # Errors
///
/// An empty or unparseable line surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn parse_line<T: Deserialize>(line: &str) -> std::io::Result<T> {
    obs::metrics::counter(obs::metrics::names::WIRE_BYTES_RECEIVED).add(line.len() as u64);
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "empty protocol line",
        ));
    }
    serde_json::from_str(trimmed).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("invalid protocol message: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SeedStrategy;
    use crate::config::ExperimentConfig;
    use crate::plan::{expand_cells, ShardStrategy, SweepPlan};

    fn sample_header() -> PlanHeader {
        SweepPlan::new(
            "protocol-test",
            ExperimentConfig::quick(),
            SeedStrategy::Shared,
            2,
            ShardStrategy::Contiguous,
        )
        .unwrap()
        .header()
    }

    fn sample_shard() -> Shard {
        let cells = expand_cells(&ExperimentConfig::quick(), SeedStrategy::Shared);
        Shard {
            index: 1,
            total: 2,
            cells: cells[..3].to_vec(),
        }
    }

    fn sample_document() -> ShardDocument {
        let header = sample_header();
        ShardDocument {
            scenario: header.scenario,
            config: header.config,
            seed_strategy: header.seed_strategy,
            shard_index: 1,
            shard_total: 2,
            cell_range: None,
            results: Vec::new(),
        }
    }

    fn requests() -> Vec<Request> {
        vec![
            Request::Hello {
                protocol: PROTOCOL_VERSION,
                plan_hash: Some("aa".repeat(16)),
            },
            Request::Hello {
                protocol: PROTOCOL_VERSION,
                plan_hash: None,
            },
            Request::Claim { worker: 3 },
            Request::Submit {
                worker: 3,
                lease: 17,
                plan_hash: "bb".repeat(16),
                document: Box::new(sample_document()),
            },
            Request::Goodbye { worker: 3 },
            Request::Heartbeat {
                worker: 3,
                lease: 17,
                shard: 1,
                cells_done: 4,
                cells_total: 9,
            },
            Request::Status,
        ]
    }

    fn sample_status() -> FleetStatus {
        FleetStatus {
            scenario: "protocol-test".into(),
            plan_hash: "dd".repeat(16),
            protocol: PROTOCOL_VERSION,
            shards_total: 2,
            shards_completed: 1,
            shards_leased: 1,
            shards_pending: 0,
            cells_total: 18,
            cells_completed: 13,
            requeues: 1,
            workers: vec![
                WorkerStatus {
                    worker: 1,
                    shard: Some(1),
                    cells_done: 4,
                    cells_total: 9,
                    shards_completed: 1,
                },
                WorkerStatus {
                    worker: 2,
                    shard: None,
                    cells_done: 0,
                    cells_total: 0,
                    shards_completed: 0,
                },
            ],
            uptime_ms: 1234,
            done: false,
        }
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Welcome {
                worker: 3,
                plan_hash: "cc".repeat(16),
                shard_count: 2,
                header: sample_header(),
            },
            Response::Lease {
                lease: 17,
                shard: sample_shard(),
            },
            Response::Wait { retry_ms: 100 },
            Response::Drain,
            Response::Accepted { remaining: 1 },
            Response::Stale {
                reason: "shard 1 was already submitted".into(),
            },
            Response::Rejected {
                reason: "cell range mismatch".into(),
            },
            Response::Ack,
            Response::Status(sample_status()),
            Response::Error {
                message: "protocol version 9 not supported".into(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips_as_one_json_line() {
        for request in requests() {
            let json = serde_json::to_string(&request).expect("serialize");
            assert!(!json.contains('\n'), "framing requires one line: {json}");
            let back: Request = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, request);
        }
    }

    #[test]
    fn every_response_round_trips_as_one_json_line() {
        for response in responses() {
            let json = serde_json::to_string(&response).expect("serialize");
            assert!(!json.contains('\n'), "framing requires one line: {json}");
            let back: Response = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, response);
        }
    }

    #[test]
    fn a_whole_conversation_streams_through_one_buffer() {
        let mut wire: Vec<u8> = Vec::new();
        for request in requests() {
            write_message(&mut wire, &request).expect("write");
        }
        let mut reader = std::io::Cursor::new(wire);
        let mut read_back = Vec::new();
        while let Some(request) = read_message::<Request>(&mut reader).expect("read") {
            read_back.push(request);
        }
        assert_eq!(read_back, requests());
    }

    #[test]
    fn garbage_and_blank_lines_are_errors_not_hangs() {
        let mut reader = std::io::Cursor::new(b"not json at all\n".to_vec());
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let mut blank = std::io::Cursor::new(b"\n".to_vec());
        let err = read_message::<Request>(&mut blank).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // EOF is a clean None, distinguishable from both.
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(read_message::<Request>(&mut empty).unwrap().is_none());
    }
}
