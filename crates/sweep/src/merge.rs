//! Shard execution results and their recombination: the *merge* stage of the
//! plan → execute → merge pipeline.
//!
//! A [`ShardDocument`] is the partial result one worker emits after running a
//! single [`crate::plan::Shard`]: every measured point rides with its grid
//! index, and the document is tagged with the shard id, the shard count and
//! the cell-index range it covers.  [`merge_documents`] recombines partials
//! by cell index into a [`SweepDocument`] that is byte-identical to what a
//! single-process run of the same scenario would have emitted — and refuses
//! anything less: overlapping cells, missing cells, out-of-range cells and
//! metadata that disagrees between parts are all hard errors, never silent
//! best effort.

use serde::{Deserialize, Serialize};

use crate::cell::{SeedStrategy, SweepPoint};
use crate::config::ExperimentConfig;
use crate::emit::SweepDocument;

/// One measured cell inside a [`ShardDocument`]: the point plus the grid
/// index that places it in the merged document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCellResult {
    /// The cell's position in the grid's canonical order.
    pub index: usize,
    /// The measured result.
    pub point: SweepPoint,
}

/// The partial sweep result of one shard, self-describing enough to be
/// merged without access to the plan that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardDocument {
    /// The scenario name the plan was built from.
    pub scenario: String,
    /// The exact configuration the grid was expanded from.
    pub config: ExperimentConfig,
    /// How each cell's seed was derived from `config.seed`.
    pub seed_strategy: SeedStrategy,
    /// Which shard of the plan this is (`0..shard_total`).
    pub shard_index: usize,
    /// How many shards the plan was split into.
    pub shard_total: usize,
    /// The `(lowest, highest)` grid indices this shard covered, or `None`
    /// when the shard was empty (a plan with more shards than cells).
    pub cell_range: Option<(usize, usize)>,
    /// The measured cells, in ascending grid-index order.
    pub results: Vec<ShardCellResult>,
}

impl ShardDocument {
    /// Serializes to pretty JSON (deterministic bytes).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a document previously emitted by
    /// [`ShardDocument::to_json_string`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_json_str(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the JSON form to `path` (with a trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates serializer and I/O errors.
    pub fn write_json(&self, path: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
        std::fs::write(path, self.to_json_string()? + "\n")?;
        Ok(())
    }
}

/// Why a set of shard documents could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No documents were given.
    NoParts,
    /// Two parts disagree on scenario, configuration, seed strategy or shard
    /// count; the message names the first disagreement.
    Mismatch(String),
    /// A grid cell appears in more than one part.
    Overlap {
        /// The duplicated cell index.
        cell: usize,
    },
    /// A grid cell appears in no part.
    Missing {
        /// The first uncovered cell index.
        cell: usize,
        /// How many cells are uncovered in total.
        total_missing: usize,
    },
    /// A part claims a cell outside the configuration's grid.
    OutOfRange {
        /// The offending cell index.
        cell: usize,
        /// The grid size the configuration expands to.
        grid_size: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoParts => write!(f, "nothing to merge: no shard documents given"),
            Self::Mismatch(what) => write!(f, "shard documents disagree: {what}"),
            Self::Overlap { cell } => {
                write!(f, "overlapping shards: cell {cell} appears more than once")
            }
            Self::Missing {
                cell,
                total_missing,
            } => write!(
                f,
                "incomplete merge: cell {cell} is not covered by any shard \
                 ({total_missing} cell(s) missing)"
            ),
            Self::OutOfRange { cell, grid_size } => write!(
                f,
                "cell {cell} is outside the configuration's grid of {grid_size} cell(s)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Recombines partial shard documents into the full sweep document, placing
/// every point by its grid index.
///
/// The output is byte-identical to the document a single-process run of the
/// same scenario emits (JSON and CSV alike), because points are reassembled
/// into canonical grid order and each point was computed from the same
/// plan-time seed either way.
///
/// # Errors
///
/// * [`MergeError::NoParts`] — the slice is empty;
/// * [`MergeError::Mismatch`] — parts disagree on scenario, configuration,
///   seed strategy or shard count;
/// * [`MergeError::OutOfRange`] — a part claims a cell index outside the
///   configuration's grid;
/// * [`MergeError::Overlap`] — a cell appears in more than one part;
/// * [`MergeError::Missing`] — a cell appears in no part.
pub fn merge_documents(parts: &[ShardDocument]) -> Result<SweepDocument, MergeError> {
    let Some(first) = parts.first() else {
        return Err(MergeError::NoParts);
    };
    for part in &parts[1..] {
        if part.scenario != first.scenario {
            return Err(MergeError::Mismatch(format!(
                "scenario `{}` vs `{}`",
                first.scenario, part.scenario
            )));
        }
        if part.config != first.config {
            return Err(MergeError::Mismatch(
                "experiment configurations differ".into(),
            ));
        }
        if part.seed_strategy != first.seed_strategy {
            return Err(MergeError::Mismatch("seed strategies differ".into()));
        }
        if part.shard_total != first.shard_total {
            return Err(MergeError::Mismatch(format!(
                "shard {} claims {} total shard(s), shard {} claims {}",
                first.shard_index, first.shard_total, part.shard_index, part.shard_total
            )));
        }
    }

    let grid_size = first.config.grid_size();
    let mut slots: Vec<Option<SweepPoint>> = vec![None; grid_size];
    for part in parts {
        for result in &part.results {
            if result.index >= grid_size {
                return Err(MergeError::OutOfRange {
                    cell: result.index,
                    grid_size,
                });
            }
            let slot = &mut slots[result.index];
            if slot.is_some() {
                return Err(MergeError::Overlap { cell: result.index });
            }
            *slot = Some(result.point.clone());
        }
    }

    let total_missing = slots.iter().filter(|slot| slot.is_none()).count();
    if let Some(cell) = slots.iter().position(Option::is_none) {
        return Err(MergeError::Missing {
            cell,
            total_missing,
        });
    }

    Ok(SweepDocument {
        scenario: first.scenario.clone(),
        config: first.config.clone(),
        seed_strategy: first.seed_strategy,
        points: slots
            .into_iter()
            .map(|slot| slot.expect("checked"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepEngine;
    use crate::plan::{ShardStrategy, SweepPlan};

    fn test_config() -> ExperimentConfig {
        ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2, 0.4],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        }
    }

    fn parts(shards: usize, strategy: ShardStrategy) -> (Vec<ShardDocument>, SweepDocument) {
        let engine = SweepEngine::new().with_threads(2);
        let plan = SweepPlan::new(
            "merge-test",
            test_config(),
            engine.seed_strategy(),
            shards,
            strategy,
        )
        .unwrap();
        let parts: Vec<ShardDocument> = (0..shards)
            .map(|index| engine.run_shard(&plan, index).unwrap())
            .collect();
        let full = engine.run_plan(&plan).unwrap();
        (parts, full)
    }

    #[test]
    fn merge_reassembles_the_single_run_document() {
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            let (parts, full) = parts(3, strategy);
            let merged = merge_documents(&parts).unwrap();
            assert_eq!(merged, full, "{strategy:?}");
            assert_eq!(
                merged.to_json_string().unwrap(),
                full.to_json_string().unwrap()
            );
            // Merge order must not matter either.
            let reversed: Vec<ShardDocument> = parts.iter().rev().cloned().collect();
            assert_eq!(merge_documents(&reversed).unwrap(), full);
        }
    }

    #[test]
    fn empty_input_is_refused() {
        assert_eq!(merge_documents(&[]), Err(MergeError::NoParts));
    }

    #[test]
    fn overlapping_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        // Copy a cell of shard 1 into shard 0.
        let stolen = parts[1].results[0].clone();
        parts[0].results.push(stolen.clone());
        assert_eq!(
            merge_documents(&parts),
            Err(MergeError::Overlap { cell: stolen.index })
        );
    }

    #[test]
    fn missing_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        let dropped = parts[1].results.pop().unwrap();
        let err = merge_documents(&parts).unwrap_err();
        assert_eq!(
            err,
            MergeError::Missing {
                cell: dropped.index,
                total_missing: 1
            }
        );
        assert!(err.to_string().contains("not covered"));
        // Dropping a whole part is the same failure, just larger.
        let solo = &parts[..1];
        assert!(matches!(
            merge_documents(solo),
            Err(MergeError::Missing { .. })
        ));
    }

    #[test]
    fn out_of_range_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        let grid_size = parts[0].config.grid_size();
        parts[0].results[0].index = grid_size + 7;
        assert_eq!(
            merge_documents(&parts),
            Err(MergeError::OutOfRange {
                cell: grid_size + 7,
                grid_size
            })
        );
    }

    #[test]
    fn metadata_disagreements_are_refused() {
        let (parts, _) = parts(2, ShardStrategy::Contiguous);

        let mut renamed = parts.clone();
        renamed[1].scenario = "other".into();
        assert!(matches!(
            merge_documents(&renamed),
            Err(MergeError::Mismatch(m)) if m.contains("scenario")
        ));

        let mut reconfigured = parts.clone();
        reconfigured[1].config.seed ^= 1;
        assert!(matches!(
            merge_documents(&reconfigured),
            Err(MergeError::Mismatch(m)) if m.contains("configurations")
        ));

        let mut reseeded = parts.clone();
        reseeded[1].seed_strategy = SeedStrategy::PerCell;
        assert!(matches!(
            merge_documents(&reseeded),
            Err(MergeError::Mismatch(m)) if m.contains("seed")
        ));

        let mut recounted = parts;
        recounted[1].shard_total = 9;
        assert!(matches!(
            merge_documents(&recounted),
            Err(MergeError::Mismatch(m)) if m.contains("total shard")
        ));
    }

    #[test]
    fn shard_document_round_trips_through_json() {
        let (parts, _) = parts(2, ShardStrategy::RoundRobin);
        let json = parts[0].to_json_string().unwrap();
        let back = ShardDocument::from_json_str(&json).unwrap();
        assert_eq!(parts[0], back);
    }
}
