//! Shard execution results and their recombination: the *merge* stage of the
//! plan → execute → merge pipeline.
//!
//! A [`ShardDocument`] is the partial result one worker emits after running a
//! single [`crate::plan::Shard`]: every measured point rides with its grid
//! index, and the document is tagged with the shard id, the shard count and
//! the cell-index range it covers.  [`merge_documents`] recombines partials
//! by cell index into a [`SweepDocument`] that is byte-identical to what a
//! single-process run of the same scenario would have emitted — and refuses
//! anything less: overlapping cells, missing cells, out-of-range cells and
//! metadata that disagrees between parts are all hard errors, never silent
//! best effort.

use serde::{Deserialize, Serialize};

use crate::cell::{SeedStrategy, SweepPoint};
use crate::config::ExperimentConfig;
use crate::emit::SweepDocument;

/// One measured cell inside a [`ShardDocument`]: the point plus the grid
/// index that places it in the merged document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCellResult {
    /// The cell's position in the grid's canonical order.
    pub index: usize,
    /// The measured result.
    pub point: SweepPoint,
}

/// The partial sweep result of one shard, self-describing enough to be
/// merged without access to the plan that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardDocument {
    /// The scenario name the plan was built from.
    pub scenario: String,
    /// The exact configuration the grid was expanded from.
    pub config: ExperimentConfig,
    /// How each cell's seed was derived from `config.seed`.
    pub seed_strategy: SeedStrategy,
    /// Which shard of the plan this is (`0..shard_total`).
    pub shard_index: usize,
    /// How many shards the plan was split into.
    pub shard_total: usize,
    /// The `(lowest, highest)` grid indices this shard covered, or `None`
    /// when the shard was empty (a plan with more shards than cells).
    pub cell_range: Option<(usize, usize)>,
    /// The measured cells, in ascending grid-index order.
    pub results: Vec<ShardCellResult>,
}

impl ShardDocument {
    /// Serializes to pretty JSON (deterministic bytes).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a document previously emitted by
    /// [`ShardDocument::to_json_string`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn from_json_str(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the JSON form to `path` (with a trailing newline),
    /// atomically — a crash mid-write can orphan a temp file but never leave
    /// a truncated partial document for a later `merge` to trip over (see
    /// [`crate::emit::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Propagates serializer and I/O errors.
    pub fn write_json(&self, path: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
        crate::emit::write_atomic(path, &(self.to_json_string()? + "\n"))?;
        Ok(())
    }
}

/// Why a set of shard documents could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No documents were given.
    NoParts,
    /// Two parts disagree on scenario, configuration, seed strategy or shard
    /// count; the message names the first disagreement.
    Mismatch(String),
    /// A grid cell appears in more than one part.
    Overlap {
        /// The duplicated cell index.
        cell: usize,
    },
    /// A grid cell appears in no part.
    Missing {
        /// The first uncovered cell index.
        cell: usize,
        /// How many cells are uncovered in total.
        total_missing: usize,
    },
    /// A part claims a cell outside the configuration's grid.
    OutOfRange {
        /// The offending cell index.
        cell: usize,
        /// The grid size the configuration expands to.
        grid_size: usize,
    },
    /// A part's claimed shard index does not fit its claimed shard count.
    ShardIndexOutOfRange {
        /// The claimed shard index.
        shard_index: usize,
        /// The claimed shard count it must be below.
        shard_total: usize,
    },
    /// Two parts claim the same shard index.
    DuplicateShard {
        /// The shard index claimed more than once.
        shard_index: usize,
    },
    /// A part's declared `cell_range` disagrees with the results it actually
    /// carries.
    CellRangeMismatch {
        /// The shard whose self-description is inconsistent.
        shard_index: usize,
        /// The `(lowest, highest)` range the part declares.
        declared: Option<(usize, usize)>,
        /// The range its results actually span.
        actual: Option<(usize, usize)>,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoParts => write!(f, "nothing to merge: no shard documents given"),
            Self::Mismatch(what) => write!(f, "shard documents disagree: {what}"),
            Self::Overlap { cell } => {
                write!(f, "overlapping shards: cell {cell} appears more than once")
            }
            Self::Missing {
                cell,
                total_missing,
            } => write!(
                f,
                "incomplete merge: cell {cell} is not covered by any shard \
                 ({total_missing} cell(s) missing)"
            ),
            Self::OutOfRange { cell, grid_size } => write!(
                f,
                "cell {cell} is outside the configuration's grid of {grid_size} cell(s)"
            ),
            Self::ShardIndexOutOfRange {
                shard_index,
                shard_total,
            } => write!(
                f,
                "a part claims shard index {shard_index} of only {shard_total} shard(s)"
            ),
            Self::DuplicateShard { shard_index } => {
                write!(f, "two parts both claim shard index {shard_index}")
            }
            Self::CellRangeMismatch {
                shard_index,
                declared,
                actual,
            } => write!(
                f,
                "shard {shard_index} declares cell range {declared:?} but its results span \
                 {actual:?}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Recombines partial shard documents into the full sweep document, placing
/// every point by its grid index.
///
/// The output is byte-identical to the document a single-process run of the
/// same scenario emits (JSON and CSV alike), because points are reassembled
/// into canonical grid order and each point was computed from the same
/// plan-time seed either way.
///
/// # Errors
///
/// * [`MergeError::NoParts`] — the slice is empty;
/// * [`MergeError::Mismatch`] — parts disagree on scenario, configuration,
///   seed strategy or shard count;
/// * [`MergeError::ShardIndexOutOfRange`] — a part's claimed shard index
///   does not fit the shard count;
/// * [`MergeError::DuplicateShard`] — two parts claim the same shard index;
/// * [`MergeError::CellRangeMismatch`] — a part's declared `cell_range`
///   disagrees with the results it actually carries;
/// * [`MergeError::OutOfRange`] — a part claims a cell index outside the
///   configuration's grid;
/// * [`MergeError::Overlap`] — a cell appears in more than one part;
/// * [`MergeError::Missing`] — a cell appears in no part.
pub fn merge_documents(parts: &[ShardDocument]) -> Result<SweepDocument, MergeError> {
    let Some(first) = parts.first() else {
        return Err(MergeError::NoParts);
    };
    for part in &parts[1..] {
        if part.scenario != first.scenario {
            return Err(MergeError::Mismatch(format!(
                "scenario `{}` vs `{}`",
                first.scenario, part.scenario
            )));
        }
        if part.config != first.config {
            return Err(MergeError::Mismatch(
                "experiment configurations differ".into(),
            ));
        }
        if part.seed_strategy != first.seed_strategy {
            return Err(MergeError::Mismatch("seed strategies differ".into()));
        }
        if part.shard_total != first.shard_total {
            return Err(MergeError::Mismatch(format!(
                "shard {} claims {} total shard(s), shard {} claims {}",
                first.shard_index, first.shard_total, part.shard_index, part.shard_total
            )));
        }
    }

    // Every part's *own* self-description must hold up before its cells are
    // trusted: parts arrive from independent worker processes, so a claimed
    // shard id or cell range is an assertion to verify, not a fact.  (A set,
    // not a bitmap: `shard_total` is itself untrusted input, and sizing an
    // allocation by it would let a forged part crash the merge instead of
    // failing it.)
    let mut claimed = std::collections::HashSet::with_capacity(parts.len());
    for part in parts {
        if part.shard_index >= part.shard_total {
            return Err(MergeError::ShardIndexOutOfRange {
                shard_index: part.shard_index,
                shard_total: part.shard_total,
            });
        }
        if !claimed.insert(part.shard_index) {
            return Err(MergeError::DuplicateShard {
                shard_index: part.shard_index,
            });
        }
        // Min/max over the results as they are — don't assume they arrived
        // sorted, that is part of what is being checked.
        let actual = part
            .results
            .iter()
            .fold(None, |span: Option<(usize, usize)>, result| {
                Some(match span {
                    None => (result.index, result.index),
                    Some((lo, hi)) => (lo.min(result.index), hi.max(result.index)),
                })
            });
        if part.cell_range != actual {
            return Err(MergeError::CellRangeMismatch {
                shard_index: part.shard_index,
                declared: part.cell_range,
                actual,
            });
        }
    }

    let grid_size = first.config.grid_size();
    let mut slots: Vec<Option<SweepPoint>> = vec![None; grid_size];
    for part in parts {
        for result in &part.results {
            if result.index >= grid_size {
                return Err(MergeError::OutOfRange {
                    cell: result.index,
                    grid_size,
                });
            }
            let slot = &mut slots[result.index];
            if slot.is_some() {
                return Err(MergeError::Overlap { cell: result.index });
            }
            *slot = Some(result.point.clone());
        }
    }

    let total_missing = slots.iter().filter(|slot| slot.is_none()).count();
    if let Some(cell) = slots.iter().position(Option::is_none) {
        return Err(MergeError::Missing {
            cell,
            total_missing,
        });
    }

    Ok(SweepDocument {
        scenario: first.scenario.clone(),
        config: first.config.clone(),
        seed_strategy: first.seed_strategy,
        points: slots
            .into_iter()
            .map(|slot| slot.expect("checked"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepEngine;
    use crate::plan::{ShardStrategy, SweepPlan};

    fn test_config() -> ExperimentConfig {
        ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2, 0.4],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        }
    }

    fn parts(shards: usize, strategy: ShardStrategy) -> (Vec<ShardDocument>, SweepDocument) {
        let engine = SweepEngine::new().with_threads(2);
        let plan = SweepPlan::new(
            "merge-test",
            test_config(),
            engine.seed_strategy(),
            shards,
            strategy,
        )
        .unwrap();
        let parts: Vec<ShardDocument> = (0..shards)
            .map(|index| engine.run_shard(&plan, index).unwrap())
            .collect();
        let full = engine.run_plan(&plan).unwrap();
        (parts, full)
    }

    #[test]
    fn merge_reassembles_the_single_run_document() {
        for strategy in [ShardStrategy::Contiguous, ShardStrategy::RoundRobin] {
            let (parts, full) = parts(3, strategy);
            let merged = merge_documents(&parts).unwrap();
            assert_eq!(merged, full, "{strategy:?}");
            assert_eq!(
                merged.to_json_string().unwrap(),
                full.to_json_string().unwrap()
            );
            // Merge order must not matter either.
            let reversed: Vec<ShardDocument> = parts.iter().rev().cloned().collect();
            assert_eq!(merge_documents(&reversed).unwrap(), full);
        }
    }

    #[test]
    fn empty_input_is_refused() {
        assert_eq!(merge_documents(&[]), Err(MergeError::NoParts));
    }

    #[test]
    fn overlapping_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        // Duplicate an interior cell of shard 0 without perturbing its
        // declared cell range, so the overlap itself is what gets caught.
        parts[0].results[1].index = parts[0].results[0].index;
        let duplicated = parts[0].results[0].index;
        assert_eq!(
            merge_documents(&parts),
            Err(MergeError::Overlap { cell: duplicated })
        );
    }

    #[test]
    fn missing_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        let dropped = parts[1].results.pop().unwrap();
        // Keep the part's self-description truthful about what it now holds,
        // so the *grid-level* gap is what gets reported.
        parts[1].cell_range = Some((
            parts[1].results.first().unwrap().index,
            parts[1].results.last().unwrap().index,
        ));
        let err = merge_documents(&parts).unwrap_err();
        assert_eq!(
            err,
            MergeError::Missing {
                cell: dropped.index,
                total_missing: 1
            }
        );
        assert!(err.to_string().contains("not covered"));
        // Dropping a whole part is the same failure, just larger.
        let solo = &parts[..1];
        assert!(matches!(
            merge_documents(solo),
            Err(MergeError::Missing { .. })
        ));
    }

    #[test]
    fn out_of_range_cells_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        let grid_size = parts[0].config.grid_size();
        parts[0].results[0].index = grid_size + 7;
        // A self-consistent but out-of-grid claim: the declared range agrees
        // with the results, the grid bound is what rejects it.
        let indices: Vec<usize> = parts[0].results.iter().map(|r| r.index).collect();
        parts[0].cell_range = Some((
            indices.iter().copied().min().unwrap(),
            indices.iter().copied().max().unwrap(),
        ));
        assert_eq!(
            merge_documents(&parts),
            Err(MergeError::OutOfRange {
                cell: grid_size + 7,
                grid_size
            })
        );
    }

    #[test]
    fn shard_index_beyond_the_shard_count_is_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        parts[1].shard_index = 5;
        let err = merge_documents(&parts).unwrap_err();
        assert_eq!(
            err,
            MergeError::ShardIndexOutOfRange {
                shard_index: 5,
                shard_total: 2
            }
        );
        assert!(err.to_string().contains("shard index 5"));
    }

    #[test]
    fn absurd_shard_totals_never_drive_an_allocation() {
        // Parts claiming usize::MAX shards must be processed without sizing
        // anything by that untrusted number — no capacity-overflow panic, no
        // OOM-sized bitmap.  With the cells themselves consistent, the merge
        // simply proceeds on the evidence it can verify.
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        for part in &mut parts {
            part.shard_total = usize::MAX;
        }
        parts[1].shard_index = usize::MAX - 1;
        assert!(merge_documents(&parts).is_ok());
        // And a duplicate claim under the absurd total is still caught.
        parts[1].shard_index = parts[0].shard_index;
        assert!(matches!(
            merge_documents(&parts),
            Err(MergeError::DuplicateShard { .. })
        ));
    }

    #[test]
    fn two_parts_claiming_the_same_shard_are_refused() {
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        parts[1].shard_index = 0;
        let err = merge_documents(&parts).unwrap_err();
        assert_eq!(err, MergeError::DuplicateShard { shard_index: 0 });
        assert!(err.to_string().contains("both claim"));
        // The duplicate-shard check fires even when the duplicated part is
        // empty (no cell overlap to fall back on).
        let (originals, _) = self::parts(2, ShardStrategy::Contiguous);
        let mut cloned = originals.clone();
        cloned[1] = ShardDocument {
            shard_index: 0,
            cell_range: None,
            results: Vec::new(),
            ..originals[1].clone()
        };
        assert_eq!(
            merge_documents(&cloned),
            Err(MergeError::DuplicateShard { shard_index: 0 })
        );
    }

    #[test]
    fn declared_cell_range_must_match_the_results_present() {
        // Declared range is None while results exist.
        let (mut parts, _) = parts(2, ShardStrategy::Contiguous);
        let honest = parts[0].cell_range;
        parts[0].cell_range = None;
        let err = merge_documents(&parts).unwrap_err();
        assert_eq!(
            err,
            MergeError::CellRangeMismatch {
                shard_index: 0,
                declared: None,
                actual: honest,
            }
        );
        assert!(err.to_string().contains("declares cell range"));

        // Declared range is wider than the results.
        let (mut parts, _) = self::parts(2, ShardStrategy::Contiguous);
        let honest = parts[1].cell_range;
        parts[1].cell_range = honest.map(|(lo, hi)| (lo, hi + 3));
        assert!(matches!(
            merge_documents(&parts),
            Err(MergeError::CellRangeMismatch { shard_index: 1, .. })
        ));

        // A range declared on an empty part is just as inconsistent.
        let (mut parts, _) = self::parts(2, ShardStrategy::Contiguous);
        parts[1].results.clear();
        assert!(matches!(
            merge_documents(&parts),
            Err(MergeError::CellRangeMismatch {
                shard_index: 1,
                actual: None,
                ..
            })
        ));
    }

    #[test]
    fn metadata_disagreements_are_refused() {
        let (parts, _) = parts(2, ShardStrategy::Contiguous);

        let mut renamed = parts.clone();
        renamed[1].scenario = "other".into();
        assert!(matches!(
            merge_documents(&renamed),
            Err(MergeError::Mismatch(m)) if m.contains("scenario")
        ));

        let mut reconfigured = parts.clone();
        reconfigured[1].config.seed ^= 1;
        assert!(matches!(
            merge_documents(&reconfigured),
            Err(MergeError::Mismatch(m)) if m.contains("configurations")
        ));

        let mut reseeded = parts.clone();
        reseeded[1].seed_strategy = SeedStrategy::PerCell;
        assert!(matches!(
            merge_documents(&reseeded),
            Err(MergeError::Mismatch(m)) if m.contains("seed")
        ));

        let mut recounted = parts;
        recounted[1].shard_total = 9;
        assert!(matches!(
            merge_documents(&recounted),
            Err(MergeError::Mismatch(m)) if m.contains("total shard")
        ));
    }

    #[test]
    fn shard_document_round_trips_through_json() {
        let (parts, _) = parts(2, ShardStrategy::RoundRobin);
        let json = parts[0].to_json_string().unwrap();
        let back = ShardDocument::from_json_str(&json).unwrap();
        assert_eq!(parts[0], back);
    }
}
