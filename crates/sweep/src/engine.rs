//! The sweep engine: the *execute* stage of the plan → execute → merge
//! pipeline.  Evaluates a whole [`SweepPlan`] or a single [`Shard`] of one on
//! a parallel, deterministic executor.

use std::collections::HashMap;
use std::sync::Arc;

use fabric_power_fabric::energy_model::FabricEnergyModel;
use fabric_power_fabric::provider::ModelProvider;
use fabric_power_noc::{NetworkReport, NetworkSimulator};
use fabric_power_obs as obs;
use fabric_power_router::sim::RouterSimulator;

/// The obs target engine events are tagged with.
const TARGET: &str = "sweep.engine";

use crate::cell::{SeedStrategy, SweepCell, SweepPoint};
use crate::config::{ExperimentConfig, ExperimentError};
use crate::emit::SweepDocument;
use crate::executor;
use crate::merge::{ShardCellResult, ShardDocument};
use crate::plan::{self, PlanError, PlanHeader, Shard, ShardStrategy, SweepPlan};

/// Orchestrates the evaluation of an experiment grid.
///
/// The engine guarantees **bit-identical results regardless of thread
/// count**: cell seeds are fixed at expansion time, every cell's simulation
/// is independent, and results are assembled in canonical grid order rather
/// than completion order.
///
/// Energy models are acquired through a [`ModelProvider`] (by default the
/// process-wide shared one), so repeated sweeps of the same configuration
/// reuse already-built models, and a provider with an on-disk cache makes
/// derived-model sweeps start without re-running gate-level
/// characterization.
///
/// # Examples
///
/// ```
/// use fabric_power_sweep::{ExperimentConfig, SweepEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = SweepEngine::new().with_threads(2);
/// let points = engine.run(&ExperimentConfig::quick())?;
/// assert_eq!(points.len(), ExperimentConfig::quick().grid_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    seed_strategy: SeedStrategy,
    provider: Arc<ModelProvider>,
    progress: Option<obs::Progress>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// Creates an engine with automatic thread count, the seed-compatible
    /// [`SeedStrategy::Shared`] and the process-wide shared model provider.
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: 0,
            seed_strategy: SeedStrategy::Shared,
            provider: ModelProvider::shared(),
            progress: None,
        }
    }

    /// Overrides the worker thread count (`0` = use every available core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the per-cell seed derivation strategy.
    #[must_use]
    pub fn with_seed_strategy(mut self, strategy: SeedStrategy) -> Self {
        self.seed_strategy = strategy;
        self
    }

    /// Overrides the model provider — e.g. one backed by an on-disk cache
    /// (`fabric-power sweep --model-cache <dir>`), or a fresh in-memory
    /// provider when a test wants isolated hit/miss statistics.
    #[must_use]
    pub fn with_provider(mut self, provider: Arc<ModelProvider>) -> Self {
        self.provider = provider;
        self
    }

    /// Attaches a live progress probe: the engine bumps it once per
    /// completed cell, out of band, from whichever worker thread finished
    /// the cell.  A fleet worker polls the probe from its heartbeat thread
    /// to report per-shard progress without touching the execution path —
    /// results stay bit-identical with or without a probe attached.
    #[must_use]
    pub fn with_progress(mut self, progress: obs::Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The model provider this engine acquires energy models through.
    #[must_use]
    pub fn provider(&self) -> &Arc<ModelProvider> {
        &self.provider
    }

    /// The resolved worker thread count this engine will run with.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            executor::default_threads()
        } else {
            self.threads
        }
    }

    /// The seed strategy this engine runs with.
    #[must_use]
    pub fn seed_strategy(&self) -> SeedStrategy {
        self.seed_strategy
    }

    /// Expands a configuration into its flat cell list, in canonical order
    /// (ports → architecture → offered load — the order the original
    /// sequential loops visited the grid in), using this engine's seed
    /// strategy.  Delegates to [`plan::expand_cells`], the single grid
    /// expansion the whole pipeline shares.
    #[must_use]
    pub fn expand(&self, config: &ExperimentConfig) -> Vec<SweepCell> {
        plan::expand_cells(config, self.seed_strategy)
    }

    /// Expands a configuration and splits it into `shards` self-describing
    /// shards: the *plan* step of `fabric-power plan`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ZeroShards`] when `shards` is zero.
    pub fn plan(
        &self,
        scenario: impl Into<String>,
        config: &ExperimentConfig,
        shards: usize,
        strategy: ShardStrategy,
    ) -> Result<SweepPlan, PlanError> {
        SweepPlan::new(
            scenario,
            config.clone(),
            self.seed_strategy,
            shards,
            strategy,
        )
    }

    /// Acquires one immutable energy model per fabric size through the
    /// provider, shared across all cells (and worker threads) of that size
    /// via [`Arc`].
    ///
    /// Models for distinct sizes are independent, so cache misses build on
    /// the same parallel executor as the cells — with `ModelSource::Derived`,
    /// the per-size gate-level characterization is the most expensive step
    /// of the whole sweep and would otherwise serialize before any cell
    /// runs.  Models the provider already holds (or finds in its on-disk
    /// store) are returned without any characterization at all.
    ///
    /// # Errors
    ///
    /// Propagates the first model-acquisition failure, in port order.
    fn build_models(
        &self,
        config: &ExperimentConfig,
        cells: &[SweepCell],
    ) -> Result<HashMap<usize, Arc<FabricEnergyModel>>, ExperimentError> {
        let unique_ports = crate::cell::unique_ports(cells);
        let built = executor::parallel_map(&unique_ports, self.threads().max(1), |&ports| {
            let span = obs::log::span(TARGET, "build_model").field("ports", ports);
            let model = self.provider.get(&config.model_spec(ports));
            span.finish();
            model
        });
        let mut models = HashMap::new();
        for (&ports, result) in unique_ports.iter().zip(built) {
            models.insert(ports, result?);
        }
        Ok(models)
    }

    /// Evaluates an explicit cell list (already expanded and seeded) and
    /// returns one [`SweepPoint`] per cell, in the list's order.  Only the
    /// fabric sizes the cells actually touch get models built — a shard of a
    /// contiguous split typically needs one or two, not the whole grid's.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors; when several cells fail, the
    /// error of the lowest-indexed cell is returned (deterministically).
    fn run_cells(
        &self,
        config: &ExperimentConfig,
        cells: &[SweepCell],
    ) -> Result<Vec<SweepPoint>, ExperimentError> {
        let models = self.build_models(config, cells)?;
        let results = executor::parallel_map(cells, self.threads().max(1), |cell| {
            let point = self.run_cell(config, cell, &models[&cell.ports]);
            obs::metrics::counter(obs::metrics::names::CELLS_COMPLETED).increment();
            if let Some(progress) = &self.progress {
                progress.increment();
            }
            point
        });
        results.into_iter().collect()
    }

    /// Runs the full grid and returns one [`SweepPoint`] per cell, in
    /// canonical grid order.
    ///
    /// Internally this is a single-shard plan pushed through the same
    /// plan → execute path sharded runs use, so a direct `run` can never
    /// drift from a plan/run-shard/merge round trip.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors; when several cells fail, the
    /// error of the lowest-indexed cell is returned (deterministically).
    pub fn run(&self, config: &ExperimentConfig) -> Result<Vec<SweepPoint>, ExperimentError> {
        let plan = self
            .plan("run", config, 1, ShardStrategy::Contiguous)
            .expect("one shard is always a valid plan");
        self.run_cells(config, &plan.shards[0].cells)
    }

    /// Runs every shard of a plan in this process and returns the complete
    /// document — what `fabric-power sweep` effectively does, and the
    /// reference a sharded run's merged output must match byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run_plan(&self, plan: &SweepPlan) -> Result<SweepDocument, ExperimentError> {
        let mut cells: Vec<SweepCell> = plan
            .shards
            .iter()
            .flat_map(|shard| shard.cells.iter().copied())
            .collect();
        cells.sort_by_key(|cell| cell.index);
        let points = self.run_cells(&plan.config, &cells)?;
        Ok(SweepDocument {
            scenario: plan.scenario.clone(),
            config: plan.config.clone(),
            seed_strategy: plan.seed_strategy,
            points,
        })
    }

    /// Runs one shard of a plan and returns the partial document tagged with
    /// the shard id and the cell-index range it covers — the unit of work a
    /// sharded fleet ships back for [`crate::merge::merge_documents`].
    ///
    /// The cells' seeds were fixed when the plan was built, so the points
    /// this produces are bit-identical to the same cells evaluated by a
    /// single-process run, whatever this worker's thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::InvalidShard`] when `index` is out of
    /// range; otherwise propagates model and simulation errors.
    pub fn run_shard(
        &self,
        plan: &SweepPlan,
        index: usize,
    ) -> Result<ShardDocument, ExperimentError> {
        let shard: &Shard = plan
            .shard(index)
            .ok_or_else(|| ExperimentError::InvalidShard {
                index,
                shards: plan.shard_count(),
            })?;
        self.run_shard_detached(&plan.header(), shard)
    }

    /// Runs one shard *detached from its plan*: the [`PlanHeader`] supplies
    /// the grid-wide context (scenario, configuration, seed strategy) and the
    /// [`Shard`] the cells — exactly what a fleet worker holds after the
    /// work-server handshake handed it the header and a lease handed it the
    /// shard, without ever shipping the whole plan.
    ///
    /// The cells carry their plan-time seeds, so the resulting document is
    /// bit-identical to [`SweepEngine::run_shard`] on the full plan.
    ///
    /// # Errors
    ///
    /// Propagates model and simulation errors.
    pub fn run_shard_detached(
        &self,
        header: &PlanHeader,
        shard: &Shard,
    ) -> Result<ShardDocument, ExperimentError> {
        let points = self.run_cells(&header.config, &shard.cells)?;
        Ok(ShardDocument {
            scenario: header.scenario.clone(),
            config: header.config.clone(),
            seed_strategy: header.seed_strategy,
            shard_index: shard.index,
            shard_total: shard.total,
            cell_range: shard.cell_index_range(),
            results: shard
                .cells
                .iter()
                .zip(points)
                .map(|(cell, point)| ShardCellResult {
                    index: cell.index,
                    point,
                })
                .collect(),
        })
    }

    /// Simulates a single cell against a shared energy model.
    ///
    /// Every operating parameter comes from the cell itself (a cell is the
    /// self-describing unit sharding ships around, including its network
    /// coordinate when the sweep has a mesh axis); the config only
    /// contributes the grid-wide knobs (cycle windows, packet length, model
    /// source).
    fn run_cell(
        &self,
        config: &ExperimentConfig,
        cell: &SweepCell,
        model: &Arc<FabricEnergyModel>,
    ) -> Result<SweepPoint, ExperimentError> {
        let span = obs::log::span(TARGET, "run_cell")
            .with_level(obs::Level::Trace)
            .field("cell", cell.index)
            .field("ports", cell.ports);
        let mut sim_config =
            config.simulation_config(cell.architecture, cell.ports, cell.offered_load, cell.seed);
        sim_config.pattern = cell.pattern;
        let report = match cell.network {
            // A network cell runs the tick-based fabric-of-fabrics; a 1×1
            // network degrades inside the simulator to exactly the
            // single-router path (and reports no network aggregates).
            Some(network) => {
                NetworkSimulator::with_shared_model(sim_config, network, Arc::clone(model))?.run()
            }
            None => NetworkReport {
                simulation: RouterSimulator::with_shared_model(sim_config, Arc::clone(model))?
                    .run(),
                network: None,
            },
        };
        span.finish();
        let simulation = report.simulation;
        Ok(SweepPoint {
            architecture: cell.architecture,
            ports: cell.ports,
            offered_load: cell.offered_load,
            measured_throughput: simulation.measured_throughput(),
            power: simulation.average_power(),
            switch_energy: simulation.energy.switches,
            buffer_energy: simulation.energy.buffers,
            wire_energy: simulation.energy.wires,
            buffered_words: simulation.buffered_words,
            average_latency_cycles: simulation.average_latency_cycles,
            latency_p50: simulation.latency_p50,
            latency_p95: simulation.latency_p95,
            latency_p99: simulation.latency_p99,
            latency_histogram: simulation.latency_histogram,
            network: report.network,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_power_fabric::Architecture;

    #[test]
    fn expansion_is_canonical_and_complete() {
        let config = ExperimentConfig::quick();
        let cells = SweepEngine::new().expand(&config);
        assert_eq!(cells.len(), config.grid_size());
        // Canonical order: ports outermost, loads innermost.
        assert_eq!(cells[0].ports, 4);
        assert_eq!(cells[0].architecture, config.architectures[0]);
        assert_eq!(cells[0].offered_load, config.offered_loads[0]);
        assert_eq!(cells[1].offered_load, config.offered_loads[1]);
        for (index, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, index);
            assert_eq!(cell.seed, config.seed, "shared strategy");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let config = ExperimentConfig::quick();
        let sequential = SweepEngine::new().with_threads(1).run(&config).unwrap();
        let parallel = SweepEngine::new().with_threads(8).run(&config).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn per_cell_strategy_changes_traffic_but_not_shape() {
        let config = ExperimentConfig::quick();
        let shared = SweepEngine::new().with_threads(2).run(&config).unwrap();
        let per_cell = SweepEngine::new()
            .with_threads(2)
            .with_seed_strategy(SeedStrategy::PerCell)
            .run(&config)
            .unwrap();
        assert_eq!(shared.len(), per_cell.len());
        assert!(
            shared != per_cell,
            "per-cell seeding should change at least one trajectory"
        );
        // And stays deterministic in itself.
        let per_cell_again = SweepEngine::new()
            .with_threads(8)
            .with_seed_strategy(SeedStrategy::PerCell)
            .run(&config)
            .unwrap();
        assert_eq!(per_cell, per_cell_again);
    }

    #[test]
    fn model_errors_surface_deterministically() {
        let config = ExperimentConfig {
            port_counts: vec![3],
            ..ExperimentConfig::quick()
        };
        let err = SweepEngine::new().run(&config).unwrap_err();
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn repeated_runs_reuse_models_through_the_provider() {
        let provider = Arc::new(ModelProvider::in_memory());
        let engine = SweepEngine::new()
            .with_threads(2)
            .with_provider(Arc::clone(&provider));
        let config = ExperimentConfig::quick();
        let first = engine.run(&config).unwrap();
        let second = engine.run(&config).unwrap();
        assert_eq!(first, second);
        let stats = provider.stats();
        assert_eq!(stats.builds, 2, "one build per unique fabric size");
        assert_eq!(stats.memory_hits, 2, "the second run is all memo hits");
        // Results are identical to an engine on the default shared provider.
        let default_engine = SweepEngine::new().with_threads(2);
        assert!(Arc::ptr_eq(
            default_engine.provider(),
            &ModelProvider::shared()
        ));
        assert_eq!(default_engine.run(&config).unwrap(), first);
    }

    #[test]
    fn run_matches_run_plan_and_merged_shards() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.1, 0.3],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let engine = SweepEngine::new().with_threads(2);
        let direct = engine.run(&config).unwrap();
        let plan = engine
            .plan("engine-test", &config, 3, ShardStrategy::RoundRobin)
            .unwrap();
        let whole = engine.run_plan(&plan).unwrap();
        assert_eq!(whole.points, direct);
        let parts: Vec<_> = (0..3)
            .map(|index| engine.run_shard(&plan, index).unwrap())
            .collect();
        let merged = crate::merge::merge_documents(&parts).unwrap();
        assert_eq!(merged, whole);
    }

    #[test]
    fn shard_runs_only_build_the_models_the_shard_needs() {
        let provider = Arc::new(ModelProvider::in_memory());
        let engine = SweepEngine::new()
            .with_threads(1)
            .with_provider(Arc::clone(&provider));
        // Contiguous split of the quick grid: shard 0 is all 4-port cells.
        let plan = engine
            .plan(
                "model-scope",
                &ExperimentConfig::quick(),
                2,
                ShardStrategy::Contiguous,
            )
            .unwrap();
        let document = engine.run_shard(&plan, 0).unwrap();
        assert!(document.results.iter().all(|r| r.point.ports == 4));
        assert_eq!(
            provider.stats().builds,
            1,
            "only the 4-port model should have been built"
        );
        assert_eq!(document.cell_range, Some((0, 11)));
        assert_eq!(document.shard_index, 0);
        assert_eq!(document.shard_total, 2);
    }

    #[test]
    fn empty_shards_advertise_no_cell_range() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2],
            architectures: vec![fabric_power_fabric::Architecture::Banyan],
            warmup_cycles: 20,
            measure_cycles: 50,
            ..ExperimentConfig::quick()
        };
        let engine = SweepEngine::new().with_threads(1);
        // 1 cell over 3 shards: shards 1 and 2 are empty.
        let plan = engine
            .plan("empty-shards", &config, 3, ShardStrategy::Contiguous)
            .unwrap();
        let full = engine.run_shard(&plan, 0).unwrap();
        assert_eq!(full.cell_range, Some((0, 0)));
        let empty = engine.run_shard(&plan, 1).unwrap();
        assert_eq!(empty.cell_range, None);
        assert!(empty.results.is_empty());
        // The distinction survives JSON (null vs an array).
        let round =
            crate::merge::ShardDocument::from_json_str(&empty.to_json_string().unwrap()).unwrap();
        assert_eq!(round.cell_range, None);
    }

    #[test]
    fn detached_shard_execution_matches_the_plan_bound_one() {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2, 0.4],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let engine = SweepEngine::new().with_threads(2);
        let plan = engine
            .plan("detached", &config, 2, ShardStrategy::RoundRobin)
            .unwrap();
        let header = plan.header();
        for index in 0..plan.shard_count() {
            let bound = engine.run_shard(&plan, index).unwrap();
            let detached = engine
                .run_shard_detached(&header, plan.shard(index).unwrap())
                .unwrap();
            assert_eq!(bound, detached);
        }
    }

    #[test]
    fn out_of_range_shard_index_is_an_error() {
        let engine = SweepEngine::new().with_threads(1);
        let plan = engine
            .plan(
                "bad-index",
                &ExperimentConfig::quick(),
                2,
                ShardStrategy::Contiguous,
            )
            .unwrap();
        let err = engine.run_shard(&plan, 5).unwrap_err();
        assert!(matches!(
            err,
            ExperimentError::InvalidShard {
                index: 5,
                shards: 2
            }
        ));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn engine_reports_resolved_threads() {
        assert_eq!(SweepEngine::new().with_threads(5).threads(), 5);
        assert!(SweepEngine::new().threads() >= 1);
        assert_eq!(
            SweepEngine::new()
                .with_seed_strategy(SeedStrategy::PerCell)
                .seed_strategy(),
            SeedStrategy::PerCell
        );
        let _ = Architecture::ALL;
    }
}
