//! Capped exponential backoff with deterministic, seeded jitter.
//!
//! Every retry loop in the fleet (worker dial, worker reconnect after a
//! dropped session) draws its delays from a [`BackoffSchedule`] instead of
//! sleeping a fixed interval: delays double from `base` up to `cap`, and
//! each is jittered into `[raw/2, raw]` by a SplitMix64 stream derived
//! from the schedule's seed — so a restarting server is not hammered by a
//! synchronized thundering herd, yet the exact schedule for any seed is
//! reproducible and tests can pin it.

use std::time::Duration;

/// A deterministic capped-exponential-with-jitter backoff schedule.
///
/// `delay(0)` is always zero (the first attempt is immediate); attempt
/// `n >= 1` waits a jittered `min(cap, base * 2^(n-1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Delay before the second attempt, pre-jitter.
    pub base: Duration,
    /// Upper bound on the pre-jitter delay.
    pub cap: Duration,
    /// Seeds the jitter stream; two workers with different seeds desync.
    pub seed: u64,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl BackoffSchedule {
    /// The delay to sleep before attempt `attempt` (zero-based; attempt 0
    /// is immediate).  Pure: the same `(schedule, attempt)` always yields
    /// the same delay.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let raw = self
            .base
            .checked_mul(1_u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        let raw_nanos = raw.as_nanos().min(u128::from(u64::MAX)) as u64;
        if raw_nanos == 0 {
            return Duration::ZERO;
        }
        // Jitter into [raw/2, raw]: full randomization would sometimes
        // retry near-instantly, no jitter keeps herds synchronized.
        let span = raw_nanos / 2;
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % (span + 1);
        Duration::from_nanos(raw_nanos - jitter)
    }
}

/// SplitMix64 — the same tiny, well-mixed generator the fault layer and
/// the engine's seed derivation use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_is_immediate() {
        assert_eq!(BackoffSchedule::default().delay(0), Duration::ZERO);
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bounds() {
        let schedule = BackoffSchedule {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 7,
        };
        for attempt in 1..=12 {
            let raw = schedule
                .base
                .checked_mul(1 << (attempt - 1))
                .unwrap_or(schedule.cap)
                .min(schedule.cap);
            let delay = schedule.delay(attempt);
            assert!(
                delay >= raw / 2,
                "attempt {attempt}: {delay:?} < {:?}",
                raw / 2
            );
            assert!(delay <= raw, "attempt {attempt}: {delay:?} > {raw:?}");
        }
    }

    #[test]
    fn delays_saturate_at_the_cap() {
        let schedule = BackoffSchedule {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0,
        };
        // Far past the doubling range (and past shift overflow): still
        // bounded by the cap.
        for attempt in [40, 64, 1000] {
            assert!(schedule.delay(attempt) <= schedule.cap);
            assert!(schedule.delay(attempt) >= schedule.cap / 2);
        }
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = BackoffSchedule {
            seed: 1,
            ..BackoffSchedule::default()
        };
        let b = BackoffSchedule {
            seed: 2,
            ..BackoffSchedule::default()
        };
        let first: Vec<_> = (0..8).map(|n| a.delay(n)).collect();
        let again: Vec<_> = (0..8).map(|n| a.delay(n)).collect();
        assert_eq!(first, again, "same seed, same schedule");
        assert_ne!(
            first,
            (0..8).map(|n| b.delay(n)).collect::<Vec<_>>(),
            "different seeds desynchronize"
        );
    }

    #[test]
    fn pinned_schedule_for_seed_seven() {
        // The exact schedule is part of the contract tests rely on; if the
        // jitter derivation changes, this pin forces the change to be
        // deliberate.
        let schedule = BackoffSchedule {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 7,
        };
        let delays: Vec<u64> = (0..6)
            .map(|n| schedule.delay(n).as_micros() as u64)
            .collect();
        assert_eq!(delays, vec![0, 29_472, 87_861, 134_945, 260_808, 707_466]);
    }
}
