//! Structural comparison of two [`SweepDocument`]s: the engine behind
//! `fabric-power diff <a.json> <b.json>`.
//!
//! Sweeps are deterministic, so two runs of the same scenario must agree to
//! the byte — any drift (a model change, a broken cache entry, a
//! non-deterministic code path) shows up here as per-cell deltas.  The diff
//! is cell-oriented rather than textual: mismatches name the operating point
//! and the field, not a line number.

use crate::emit::SweepDocument;

/// One numeric field that differs between the two documents at one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDelta {
    /// Field name (matches the JSON/CSV spelling).
    pub field: &'static str,
    /// Value in the first document.
    pub a: f64,
    /// Value in the second document.
    pub b: f64,
}

impl FieldDelta {
    /// The relative deviation `|a − b| / max(|a|, |b|)` (0 when both are 0).
    #[must_use]
    pub fn relative(&self) -> f64 {
        let scale = self.a.abs().max(self.b.abs());
        if scale == 0.0 {
            0.0
        } else {
            (self.a - self.b).abs() / scale
        }
    }
}

/// All field deltas of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Cell position in canonical grid order.
    pub index: usize,
    /// The cell's operating point, for the report (`architecture`, ports,
    /// offered load come from the first document).
    pub label: String,
    /// Every differing numeric field.
    pub fields: Vec<FieldDelta>,
}

/// The full comparison result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DocumentDiff {
    /// Mismatches in the documents' shape or metadata (scenario name,
    /// configuration, seed strategy, point counts, cell coordinates).  Any
    /// entry here means the per-cell comparison below is best-effort.
    pub structural: Vec<String>,
    /// Cells whose measured values differ beyond the tolerance.
    pub cells: Vec<CellDiff>,
}

impl DocumentDiff {
    /// `true` when the two documents agree (within the tolerance used).
    #[must_use]
    pub fn is_match(&self) -> bool {
        self.structural.is_empty() && self.cells.is_empty()
    }

    /// Renders the human-readable report `fabric-power diff` prints.
    #[must_use]
    pub fn format(&self) -> String {
        if self.is_match() {
            return "documents match\n".to_owned();
        }
        let mut out = String::new();
        for note in &self.structural {
            out.push_str(&format!("structural: {note}\n"));
        }
        for cell in &self.cells {
            out.push_str(&format!("cell {} [{}]:\n", cell.index, cell.label));
            for delta in &cell.fields {
                out.push_str(&format!(
                    "  {:<22} a={:.6e}  b={:.6e}  rel={:.3e}\n",
                    delta.field,
                    delta.a,
                    delta.b,
                    delta.relative()
                ));
            }
        }
        out.push_str(&format!(
            "{} structural note(s), {} differing cell(s)\n",
            self.structural.len(),
            self.cells.len()
        ));
        out
    }
}

/// Compares two sweep documents cell by cell.
///
/// `tolerance` is the accepted relative deviation per field (`0.0` demands
/// exact equality — the right setting for two runs of the same deterministic
/// scenario; a small tolerance like `1e-9` compares results across
/// platforms or refactors).
#[must_use]
pub fn diff_documents(a: &SweepDocument, b: &SweepDocument, tolerance: f64) -> DocumentDiff {
    let mut diff = DocumentDiff::default();

    if a.scenario != b.scenario {
        diff.structural
            .push(format!("scenario `{}` vs `{}`", a.scenario, b.scenario));
    }
    if a.config != b.config {
        diff.structural
            .push("experiment configurations differ".to_owned());
    }
    if a.seed_strategy != b.seed_strategy {
        diff.structural.push("seed strategies differ".to_owned());
    }
    if a.points.len() != b.points.len() {
        diff.structural.push(format!(
            "{} point(s) vs {} point(s)",
            a.points.len(),
            b.points.len()
        ));
    }

    for (index, (pa, pb)) in a.points.iter().zip(&b.points).enumerate() {
        if pa.architecture != pb.architecture
            || pa.ports != pb.ports
            || pa.offered_load.to_bits() != pb.offered_load.to_bits()
        {
            diff.structural.push(format!(
                "cell {index}: coordinates differ ({} {}x{} @{} vs {} {}x{} @{})",
                pa.architecture.slug(),
                pa.ports,
                pa.ports,
                pa.offered_load,
                pb.architecture.slug(),
                pb.ports,
                pb.ports,
                pb.offered_load,
            ));
            continue;
        }

        let candidates = [
            (
                "measured_throughput",
                pa.measured_throughput,
                pb.measured_throughput,
            ),
            (
                "power_mw",
                pa.power.as_milliwatts(),
                pb.power.as_milliwatts(),
            ),
            (
                "switch_energy_j",
                pa.switch_energy.as_joules(),
                pb.switch_energy.as_joules(),
            ),
            (
                "buffer_energy_j",
                pa.buffer_energy.as_joules(),
                pb.buffer_energy.as_joules(),
            ),
            (
                "wire_energy_j",
                pa.wire_energy.as_joules(),
                pb.wire_energy.as_joules(),
            ),
            (
                "buffered_words",
                pa.buffered_words as f64,
                pb.buffered_words as f64,
            ),
            (
                "average_latency_cycles",
                pa.average_latency_cycles,
                pb.average_latency_cycles,
            ),
            ("latency_p50", pa.latency_p50, pb.latency_p50),
            ("latency_p95", pa.latency_p95, pb.latency_p95),
            ("latency_p99", pa.latency_p99, pb.latency_p99),
            // Network aggregates: absent stats map to NaN, so two
            // single-router points agree bit-for-bit (same NaN) while a
            // present-vs-absent pair reports as a NaN difference below.
            (
                "average_hops",
                pa.network.map_or(f64::NAN, |n| n.average_hops),
                pb.network.map_or(f64::NAN, |n| n.average_hops),
            ),
            (
                "hops_p50",
                pa.network.map_or(f64::NAN, |n| n.hops_p50),
                pb.network.map_or(f64::NAN, |n| n.hops_p50),
            ),
            (
                "hops_p95",
                pa.network.map_or(f64::NAN, |n| n.hops_p95),
                pb.network.map_or(f64::NAN, |n| n.hops_p95),
            ),
            (
                "hops_p99",
                pa.network.map_or(f64::NAN, |n| n.hops_p99),
                pb.network.map_or(f64::NAN, |n| n.hops_p99),
            ),
            (
                "link_energy_j",
                pa.network.map_or(f64::NAN, |n| n.link_energy.as_joules()),
                pb.network.map_or(f64::NAN, |n| n.link_energy.as_joules()),
            ),
            (
                "per_hop_energy_j",
                pa.network
                    .map_or(f64::NAN, |n| n.per_hop_energy.as_joules()),
                pb.network
                    .map_or(f64::NAN, |n| n.per_hop_energy.as_joules()),
            ),
            (
                "saturation_throughput",
                pa.network.map_or(f64::NAN, |n| n.saturation_throughput),
                pb.network.map_or(f64::NAN, |n| n.saturation_throughput),
            ),
            (
                "link_words",
                pa.network.map_or(f64::NAN, |n| n.link_words as f64),
                pb.network.map_or(f64::NAN, |n| n.link_words as f64),
            ),
            (
                "credit_stalls",
                pa.network.map_or(f64::NAN, |n| n.credit_stalls as f64),
                pb.network.map_or(f64::NAN, |n| n.credit_stalls as f64),
            ),
        ];
        let fields: Vec<FieldDelta> = candidates
            .into_iter()
            .map(|(field, a, b)| FieldDelta { field, a, b })
            // A NaN deviation (one side NaN) must report as a difference,
            // not vanish through a false `>` comparison.
            .filter(|delta| {
                let relative = delta.relative();
                delta.a.to_bits() != delta.b.to_bits()
                    && (relative.is_nan() || relative > tolerance)
            })
            .collect();
        if !fields.is_empty() {
            diff.cells.push(CellDiff {
                index,
                label: format!(
                    "{} {}x{} @{:.0}%",
                    pa.architecture.slug(),
                    pa.ports,
                    pa.ports,
                    pa.offered_load * 100.0
                ),
                fields,
            });
        }
    }

    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SeedStrategy;
    use crate::config::ExperimentConfig;
    use crate::engine::SweepEngine;

    fn document() -> SweepDocument {
        let config = ExperimentConfig {
            port_counts: vec![4],
            offered_loads: vec![0.2, 0.4],
            warmup_cycles: 50,
            measure_cycles: 200,
            ..ExperimentConfig::quick()
        };
        let points = SweepEngine::new().with_threads(1).run(&config).unwrap();
        SweepDocument {
            scenario: "diff-test".into(),
            config,
            seed_strategy: SeedStrategy::Shared,
            points,
        }
    }

    #[test]
    fn identical_documents_match() {
        let doc = document();
        let diff = diff_documents(&doc, &doc.clone(), 0.0);
        assert!(diff.is_match());
        assert_eq!(diff.format(), "documents match\n");
    }

    #[test]
    fn value_drift_is_reported_per_cell_and_field() {
        let a = document();
        let mut b = a.clone();
        b.points[1].measured_throughput *= 1.5;
        b.points[1].average_latency_cycles += 1.0;
        let diff = diff_documents(&a, &b, 0.0);
        assert!(!diff.is_match());
        assert!(diff.structural.is_empty());
        assert_eq!(diff.cells.len(), 1);
        assert_eq!(diff.cells[0].index, 1);
        let fields: Vec<&str> = diff.cells[0].fields.iter().map(|d| d.field).collect();
        assert_eq!(
            fields,
            vec!["measured_throughput", "average_latency_cycles"]
        );
        let report = diff.format();
        assert!(report.contains("cell 1"));
        assert!(report.contains("measured_throughput"));
        assert!(report.contains("1 differing cell(s)"));
    }

    #[test]
    fn latency_percentile_drift_is_reported() {
        let a = document();
        let mut b = a.clone();
        b.points[0].latency_p50 += 1.0;
        b.points[0].latency_p95 += 2.0;
        b.points[0].latency_p99 += 3.0;
        let diff = diff_documents(&a, &b, 0.0);
        assert!(!diff.is_match());
        let fields: Vec<&str> = diff.cells[0].fields.iter().map(|d| d.field).collect();
        assert_eq!(fields, vec!["latency_p50", "latency_p95", "latency_p99"]);
    }

    #[test]
    fn network_aggregates_diff_like_any_other_field() {
        let stats = fabric_power_noc::NetworkStats {
            width: 2,
            height: 2,
            torus: false,
            routing: fabric_power_noc::RoutingPolicy::DimensionOrder,
            average_hops: 1.5,
            hops_p50: 1.0,
            hops_p95: 2.0,
            hops_p99: 2.0,
            link_energy: fabric_power_tech::units::Energy::from_picojoules(3.0),
            per_hop_energy: fabric_power_tech::units::Energy::from_picojoules(0.5),
            saturation_throughput: 0.2,
            link_words: 100,
            credit_stalls: 4,
        };
        // Both sides carrying stats: only the drifted field reports.
        let mut a = document();
        a.points[0].network = Some(stats);
        let mut b = a.clone();
        b.points[0].network = Some(fabric_power_noc::NetworkStats {
            average_hops: 1.75,
            ..stats
        });
        let diff = diff_documents(&a, &b, 0.0);
        assert_eq!(diff.cells.len(), 1);
        let fields: Vec<&str> = diff.cells[0].fields.iter().map(|d| d.field).collect();
        assert_eq!(fields, vec!["average_hops"]);
        // Present vs absent is a difference (NaN never hides), at any
        // tolerance.
        let mut stripped = a.clone();
        stripped.points[0].network = None;
        for tolerance in [0.0, 1e-3] {
            let diff = diff_documents(&a, &stripped, tolerance);
            assert!(!diff.is_match(), "tol {tolerance}");
            assert!(diff.cells[0]
                .fields
                .iter()
                .any(|d| d.field == "average_hops"));
        }
        // Two single-router documents (no stats anywhere) still match: the
        // NaN placeholders agree bit for bit.
        assert!(diff_documents(&document(), &document(), 0.0).is_match());
    }

    #[test]
    fn tolerance_absorbs_small_relative_drift() {
        let a = document();
        let mut b = a.clone();
        b.points[0].measured_throughput *= 1.0 + 1e-12;
        assert!(!diff_documents(&a, &b, 0.0).is_match());
        assert!(diff_documents(&a, &b, 1e-9).is_match());
    }

    #[test]
    fn shape_and_metadata_mismatches_are_structural() {
        let a = document();

        let mut renamed = a.clone();
        renamed.scenario = "other".into();
        let diff = diff_documents(&a, &renamed, 0.0);
        assert_eq!(diff.structural.len(), 1);
        assert!(diff.structural[0].contains("scenario"));

        let mut truncated = a.clone();
        truncated.points.pop();
        assert!(diff_documents(&a, &truncated, 0.0)
            .structural
            .iter()
            .any(|n| n.contains("point(s)")));

        let mut shuffled = a.clone();
        shuffled.points.swap(0, 1);
        let diff = diff_documents(&a, &shuffled, 0.0);
        assert!(diff
            .structural
            .iter()
            .any(|n| n.contains("coordinates differ")));
    }

    #[test]
    fn nan_on_one_side_is_a_difference_not_a_match() {
        let a = document();
        let mut b = a.clone();
        b.points[0].average_latency_cycles = f64::NAN;
        for tolerance in [0.0, 1e-3] {
            let diff = diff_documents(&a, &b, tolerance);
            assert!(!diff.is_match(), "NaN must never hide (tol {tolerance})");
            assert_eq!(diff.cells[0].fields[0].field, "average_latency_cycles");
        }
    }

    #[test]
    fn field_delta_relative_handles_zero() {
        assert_eq!(
            FieldDelta {
                field: "x",
                a: 0.0,
                b: 0.0
            }
            .relative(),
            0.0
        );
        assert!(
            (FieldDelta {
                field: "x",
                a: 1.0,
                b: 2.0
            }
            .relative()
                - 0.5)
                .abs()
                < 1e-12
        );
    }
}
