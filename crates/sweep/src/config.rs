//! Experiment configuration: the declarative description of a sweep grid.
//!
//! Moved here from `fabric_power_core::experiment` when the sweep engine
//! became its own subsystem; `fabric_power_core` re-exports these types so
//! the original paths keep working.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::energy_model::{EnergyModelError, FabricEnergyModel};
use fabric_power_fabric::provider::ModelSpec;
use fabric_power_fabric::Architecture;
use fabric_power_netlist::characterize::CharacterizationConfig;
use fabric_power_netlist::library::CellLibrary;
use fabric_power_router::config::SimulationConfig;
use fabric_power_router::sim::SimulationError;
use fabric_power_router::traffic::TrafficPattern;
use fabric_power_tech::Technology;

/// Where the bit-energy components come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSource {
    /// The paper's published Table 1 / Table 2 / 87 fJ values.
    Paper,
    /// Everything re-derived from the substrate models (gate-level
    /// characterization, structural SRAM model, wire model).
    Derived,
}

/// Errors raised while running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// Building an energy model failed.
    Model(EnergyModelError),
    /// Building or running the simulator failed.
    Simulation(SimulationError),
    /// A shard index outside the plan was requested.
    InvalidShard {
        /// The requested shard index.
        index: usize,
        /// How many shards the plan has.
        shards: usize,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Model(e) => write!(f, "energy model: {e}"),
            Self::Simulation(e) => write!(f, "simulation: {e}"),
            Self::InvalidShard { index, shards } => write!(
                f,
                "shard index {index} is out of range: the plan has {shards} shard(s)"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<EnergyModelError> for ExperimentError {
    fn from(e: EnergyModelError) -> Self {
        Self::Model(e)
    }
}

impl From<SimulationError> for ExperimentError {
    fn from(e: SimulationError) -> Self {
        Self::Simulation(e)
    }
}

/// Configuration shared by every experiment in the evaluation section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fabric sizes to evaluate (the paper uses 4, 8, 16, 32).
    pub port_counts: Vec<usize>,
    /// Offered loads to evaluate (the paper sweeps 10 %–50 %).
    pub offered_loads: Vec<f64>,
    /// Architectures to compare.
    pub architectures: Vec<Architecture>,
    /// Payload words per packet.
    pub packet_words: usize,
    /// Warmup cycles per simulation.
    pub warmup_cycles: u64,
    /// Measured cycles per simulation.
    pub measure_cycles: u64,
    /// Random seed.
    pub seed: u64,
    /// Traffic destination pattern.
    pub pattern: TrafficPattern,
    /// Source of the bit-energy components.
    pub model_source: ModelSource,
}

impl ExperimentConfig {
    /// The paper's full evaluation grid: 4 architectures × {4, 8, 16, 32}
    /// ports × loads 10 %–50 %.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            port_counts: vec![4, 8, 16, 32],
            offered_loads: vec![0.10, 0.20, 0.30, 0.40, 0.50],
            architectures: Architecture::ALL.to_vec(),
            packet_words: 16,
            warmup_cycles: 500,
            measure_cycles: 4000,
            seed: 0xDAC_2002,
            pattern: TrafficPattern::UniformRandom,
            model_source: ModelSource::Paper,
        }
    }

    /// A reduced grid that finishes in well under a second — used by unit
    /// tests, examples and smoke benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            port_counts: vec![4, 8],
            offered_loads: vec![0.10, 0.30, 0.50],
            warmup_cycles: 100,
            measure_cycles: 600,
            ..Self::paper()
        }
    }

    /// Number of operating points the grid expands to.
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.port_counts.len() * self.architectures.len() * self.offered_loads.len()
    }

    /// The complete model specification for one fabric size according to
    /// [`ExperimentConfig::model_source`] — the value the model-provider
    /// layer memoizes and content-addresses on disk.
    #[must_use]
    pub fn model_spec(&self, ports: usize) -> ModelSpec {
        match self.model_source {
            ModelSource::Paper => ModelSpec::paper(ports),
            ModelSource::Derived => ModelSpec::derived(
                ports,
                Technology::tsmc180(),
                CellLibrary::calibrated_018um(),
                CharacterizationConfig::quick(),
            ),
        }
    }

    /// Builds the energy model for one fabric size according to
    /// [`ExperimentConfig::model_source`].
    ///
    /// Callers that evaluate more than one operating point should go through
    /// a [`fabric_power_fabric::provider::ModelProvider`] with
    /// [`ExperimentConfig::model_spec`] instead, so identical models are
    /// built once and shared.
    ///
    /// # Errors
    ///
    /// Propagates [`EnergyModelError`].
    pub fn energy_model(&self, ports: usize) -> Result<FabricEnergyModel, EnergyModelError> {
        self.model_spec(ports).build()
    }

    /// Builds the simulator configuration for one operating point, with an
    /// explicit per-cell seed (see [`crate::SeedStrategy`]).
    #[must_use]
    pub fn simulation_config(
        &self,
        architecture: Architecture,
        ports: usize,
        offered_load: f64,
        seed: u64,
    ) -> SimulationConfig {
        SimulationConfig {
            architecture,
            ports,
            offered_load,
            packet_words: self.packet_words,
            warmup_cycles: self.warmup_cycles,
            measure_cycles: self.measure_cycles,
            seed,
            pattern: self.pattern,
            ..SimulationConfig::new(architecture, ports, offered_load)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_counts_every_point() {
        let config = ExperimentConfig::paper();
        assert_eq!(config.grid_size(), 4 * 4 * 5);
        assert_eq!(ExperimentConfig::quick().grid_size(), 2 * 4 * 3);
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = ExperimentConfig::paper();
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(config, back);
    }

    #[test]
    fn experiment_errors_display() {
        let err = ExperimentError::from(EnergyModelError::InvalidPortCount { ports: 7 });
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn model_spec_tracks_the_model_source() {
        let paper = ExperimentConfig::paper();
        assert!(!paper.model_spec(8).is_derived());
        let derived = ExperimentConfig {
            model_source: ModelSource::Derived,
            ..ExperimentConfig::paper()
        };
        assert!(derived.model_spec(8).is_derived());
        // The spec is the single source of truth: `energy_model` builds it.
        assert_eq!(
            paper.energy_model(8).unwrap(),
            paper.model_spec(8).build().unwrap()
        );
        assert_ne!(
            paper.model_spec(8).cache_key(),
            derived.model_spec(8).cache_key()
        );
    }
}
