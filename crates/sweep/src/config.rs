//! Experiment configuration: the declarative description of a sweep grid.
//!
//! Moved here from `fabric_power_core::experiment` when the sweep engine
//! became its own subsystem; `fabric_power_core` re-exports these types so
//! the original paths keep working.

use serde::{Deserialize, Serialize};

use fabric_power_fabric::energy_model::{EnergyModelError, FabricEnergyModel};
use fabric_power_fabric::provider::ModelSpec;
use fabric_power_fabric::Architecture;
use fabric_power_netlist::characterize::CharacterizationConfig;
use fabric_power_netlist::library::CellLibrary;
use fabric_power_noc::{NetworkConfig, NetworkError, RoutingPolicy};
use fabric_power_router::config::SimulationConfig;
use fabric_power_router::sim::SimulationError;
use fabric_power_router::traffic::TrafficPattern;
use fabric_power_tech::Technology;

/// Where the bit-energy components come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSource {
    /// The paper's published Table 1 / Table 2 / 87 fJ values.
    Paper,
    /// Everything re-derived from the substrate models (gate-level
    /// characterization, structural SRAM model, wire model).
    Derived,
}

/// Errors raised while running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// Building an energy model failed.
    Model(EnergyModelError),
    /// Building or running the simulator failed.
    Simulation(SimulationError),
    /// Building or running the network simulator failed.
    Network(NetworkError),
    /// A shard index outside the plan was requested.
    InvalidShard {
        /// The requested shard index.
        index: usize,
        /// How many shards the plan has.
        shards: usize,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Model(e) => write!(f, "energy model: {e}"),
            Self::Simulation(e) => write!(f, "simulation: {e}"),
            Self::Network(e) => write!(f, "network: {e}"),
            Self::InvalidShard { index, shards } => write!(
                f,
                "shard index {index} is out of range: the plan has {shards} shard(s)"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<EnergyModelError> for ExperimentError {
    fn from(e: EnergyModelError) -> Self {
        Self::Model(e)
    }
}

impl From<SimulationError> for ExperimentError {
    fn from(e: SimulationError) -> Self {
        Self::Simulation(e)
    }
}

impl From<NetworkError> for ExperimentError {
    fn from(e: NetworkError) -> Self {
        Self::Network(e)
    }
}

/// One grid shape of a network sweep's mesh axis.
///
/// (A dedicated struct rather than a `(usize, usize)` tuple so the JSON form
/// is self-describing: `{"width": 4, "height": 4}`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshSize {
    /// Routers along the X axis.
    pub width: usize,
    /// Routers along the Y axis.
    pub height: usize,
}

impl MeshSize {
    /// A `width`×`height` grid.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        Self { width, height }
    }
}

/// The network axis of a sweep: the mesh sizes to evaluate plus the link and
/// routing knobs every size shares.
///
/// Present on an [`ExperimentConfig`] it turns each operating point into a
/// network-of-routers run: the grid gains a fourth (outermost) axis over
/// `meshes`, `port_counts` becomes the per-node fabric radix, and
/// `offered_loads` the injection rate at each node's local port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSweepConfig {
    /// Grid shapes to evaluate (the sweep's fourth axis).
    pub meshes: Vec<MeshSize>,
    /// `true` for tori (wraparound links), `false` for meshes.
    pub torus: bool,
    /// Next-hop selection policy.
    pub routing: RoutingPolicy,
    /// Credit depth of each inter-router link.
    pub link_depth: usize,
    /// Cycles a packet spends crossing one inter-router link.
    pub link_latency: u64,
    /// Electrical length of one inter-router link in wire-grid units.
    pub link_grids: u32,
}

impl NetworkSweepConfig {
    /// A mesh axis over the given sizes with the default link knobs of
    /// [`NetworkConfig::mesh`] (dimension-order routing, depth 4,
    /// single-cycle links, 16-grid links).
    #[must_use]
    pub fn meshes(sizes: &[(usize, usize)]) -> Self {
        let template = NetworkConfig::mesh(1, 1);
        Self {
            meshes: sizes
                .iter()
                .map(|&(width, height)| MeshSize::new(width, height))
                .collect(),
            torus: false,
            routing: template.routing,
            link_depth: template.link_depth,
            link_latency: template.link_latency,
            link_grids: template.link_grids,
        }
    }

    /// The full per-run network configuration for one mesh size.
    #[must_use]
    pub fn network_config(&self, mesh: MeshSize) -> NetworkConfig {
        NetworkConfig {
            width: mesh.width,
            height: mesh.height,
            torus: self.torus,
            routing: self.routing,
            link_depth: self.link_depth,
            link_latency: self.link_latency,
            link_grids: self.link_grids,
        }
    }
}

/// Configuration shared by every experiment in the evaluation section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fabric sizes to evaluate (the paper uses 4, 8, 16, 32).
    pub port_counts: Vec<usize>,
    /// Offered loads to evaluate (the paper sweeps 10 %–50 %).
    pub offered_loads: Vec<f64>,
    /// Architectures to compare.
    pub architectures: Vec<Architecture>,
    /// Payload words per packet.
    pub packet_words: usize,
    /// Warmup cycles per simulation.
    pub warmup_cycles: u64,
    /// Measured cycles per simulation.
    pub measure_cycles: u64,
    /// Random seed.
    pub seed: u64,
    /// Traffic destination pattern.
    pub pattern: TrafficPattern,
    /// Source of the bit-energy components.
    pub model_source: ModelSource,
    /// Optional network axis: when present, every operating point runs a
    /// mesh/torus of routers instead of a single fabric, and the grid gains
    /// an outermost axis over the listed mesh sizes.  Absent from (and
    /// omitted in) single-router configurations, so documents emitted before
    /// the network layer existed keep their exact bytes and still parse.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub network: Option<NetworkSweepConfig>,
}

impl ExperimentConfig {
    /// The paper's full evaluation grid: 4 architectures × {4, 8, 16, 32}
    /// ports × loads 10 %–50 %.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            port_counts: vec![4, 8, 16, 32],
            offered_loads: vec![0.10, 0.20, 0.30, 0.40, 0.50],
            architectures: Architecture::ALL.to_vec(),
            packet_words: 16,
            warmup_cycles: 500,
            measure_cycles: 4000,
            seed: 0xDAC_2002,
            pattern: TrafficPattern::UniformRandom,
            model_source: ModelSource::Paper,
            network: None,
        }
    }

    /// A reduced grid that finishes in well under a second — used by unit
    /// tests, examples and smoke benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            port_counts: vec![4, 8],
            offered_loads: vec![0.10, 0.30, 0.50],
            warmup_cycles: 100,
            measure_cycles: 600,
            ..Self::paper()
        }
    }

    /// Number of operating points the grid expands to (including the mesh
    /// axis when a network sweep is configured).
    #[must_use]
    pub fn grid_size(&self) -> usize {
        let meshes = self.network.as_ref().map_or(1, |n| n.meshes.len());
        meshes * self.port_counts.len() * self.architectures.len() * self.offered_loads.len()
    }

    /// The complete model specification for one fabric size according to
    /// [`ExperimentConfig::model_source`] — the value the model-provider
    /// layer memoizes and content-addresses on disk.
    #[must_use]
    pub fn model_spec(&self, ports: usize) -> ModelSpec {
        match self.model_source {
            ModelSource::Paper => ModelSpec::paper(ports),
            ModelSource::Derived => ModelSpec::derived(
                ports,
                Technology::tsmc180(),
                CellLibrary::calibrated_018um(),
                CharacterizationConfig::quick(),
            ),
        }
    }

    /// Builds the energy model for one fabric size according to
    /// [`ExperimentConfig::model_source`].
    ///
    /// Callers that evaluate more than one operating point should go through
    /// a [`fabric_power_fabric::provider::ModelProvider`] with
    /// [`ExperimentConfig::model_spec`] instead, so identical models are
    /// built once and shared.
    ///
    /// # Errors
    ///
    /// Propagates [`EnergyModelError`].
    pub fn energy_model(&self, ports: usize) -> Result<FabricEnergyModel, EnergyModelError> {
        self.model_spec(ports).build()
    }

    /// Builds the simulator configuration for one operating point, with an
    /// explicit per-cell seed (see [`crate::SeedStrategy`]).
    #[must_use]
    pub fn simulation_config(
        &self,
        architecture: Architecture,
        ports: usize,
        offered_load: f64,
        seed: u64,
    ) -> SimulationConfig {
        SimulationConfig {
            architecture,
            ports,
            offered_load,
            packet_words: self.packet_words,
            warmup_cycles: self.warmup_cycles,
            measure_cycles: self.measure_cycles,
            seed,
            pattern: self.pattern,
            ..SimulationConfig::new(architecture, ports, offered_load)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_counts_every_point() {
        let config = ExperimentConfig::paper();
        assert_eq!(config.grid_size(), 4 * 4 * 5);
        assert_eq!(ExperimentConfig::quick().grid_size(), 2 * 4 * 3);
    }

    #[test]
    fn a_network_axis_multiplies_the_grid_and_round_trips() {
        let config = ExperimentConfig {
            network: Some(NetworkSweepConfig::meshes(&[(4, 4), (8, 8)])),
            ..ExperimentConfig::quick()
        };
        assert_eq!(config.grid_size(), 2 * 2 * 4 * 3);
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(config, back);
        // The axis expands into per-mesh network configurations.
        let network = config.network.as_ref().unwrap();
        let built = network.network_config(network.meshes[1]);
        assert_eq!((built.width, built.height), (8, 8));
        assert_eq!(
            built.link_depth,
            fabric_power_noc::NetworkConfig::mesh(1, 1).link_depth
        );
        // A config without the axis omits the key entirely, keeping
        // pre-network documents byte-identical.
        let single = serde_json::to_string(&ExperimentConfig::quick()).expect("serialize");
        assert!(!single.contains("network"));
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = ExperimentConfig::paper();
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(config, back);
    }

    #[test]
    fn experiment_errors_display() {
        let err = ExperimentError::from(EnergyModelError::InvalidPortCount { ports: 7 });
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn model_spec_tracks_the_model_source() {
        let paper = ExperimentConfig::paper();
        assert!(!paper.model_spec(8).is_derived());
        let derived = ExperimentConfig {
            model_source: ModelSource::Derived,
            ..ExperimentConfig::paper()
        };
        assert!(derived.model_spec(8).is_derived());
        // The spec is the single source of truth: `energy_model` builds it.
        assert_eq!(
            paper.energy_model(8).unwrap(),
            paper.model_spec(8).build().unwrap()
        );
        assert_ne!(
            paper.model_spec(8).cache_key(),
            derived.model_spec(8).cache_key()
        );
    }
}
