//! The dispatcher side of a `fabric-power` work-server fleet.
//!
//! A [`WorkServer`] owns one [`SweepPlan`] and leases its shard indices to
//! workers over the line-delimited JSON protocol in [`crate::protocol`]
//! (plain [`std::net::TcpListener`] — no framework, no new dependencies).
//! Workers claim, execute and submit shards until the last one lands, at
//! which point the server merges the collected [`ShardDocument`]s with
//! [`merge_documents`] and returns — the merged document is byte-identical
//! to a single-process [`crate::engine::SweepEngine::run`], whatever the
//! fleet's size or scheduling, because every cell's seed was fixed at plan
//! time and merge reassembles by cell index.
//!
//! # Partial failure
//!
//! A lease is a promise, not a fact.  When a worker's connection drops, or a
//! leased shard outlives [`ServeOptions::lease_timeout`] without a
//! submission, the shard goes back in the queue and the next claim re-leases
//! it.  Because shard execution is deterministic, a late submission from a
//! presumed-dead worker is still the correct bytes — while the server is up
//! it is accepted if the shard is still open, and answered with a harmless
//! `Stale` if someone else got there first.  Once the plan completes the
//! server only lingers briefly (a short drain grace) before exiting, so a
//! worker still grinding on a long-requeued shard at that point loses its
//! connection and reports an error — size the lease timeout to comfortably
//! exceed the slowest shard and that situation cannot arise.
//!
//! # Trust boundary
//!
//! Submissions come from independent processes, so their self-descriptions
//! are claims to verify, never facts: the plan hash, the shard index, the
//! scenario/configuration/seed-strategy tags, the declared cell range and
//! the per-cell indices are all checked against the server's own plan before
//! a document is admitted to the merge.  (The merge layer re-validates —
//! defense in depth, see [`crate::merge`].)

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fabric_power_obs as obs;
use obs::metrics::names;

use crate::emit::SweepDocument;
use crate::journal::DrainJournal;
use crate::merge::{merge_documents, MergeError, ShardDocument};
use crate::plan::{PlanHeader, SweepPlan};
use crate::protocol::{
    read_line_bounded, write_message, FleetStatus, Request, Response, WorkerStatus,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// The obs target every server-side event is tagged with.
const TARGET: &str = "sweep.server";

/// Where (and whether) a serve run journals its accepted submissions.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Directory holding the journal files (one per plan hash, see
    /// [`crate::journal::journal_path`]); created if missing.
    pub dir: PathBuf,
    /// Restore completed shards from an existing journal before serving
    /// (`serve --resume`).  When false, an existing journal for this plan
    /// is truncated — the fresh drain owns it.
    pub resume: bool,
}

/// Tunables for a [`WorkServer`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How long a leased shard may stay unsubmitted before the server
    /// assumes its worker died and re-leases it.  Must comfortably exceed
    /// the longest single-shard execution time.
    pub lease_timeout: Duration,
    /// What `Wait` responses tell an idle worker to sleep before claiming
    /// again, in milliseconds.
    pub retry_ms: u64,
    /// Durable drain journal, or `None` for the original in-memory-only
    /// behavior.
    pub journal: Option<JournalOptions>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            lease_timeout: Duration::from_secs(60),
            retry_ms: 100,
            journal: None,
        }
    }
}

/// What a completed serve run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// The merged sweep document — byte-identical to a single-process run of
    /// the same plan.
    pub document: SweepDocument,
    /// How many workers completed the handshake over the run's lifetime.
    pub workers: u64,
    /// How many leases were revoked (worker disconnected, or missed its
    /// deadline) and their shards requeued.
    pub requeues: u64,
    /// How many completed shards were restored from the drain journal at
    /// bind time (always 0 without `--journal --resume`).
    pub restored: u64,
}

/// Why a serve run failed.
#[derive(Debug)]
pub enum ServeError {
    /// Accepting connections failed.
    Io(std::io::Error),
    /// The collected shard documents did not merge.  Submission-time
    /// validation makes this unreachable for documents that arrived over the
    /// protocol; it guards the merge layer's own invariants.
    Merge(MergeError),
    /// The server was halted through its [`ServeHandle`] before the drain
    /// completed.  In-memory state is discarded — exactly what a crash
    /// would do — so recovery goes through the drain journal.
    Halted,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "work server I/O: {e}"),
            Self::Merge(e) => write!(f, "merging collected shards: {e}"),
            Self::Halted => write!(f, "serve run halted before the drain completed"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One shard's place in the fleet's lifecycle.
#[derive(Debug)]
enum ShardSlot {
    /// Not yet leased (or requeued after a failed lease).
    Pending,
    /// Out with a worker.
    Leased { worker: u64, deadline: Instant },
    /// Validated result in hand.
    Done(Box<ShardDocument>),
}

/// The server's live view of one connected worker, kept current by the
/// handshake, lease grants, heartbeats and submissions.  Pure
/// observability — lease enforcement still lives in the shard slots.
#[derive(Debug, Default)]
struct WorkerRecord {
    /// The shard this worker currently holds a lease on, if any.
    shard: Option<usize>,
    /// Heartbeat-reported cells completed of that shard.
    cells_done: u64,
    /// Planned cell count of that shard.
    cells_total: u64,
    /// Shards this worker has submitted successfully.
    shards_completed: u64,
}

#[derive(Debug)]
struct State {
    shards: Vec<ShardSlot>,
    /// Monotonic worker-id allocator; its final value is also the count of
    /// workers that completed the handshake.
    next_worker: u64,
    next_lease: u64,
    requeues: u64,
    done: bool,
    /// Currently connected workers (removed again on disconnect).
    workers: BTreeMap<u64, WorkerRecord>,
}

#[derive(Debug)]
struct Shared {
    plan: SweepPlan,
    header: PlanHeader,
    plan_hash: String,
    options: ServeOptions,
    local_addr: SocketAddr,
    started: Instant,
    state: Mutex<State>,
    /// The open drain journal, when one was configured.  Locked *after*
    /// `state` (submit holds both); never the other way around.
    journal: Option<Mutex<DrainJournal>>,
    /// Shards restored from the journal at bind time.
    restored: u64,
    /// Crash switch (see [`ServeHandle::halt`]): every patient read and the
    /// accept loop poll it, so the whole process winds down abruptly —
    /// connections close without a `Drain`, nothing merges.
    halt: AtomicBool,
}

/// Poison-tolerant lock: a panicked connection thread must not wedge the
/// whole fleet.
fn lock(mutex: &Mutex<State>) -> MutexGuard<'_, State> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bound, not-yet-running work server.
#[derive(Debug)]
pub struct WorkServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl WorkServer {
    /// Binds the listener and prepares the lease table; `addr` is anything
    /// [`TcpListener::bind`] accepts (`127.0.0.1:0` picks a free port —
    /// read it back with [`WorkServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.  A plan with no shards is refused up front
    /// ([`std::io::ErrorKind::InvalidInput`]): completion is signalled by
    /// the last submission, which a shardless plan would never produce —
    /// serving it would hang forever instead.  (`SweepPlan::new` cannot
    /// build one, but a hand-edited plan *file* can claim anything.)
    pub fn bind(addr: &str, plan: SweepPlan, options: ServeOptions) -> std::io::Result<Self> {
        if plan.shard_count() == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "the plan has no shards: nothing to serve",
            ));
        }
        let header = plan.header();
        let plan_hash = plan.content_hash();
        let shard_count = plan.shard_count();
        let mut shards: Vec<ShardSlot> = (0..shard_count).map(|_| ShardSlot::Pending).collect();
        let mut restored = 0_u64;
        let journal = match &options.journal {
            Some(journal_options) => {
                let (journal, replay) =
                    DrainJournal::begin(&journal_options.dir, &plan_hash, journal_options.resume)?;
                for document in replay.documents {
                    // A journal record is a disk artifact, not a live
                    // submission — but it crosses the same trust boundary
                    // (the file could have been edited), so it passes the
                    // same validation, and a failing record is dropped (its
                    // shard simply re-runs) rather than poisoning the merge.
                    let index = document.shard_index;
                    match validate_document(&plan, &header, &document) {
                        Ok(()) if matches!(shards[index], ShardSlot::Pending) => {
                            shards[index] = ShardSlot::Done(Box::new(document));
                            restored += 1;
                        }
                        Ok(()) => {}
                        Err(reason) => {
                            obs::warn!(
                                TARGET,
                                "journal record failed validation, shard will re-run",
                                shard = document.shard_index,
                                reason = reason.as_str(),
                            );
                        }
                    }
                }
                Some(Mutex::new(journal))
            }
            None => None,
        };
        let done = shards.iter().all(|slot| matches!(slot, ShardSlot::Done(_)));
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            header,
            plan_hash,
            plan,
            options,
            local_addr,
            started: Instant::now(),
            state: Mutex::new(State {
                shards,
                next_worker: 0,
                next_lease: 0,
                requeues: 0,
                done,
                workers: BTreeMap::new(),
            }),
            journal,
            restored,
            halt: AtomicBool::new(false),
        });
        obs::info!(
            TARGET,
            "serving plan",
            addr = local_addr.to_string(),
            shards = shard_count,
            restored = restored,
        );
        Ok(Self { listener, shared })
    }

    /// A detached handle onto this server, usable from another thread while
    /// [`WorkServer::run`] blocks — chaos tests use it to "crash" the
    /// server at a chosen moment.
    #[must_use]
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The address the server is actually listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The content hash of the plan being served — what workers pin with
    /// `--plan-hash` and every submission must echo.
    #[must_use]
    pub fn plan_hash(&self) -> &str {
        &self.shared.plan_hash
    }

    /// Serves until every shard has been submitted, then merges and returns.
    ///
    /// Blocks the calling thread; each worker connection is handled on its
    /// own thread.  Returns once the merged document exists and every
    /// connection thread has wound down.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors and merge failures.
    pub fn run(self) -> Result<ServeOutcome, ServeError> {
        // Poll rather than block in accept: completion is signalled by the
        // `done` flag, and depending on a self-connect "poke" to unblock a
        // blocking accept would hang the merge whenever that connect fails
        // (e.g. `--listen 0.0.0.0:...`, where the local address is not a
        // connectable one).
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        let mut next_status_line = self.shared.started + STATUS_LINE_PERIOD;
        while !lock(&self.shared.state).done && !self.shared.halt.load(Ordering::Relaxed) {
            if Instant::now() >= next_status_line {
                next_status_line += STATUS_LINE_PERIOD;
                let status = status_snapshot(&self.shared);
                obs::info!(
                    TARGET,
                    "fleet status",
                    shards_done = status.shards_completed,
                    shards_total = status.shards_total,
                    shards_leased = status.shards_leased,
                    cells_done = status.cells_completed,
                    cells_total = status.cells_total,
                    workers = status.workers.len(),
                    requeues = status.requeues,
                );
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The accepted stream may inherit non-blocking mode on
                    // some platforms; connection handling expects blocking
                    // reads with a timeout.
                    stream.set_nonblocking(false)?;
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || {
                        serve_connection(&stream, &shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
        drop(self.listener);
        // Connection threads exit once their worker drains or disconnects
        // (bounded by the read timeout), so this join terminates.  On halt
        // they notice the flag at their next patient-read poll and slam
        // their connections shut without a `Drain`.
        for handle in handles {
            let _ = handle.join();
        }
        if self.shared.halt.load(Ordering::Relaxed) {
            // Crash semantics: nothing merges, the in-memory lease table
            // and collected documents are dropped on the floor.  Whatever
            // the drain journal captured is the only survivor.
            obs::warn!(TARGET, "serve run halted mid-drain");
            return Err(ServeError::Halted);
        }
        let mut state = lock(&self.shared.state);
        // Every connection thread has been joined, so the state is ours
        // alone: move the documents out instead of cloning the entire
        // result set a second time.
        let parts: Vec<ShardDocument> = state
            .shards
            .iter_mut()
            .map(|slot| match std::mem::replace(slot, ShardSlot::Pending) {
                ShardSlot::Done(document) => *document,
                ShardSlot::Pending | ShardSlot::Leased { .. } => {
                    unreachable!("done is only set once every shard is submitted")
                }
            })
            .collect();
        let span = obs::log::span(TARGET, "merge").with_level(obs::Level::Info);
        let document = merge_documents(&parts).map_err(ServeError::Merge)?;
        span.finish();
        Ok(ServeOutcome {
            document,
            workers: state.next_worker,
            requeues: state.requeues,
            restored: self.shared.restored,
        })
    }
}

/// A cloneable, thread-safe handle onto a running (or about-to-run)
/// [`WorkServer`].
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Simulates a server crash: the accept loop stops, every connection
    /// closes abruptly (no `Drain`), [`WorkServer::run`] returns
    /// [`ServeError::Halted`] and all in-memory drain state is discarded.
    /// Only the drain journal survives — which is the point: chaos tests
    /// halt mid-drain and assert that `--resume` recovers byte-identically.
    pub fn halt(&self) {
        self.shared.halt.store(true, Ordering::Relaxed);
    }

    /// Whether [`ServeHandle::halt`] has been called.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.shared.halt.load(Ordering::Relaxed)
    }

    /// How many shards have a validated submission recorded (restored ones
    /// included) — lets a test halt the server only after real progress.
    #[must_use]
    pub fn shards_completed(&self) -> usize {
        lock(&self.shared.state)
            .shards
            .iter()
            .filter(|slot| matches!(slot, ShardSlot::Done(_)))
            .count()
    }
}

/// Runs one worker connection to completion, then requeues whatever leases
/// the worker still held — its disconnection means those shards will never
/// be submitted on this session.  (A merely *silent* worker keeps its
/// connection; its leases fall to the deadline check in [`claim`] instead.)
fn serve_connection(stream: &TcpStream, shared: &Shared) {
    let mut worker_id = None;
    let _ = handle_connection(stream, shared, &mut worker_id);
    if let Some(worker) = worker_id {
        let mut state = lock(&shared.state);
        state.workers.remove(&worker);
        obs::metrics::gauge(names::WORKERS_CONNECTED).add(-1);
        obs::info!(TARGET, "worker disconnected", worker = worker);
        if !state.done {
            let State {
                shards, requeues, ..
            } = &mut *state;
            for slot in shards.iter_mut() {
                if matches!(slot, ShardSlot::Leased { worker: w, .. } if *w == worker) {
                    *slot = ShardSlot::Pending;
                    *requeues += 1;
                    obs::metrics::counter(names::LEASES_REQUEUED).increment();
                    obs::warn!(
                        TARGET,
                        "requeued lease of disconnected worker",
                        worker = worker,
                    );
                }
            }
        }
    }
}

/// How often the accept loop emits its periodic "fleet status" line.
const STATUS_LINE_PERIOD: Duration = Duration::from_secs(5);

/// How long the server keeps answering lingering connections after the plan
/// completes, so a worker mid `Wait`-sleep still gets its `Drain` instead of
/// a slammed door.  Comfortably above the worker's clamped 1 s retry sleep.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// The per-`recv` timeout on worker connections.  Deliberately short and
/// independent of the lease timeout: a timeout is not a verdict on the
/// worker (that is the lease deadline's job, enforced at claim time) but a
/// chance to notice `done` (or a halt) and wind the connection down.
const READ_POLL: Duration = Duration::from_secs(1);

/// The per-`send` deadline on worker connections: a worker that stops
/// draining its socket fails its connection instead of wedging the server's
/// thread forever.
const WRITE_DEADLINE: Duration = Duration::from_secs(10);

/// Reads the next request, tolerating read timeouts while the fleet is
/// still running — a worker is legitimately silent for the whole execution
/// of a leased shard.  The line buffer persists across timeouts, so a
/// message split by a timeout mid-line is reassembled, never dropped.
///
/// Returns `Ok(None)` when the worker closed the connection, or when the
/// plan has been done for longer than [`DRAIN_GRACE`].
fn read_request_patiently(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if shared.halt.load(Ordering::Relaxed) {
            // Simulated crash: die where we stand — no parse of what's
            // buffered, no goodbye.  The caller's error path closes the
            // connection abruptly, exactly like a killed process.
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "server halted",
            ));
        }
        match read_line_bounded(reader, &mut line, MAX_FRAME_BYTES) {
            Ok(0) => {
                return Ok(None);
            }
            Ok(_) if !line.ends_with('\n') => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "connection closed mid-message",
                ));
            }
            Ok(_) => return crate::protocol::parse_line(&line).map(Some),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if lock(&shared.state).done {
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(
    stream: &TcpStream,
    shared: &Shared,
    worker_out: &mut Option<u64>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    // Responses are small except `Welcome`'s header; a worker that stops
    // draining its socket must not wedge this thread forever.
    stream.set_write_timeout(Some(WRITE_DEADLINE))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    // Handshake: the first message must be a compatible Hello — except for
    // read-only `Status` probes, which are answered without a handshake (and
    // may repeat, so `fabric-power status --watch` can poll one connection).
    let (protocol, claimed_hash) = loop {
        match read_request_patiently(&mut reader, shared)? {
            Some(Request::Hello {
                protocol,
                plan_hash,
            }) => break (protocol, plan_hash),
            Some(Request::Status) => {
                write_message(&mut writer, &Response::Status(status_snapshot(shared)))?;
            }
            Some(_) => {
                return write_message(
                    &mut writer,
                    &Response::Error {
                        message: "expected Hello as the first message".into(),
                    },
                );
            }
            None => return Ok(()),
        }
    };
    if protocol != PROTOCOL_VERSION {
        return write_message(
            &mut writer,
            &Response::Error {
                message: format!(
                    "protocol version {protocol} not supported \
                     (this server speaks {PROTOCOL_VERSION})"
                ),
            },
        );
    }
    if let Some(hash) = claimed_hash {
        if hash != shared.plan_hash {
            return write_message(
                &mut writer,
                &Response::Error {
                    message: format!(
                        "stale plan hash {hash}: this server is serving plan {}",
                        shared.plan_hash
                    ),
                },
            );
        }
    }
    let worker = {
        let mut state = lock(&shared.state);
        state.next_worker += 1;
        let worker = state.next_worker;
        state.workers.insert(worker, WorkerRecord::default());
        worker
    };
    *worker_out = Some(worker);
    obs::metrics::gauge(names::WORKERS_CONNECTED).add(1);
    obs::info!(TARGET, "worker connected", worker = worker);
    write_message(
        &mut writer,
        &Response::Welcome {
            worker,
            plan_hash: shared.plan_hash.clone(),
            shard_count: shared.plan.shard_count(),
            header: shared.header.clone(),
        },
    )?;

    loop {
        let request = match read_request_patiently(&mut reader, shared)? {
            Some(request) => request,
            None => return Ok(()), // worker closed; caller requeues leases
        };
        let response = match request {
            Request::Hello { .. } => {
                return write_message(
                    &mut writer,
                    &Response::Error {
                        message: "already greeted on this connection".into(),
                    },
                );
            }
            Request::Goodbye { .. } => return Ok(()),
            Request::Claim { .. } => claim(shared, worker),
            Request::Status => Response::Status(status_snapshot(shared)),
            Request::Heartbeat {
                worker: claimed_worker,
                lease,
                shard,
                cells_done,
                cells_total,
            } => {
                if claimed_worker == worker {
                    heartbeat(shared, worker, lease, shard, cells_done, cells_total)
                } else {
                    Response::Rejected {
                        reason: format!(
                            "heartbeat claims worker {claimed_worker} on \
                             worker {worker}'s connection"
                        ),
                    }
                }
            }
            Request::Submit {
                worker: claimed_worker,
                lease,
                plan_hash,
                document,
            } => {
                if claimed_worker == worker {
                    submit(shared, worker, lease, &plan_hash, document)
                } else {
                    Response::Rejected {
                        reason: format!(
                            "submission claims worker {claimed_worker} on \
                             worker {worker}'s connection"
                        ),
                    }
                }
            }
        };
        write_message(&mut writer, &response)?;
    }
}

/// Grants the lowest pending shard, after requeueing any lease whose
/// deadline has passed.
fn claim(shared: &Shared, worker: u64) -> Response {
    let mut state = lock(&shared.state);
    if state.done {
        return Response::Drain;
    }
    let now = Instant::now();
    {
        let State {
            shards, requeues, ..
        } = &mut *state;
        for (index, slot) in shards.iter_mut().enumerate() {
            if matches!(slot, ShardSlot::Leased { deadline, .. } if *deadline <= now) {
                *slot = ShardSlot::Pending;
                *requeues += 1;
                obs::metrics::counter(names::LEASES_EXPIRED).increment();
                obs::metrics::counter(names::LEASES_REQUEUED).increment();
                obs::warn!(TARGET, "lease expired, shard requeued", shard = index);
            }
        }
    }
    match state
        .shards
        .iter()
        .position(|slot| matches!(slot, ShardSlot::Pending))
    {
        Some(index) => {
            state.next_lease += 1;
            let lease = state.next_lease;
            state.shards[index] = ShardSlot::Leased {
                worker,
                deadline: now + shared.options.lease_timeout,
            };
            let shard = shared.plan.shards[index].clone();
            if let Some(record) = state.workers.get_mut(&worker) {
                record.shard = Some(index);
                record.cells_done = 0;
                record.cells_total = shard.cells.len() as u64;
            }
            obs::metrics::counter(names::LEASES_GRANTED).increment();
            obs::info!(
                TARGET,
                "lease granted",
                worker = worker,
                shard = index,
                lease = lease,
                cells = shard.cells.len(),
            );
            Response::Lease { lease, shard }
        }
        // Everything outstanding is leased to live workers: come back later.
        None => Response::Wait {
            retry_ms: shared.options.retry_ms,
        },
    }
}

/// Applies one progress report: updates the worker's record and, when the
/// worker still holds the lease on that shard, renews the lease deadline —
/// a heartbeating worker is visibly alive, so its shard must not be
/// requeued under it mid-execution.
fn heartbeat(
    shared: &Shared,
    worker: u64,
    lease: u64,
    shard: usize,
    cells_done: u64,
    cells_total: u64,
) -> Response {
    let mut state = lock(&shared.state);
    if let Some(slot) = state.shards.get_mut(shard) {
        if matches!(slot, ShardSlot::Leased { worker: w, .. } if *w == worker) {
            *slot = ShardSlot::Leased {
                worker,
                deadline: Instant::now() + shared.options.lease_timeout,
            };
        }
    }
    if let Some(record) = state.workers.get_mut(&worker) {
        record.shard = Some(shard);
        record.cells_done = cells_done;
        record.cells_total = cells_total;
    }
    obs::metrics::counter(names::HEARTBEATS).increment();
    obs::debug!(
        TARGET,
        "heartbeat",
        worker = worker,
        lease = lease,
        shard = shard,
        cells_done = cells_done,
        cells_total = cells_total,
    );
    Response::Ack
}

/// Assembles the read-only [`FleetStatus`] snapshot a `Status` request is
/// answered with: shard-slot tallies, heartbeat progress of leases still
/// out, and the live worker table.
fn status_snapshot(shared: &Shared) -> FleetStatus {
    let state = lock(&shared.state);
    let mut shards_completed = 0_usize;
    let mut shards_leased = 0_usize;
    let mut shards_pending = 0_usize;
    let mut cells_completed = 0_u64;
    for (index, slot) in state.shards.iter().enumerate() {
        let planned = shared.plan.shards[index].cells.len() as u64;
        match slot {
            ShardSlot::Pending => shards_pending += 1,
            ShardSlot::Leased { worker, .. } => {
                shards_leased += 1;
                // Heartbeat progress, clamped to the plan's own cell count —
                // a worker's claim never inflates the total.
                if let Some(record) = state.workers.get(worker) {
                    if record.shard == Some(index) {
                        cells_completed += record.cells_done.min(planned);
                    }
                }
            }
            ShardSlot::Done(_) => {
                shards_completed += 1;
                cells_completed += planned;
            }
        }
    }
    let workers = state
        .workers
        .iter()
        .map(|(&worker, record)| WorkerStatus {
            worker,
            shard: record.shard,
            cells_done: record.cells_done,
            cells_total: record.cells_total,
            shards_completed: record.shards_completed,
        })
        .collect();
    FleetStatus {
        scenario: shared.header.scenario.clone(),
        plan_hash: shared.plan_hash.clone(),
        protocol: PROTOCOL_VERSION,
        shards_total: state.shards.len(),
        shards_completed,
        shards_leased,
        shards_pending,
        cells_total: shared
            .plan
            .shards
            .iter()
            .map(|shard| shard.cells.len())
            .sum(),
        cells_completed,
        requeues: state.requeues,
        workers,
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        done: state.done,
    }
}

/// Validates and records one submission; the last one flips `done`, which
/// the polling accept loop and every patient read observe on their own.
fn submit(
    shared: &Shared,
    worker: u64,
    lease: u64,
    plan_hash: &str,
    document: Box<ShardDocument>,
) -> Response {
    let _ = lease; // auditing detail; acceptance is decided by shard state
    if plan_hash != shared.plan_hash {
        obs::metrics::counter(names::SUBMISSIONS_REJECTED).increment();
        obs::warn!(TARGET, "submission rejected: wrong plan", worker = worker);
        return Response::Rejected {
            reason: format!(
                "submission is for plan {plan_hash}, this server is serving {}",
                shared.plan_hash
            ),
        };
    }
    if let Err(reason) = validate_document(&shared.plan, &shared.header, &document) {
        obs::metrics::counter(names::SUBMISSIONS_REJECTED).increment();
        obs::warn!(
            TARGET,
            "submission rejected",
            worker = worker,
            reason = reason.as_str(),
        );
        return Response::Rejected { reason };
    }
    let index = document.shard_index;
    let mut state = lock(&shared.state);
    if matches!(state.shards[index], ShardSlot::Done(_)) {
        // A requeued shard finished twice — deterministic execution makes
        // the copies identical, so the late one is harmless.
        obs::debug!(TARGET, "stale submission", worker = worker, shard = index);
        return Response::Stale {
            reason: format!("shard {index} was already submitted"),
        };
    }
    if let Some(journal) = &shared.journal {
        // Journal before acknowledging, so an `Accepted` answer is always
        // backed by a durable record.  A failed append (disk full, injected
        // fault) is rolled back and logged but does NOT fail the
        // submission: durability degrades to "this shard re-runs on
        // resume", the drain itself never aborts.  (Holding the state lock
        // across the append keeps journal order consistent with slot order;
        // journal is always locked after state, so no deadlock.)
        let result = journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(&document);
        if let Err(e) = result {
            obs::metrics::counter(names::JOURNAL_APPEND_ERRORS).increment();
            obs::warn!(
                TARGET,
                "journal append failed, shard kept in memory only",
                shard = index,
                error = e.to_string(),
            );
        }
    }
    state.shards[index] = ShardSlot::Done(document);
    if let Some(record) = state.workers.get_mut(&worker) {
        if record.shard == Some(index) {
            record.shard = None;
            record.cells_done = 0;
            record.cells_total = 0;
        }
        record.shards_completed += 1;
    }
    let remaining = state
        .shards
        .iter()
        .filter(|slot| !matches!(slot, ShardSlot::Done(_)))
        .count();
    if remaining == 0 {
        state.done = true;
    }
    obs::metrics::counter(names::SUBMISSIONS_ACCEPTED).increment();
    obs::info!(
        TARGET,
        "submission accepted",
        worker = worker,
        shard = index,
        remaining = remaining,
    );
    Response::Accepted { remaining }
}

/// The submission-time trust boundary: every self-description in a worker's
/// document must agree with the server's own plan.  Takes the plan and
/// header directly (not [`Shared`]) because journal replay runs the same
/// check before `Shared` exists — a journal file crosses the same boundary.
fn validate_document(
    plan: &SweepPlan,
    header: &PlanHeader,
    document: &ShardDocument,
) -> Result<(), String> {
    if document.shard_index >= plan.shard_count() {
        return Err(format!(
            "shard index {} is out of range: the plan has {} shard(s)",
            document.shard_index,
            plan.shard_count()
        ));
    }
    if document.shard_total != plan.shard_count() {
        return Err(format!(
            "document claims {} total shard(s), the plan has {}",
            document.shard_total,
            plan.shard_count()
        ));
    }
    if document.scenario != header.scenario {
        return Err(format!(
            "document is for scenario `{}`, the plan is `{}`",
            document.scenario, header.scenario
        ));
    }
    if document.config != header.config {
        return Err("document's experiment configuration differs from the plan's".into());
    }
    if document.seed_strategy != header.seed_strategy {
        return Err("document's seed strategy differs from the plan's".into());
    }
    let shard = &plan.shards[document.shard_index];
    if document.cell_range != shard.cell_index_range() {
        return Err(format!(
            "shard {} declares cell range {:?}, the plan says {:?}",
            document.shard_index,
            document.cell_range,
            shard.cell_index_range()
        ));
    }
    if document.results.len() != shard.cells.len()
        || document
            .results
            .iter()
            .zip(&shard.cells)
            .any(|(result, cell)| result.index != cell.index)
    {
        return Err(format!(
            "shard {}'s results do not cover exactly the planned cells",
            document.shard_index
        ));
    }
    Ok(())
}
