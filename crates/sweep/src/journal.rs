//! The durable drain journal: crash-safe persistence for a work server's
//! accepted shard submissions.
//!
//! `fabric-power serve --journal <dir>` appends every accepted
//! [`ShardDocument`] to an append-only file keyed by the plan's
//! [`crate::plan::SweepPlan::content_hash`] (`<dir>/<hash>.journal`), one
//! checksummed JSON record per line, fsynced before the submission is
//! acknowledged.  If the server is killed mid-drain, `serve --resume`
//! replays the journal, restores every intact record as a completed shard,
//! and re-leases only the remainder — and because shard execution is
//! deterministic and the merge reassembles by cell index, the resumed
//! merge is byte-identical to an uninterrupted run.
//!
//! # Record format and crash tolerance
//!
//! Each record is one JSON line carrying the format version, the plan
//! hash, the shard index, a domain-separated checksum of the payload, and
//! the payload itself (the shard document's compact JSON, as a string).  A
//! crash can tear the final record — truncate it mid-line — so replay
//! accepts the longest prefix of intact records and drops everything from
//! the first bad byte on: a torn tail only costs re-running the shards it
//! covered, never the records before it.  Duplicate records for the same
//! shard (a submission journaled twice across a crash) are valid; replay
//! keeps the first copy (deterministic execution makes them identical).
//! Resuming also truncates the file back to its intact prefix, so new
//! appends never land after torn bytes.
//!
//! Journal appends are deliberately *non-fatal* to the serve loop: a
//! failed append (ENOSPC, injected fault) is rolled back, logged and
//! counted (`journal.append_errors`), and the submission is still accepted
//! in memory — durability degrades to "that shard re-runs on resume", the
//! drain itself never aborts.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fabric_power_obs as obs;
use obs::metrics::names;
use serde::{Deserialize, Serialize};

use crate::merge::ShardDocument;

/// The obs target journal events are tagged with.
const TARGET: &str = "sweep.journal";

/// Bump on any incompatible record-shape change; replay refuses mismatched
/// records instead of mis-parsing them.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Domain-separation prefix for record checksums, so a journal checksum
/// can never collide with the plan-hash or model-cache-key domains.
const JOURNAL_HASH_DOMAIN: &str = "fabric-power drain-journal v1";

/// One journal line: a self-describing, checksummed envelope around a
/// shard document's compact JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalRecord {
    /// [`JOURNAL_FORMAT_VERSION`] at write time.
    v: u32,
    /// The plan this record belongs to — a renamed or cross-wired journal
    /// file cannot smuggle another plan's shards into a resume.
    plan_hash: String,
    /// The shard the payload claims to be (cross-checked against the
    /// payload itself at replay).
    shard_index: usize,
    /// Domain-separated checksum of `payload` (see [`record_checksum`]).
    checksum: String,
    /// The shard document, as its own compact JSON string.
    payload: String,
}

fn record_checksum(payload: &str) -> String {
    fabric_power_fabric::provider::stable_hash_hex(
        format!("{JOURNAL_HASH_DOMAIN}:{payload}").as_bytes(),
    )
}

/// The journal file for `plan_hash` under `dir`.
#[must_use]
pub fn journal_path(dir: &Path, plan_hash: &str) -> PathBuf {
    dir.join(format!("{plan_hash}.journal"))
}

/// What replaying a journal recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// The recovered shard documents, first copy per shard, journal order.
    pub documents: Vec<ShardDocument>,
    /// Intact records read (including duplicates).
    pub records: u64,
    /// Intact records skipped because their shard was already recovered.
    pub duplicates: u64,
    /// Bytes of the intact record prefix (the resume point).
    pub valid_bytes: u64,
    /// Bytes dropped after the first torn or corrupt record.
    pub dropped_bytes: u64,
}

/// An open, append-only drain journal.
#[derive(Debug)]
pub struct DrainJournal {
    file: File,
    path: PathBuf,
    plan_hash: String,
    /// Byte length of the intact prefix — where the next append lands, and
    /// where a failed append rolls back to.
    len: u64,
    appended: u64,
}

impl DrainJournal {
    /// Opens (creating `dir` as needed) the journal for `plan_hash`.
    ///
    /// With `resume` false the journal is truncated — a fresh drain owns
    /// the whole file.  With `resume` true any existing records are
    /// replayed first (tolerating a torn tail, which is truncated away)
    /// and returned alongside the journal; a missing file resumes as
    /// empty.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors.
    pub fn begin(
        dir: &Path,
        plan_hash: &str,
        resume: bool,
    ) -> std::io::Result<(Self, JournalReplay)> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir, plan_hash);
        let replay = if resume {
            let replay = replay(&path, plan_hash)?;
            if replay.dropped_bytes > 0 {
                obs::warn!(
                    TARGET,
                    "dropped torn journal tail",
                    bytes = replay.dropped_bytes,
                    records_kept = replay.records,
                );
            }
            replay
        } else {
            JournalReplay::default()
        };
        // Append mode, not a cursor: O_APPEND writes always land at the
        // current end of file, so the set_len rollback after a failed
        // append can never leave a zero-filled hole under a later record.
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Drop the torn tail (or, on a fresh drain, everything): appends
        // must continue the intact prefix, never follow garbage bytes.
        file.set_len(replay.valid_bytes)?;
        obs::info!(
            TARGET,
            "journal open",
            path = path.display().to_string(),
            restored = replay.documents.len(),
        );
        Ok((
            Self {
                file,
                path,
                plan_hash: plan_hash.to_owned(),
                len: replay.valid_bytes,
                appended: 0,
            },
            replay,
        ))
    }

    /// Where this journal lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (not counting replayed ones).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one accepted shard document and fsyncs it durable.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors — including injected disk
    /// faults.  On any failure the file is rolled back (best-effort) to
    /// its length before the append, so a half-written record never
    /// precedes later good ones.
    pub fn append(&mut self, document: &ShardDocument) -> std::io::Result<()> {
        let payload = serde_json::to_string(document)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let record = JournalRecord {
            v: JOURNAL_FORMAT_VERSION,
            plan_hash: self.plan_hash.clone(),
            shard_index: document.shard_index,
            checksum: record_checksum(&payload),
            payload,
        };
        let mut line = serde_json::to_string(&record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        let result = self.append_bytes(line.as_bytes());
        if result.is_err() {
            // Roll the torn bytes back so the journal stays an intact
            // prefix; if even that fails, replay's torn-tail tolerance is
            // the backstop.
            let _ = self.file.set_len(self.len);
        } else {
            self.len += line.len() as u64;
            self.appended += 1;
            obs::metrics::counter(names::JOURNAL_RECORDS_APPENDED).increment();
        }
        result
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match obs::faults::next_disk_fault() {
            Some(obs::faults::DiskFault::Fail) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "fault injection: journal write failed",
                ));
            }
            Some(obs::faults::DiskFault::Torn) => {
                // Write half the record, then fail — exactly the torn
                // final record a crash mid-append leaves behind.
                self.file.write_all(&bytes[..bytes.len() / 2])?;
                let _ = self.file.sync_data();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "fault injection: torn journal write",
                ));
            }
            None => {}
        }
        self.file.write_all(bytes)?;
        // A submission is acknowledged only after its record is durable —
        // the whole point of the journal.
        self.file.sync_data()
    }
}

/// Replays the journal at `path`, returning the longest intact record
/// prefix.  A missing file is an empty replay, not an error; a torn or
/// corrupt record ends the replay at the last good byte (everything after
/// it is counted in [`JournalReplay::dropped_bytes`]).
///
/// # Errors
///
/// Propagates read errors other than "not found".
pub fn replay(path: &Path, plan_hash: &str) -> std::io::Result<JournalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut replay = JournalReplay::default();
    let mut seen = std::collections::BTreeSet::new();
    let mut offset = 0_usize;
    while offset < bytes.len() {
        let Some(newline) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn final record: no terminator
        };
        let line = &bytes[offset..offset + newline];
        let Some(document) = parse_record(line, plan_hash) else {
            break; // corrupt record: keep the prefix, drop the rest
        };
        replay.records += 1;
        if seen.insert(document.shard_index) {
            replay.documents.push(document);
        } else {
            replay.duplicates += 1;
        }
        offset += newline + 1;
        replay.valid_bytes = offset as u64;
    }
    replay.dropped_bytes = (bytes.len() as u64) - replay.valid_bytes;
    obs::metrics::counter(names::JOURNAL_RECORDS_REPLAYED).add(replay.records);
    if replay.dropped_bytes > 0 {
        obs::metrics::counter(names::JOURNAL_TORN_BYTES_DROPPED).add(replay.dropped_bytes);
    }
    Ok(replay)
}

/// Parses and fully verifies one record line; `None` on any mismatch —
/// version, plan hash, checksum, payload parse, or a payload whose own
/// shard index contradicts the envelope.
fn parse_record(line: &[u8], plan_hash: &str) -> Option<ShardDocument> {
    let line = std::str::from_utf8(line).ok()?;
    let record: JournalRecord = serde_json::from_str(line.trim()).ok()?;
    if record.v != JOURNAL_FORMAT_VERSION
        || record.plan_hash != plan_hash
        || record.checksum != record_checksum(&record.payload)
    {
        return None;
    }
    let document: ShardDocument = serde_json::from_str(&record.payload).ok()?;
    if document.shard_index != record.shard_index {
        return None;
    }
    Some(document)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SeedStrategy;
    use crate::config::ExperimentConfig;
    use crate::plan::{ShardStrategy, SweepPlan};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fabric-power-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_plan() -> SweepPlan {
        SweepPlan::new(
            "journal-test",
            ExperimentConfig {
                port_counts: vec![4],
                offered_loads: vec![0.2],
                warmup_cycles: 10,
                measure_cycles: 20,
                ..ExperimentConfig::quick()
            },
            SeedStrategy::Shared,
            2,
            ShardStrategy::Contiguous,
        )
        .expect("plan builds")
    }

    fn sample_document(plan: &SweepPlan, shard: usize) -> ShardDocument {
        let header = plan.header();
        ShardDocument {
            scenario: header.scenario,
            config: header.config,
            seed_strategy: header.seed_strategy,
            shard_index: shard,
            shard_total: plan.shard_count(),
            cell_range: plan.shards[shard].cell_index_range(),
            results: Vec::new(),
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = temp_dir("round-trip");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, fresh) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        assert!(fresh.documents.is_empty());
        for shard in 0..2 {
            journal
                .append(&sample_document(&plan, shard))
                .expect("append");
        }
        assert_eq!(journal.appended(), 2);
        let replay = replay(&journal_path(&dir, &hash), &hash).expect("replay");
        assert_eq!(replay.records, 2);
        assert_eq!(replay.duplicates, 0);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.documents.len(), 2);
        assert_eq!(replay.documents[0], sample_document(&plan, 0));
        assert_eq!(replay.documents[1], sample_document(&plan, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_keeps_the_intact_prefix() {
        let dir = temp_dir("torn-tail");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, _) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        journal.append(&sample_document(&plan, 0)).expect("append");
        let path = journal.path().to_owned();
        drop(journal);
        // Simulate a crash mid-append: half of a second record, no newline.
        let intact = std::fs::read(&path).expect("read");
        let mut torn = intact.clone();
        torn.extend_from_slice(&intact[..intact.len() / 2]);
        std::fs::write(&path, &torn).expect("tear");
        let replay = replay(&path, &hash).expect("replay");
        assert_eq!(replay.records, 1, "the intact record survives");
        assert_eq!(replay.documents.len(), 1);
        assert_eq!(replay.valid_bytes, intact.len() as u64);
        assert_eq!(replay.dropped_bytes, (torn.len() - intact.len()) as u64);
        // Resuming truncates the tear and appends cleanly after it.
        let (mut journal, resumed) = DrainJournal::begin(&dir, &hash, true).expect("resume");
        assert_eq!(resumed.documents.len(), 1);
        journal.append(&sample_document(&plan, 1)).expect("append");
        drop(journal);
        let healed = replay_all(&path, &hash);
        assert_eq!(healed.records, 2);
        assert_eq!(healed.dropped_bytes, 0, "the tear is gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn replay_all(path: &Path, hash: &str) -> JournalReplay {
        replay(path, hash).expect("replay")
    }

    #[test]
    fn duplicate_records_replay_once() {
        let dir = temp_dir("duplicates");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, _) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        journal.append(&sample_document(&plan, 0)).expect("append");
        journal.append(&sample_document(&plan, 0)).expect("again");
        journal.append(&sample_document(&plan, 1)).expect("append");
        let replay = replay_all(journal.path(), &hash);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.duplicates, 1);
        assert_eq!(replay.documents.len(), 2, "first copy per shard");
        assert_eq!(
            replay
                .documents
                .iter()
                .map(|d| d.shard_index)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_ends_the_replay_there() {
        let dir = temp_dir("corrupt-middle");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, _) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        journal.append(&sample_document(&plan, 0)).expect("append");
        let first_len = std::fs::metadata(journal.path()).expect("meta").len() as usize;
        journal.append(&sample_document(&plan, 1)).expect("append");
        let path = journal.path().to_owned();
        drop(journal);
        // Flip one byte inside the *first* record's payload: its checksum
        // no longer matches, so replay must stop before record 0 — a
        // corrupt record invalidates everything after it too (the journal
        // is only trusted as an intact prefix).
        let mut bytes = std::fs::read(&path).expect("read");
        let target = first_len / 2;
        bytes[target] = bytes[target].wrapping_add(1);
        std::fs::write(&path, &bytes).expect("corrupt");
        let replay = replay_all(&path, &hash);
        assert_eq!(replay.records, 0);
        assert_eq!(replay.valid_bytes, 0);
        assert_eq!(replay.dropped_bytes, bytes.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_for_another_plan_are_refused() {
        let dir = temp_dir("cross-plan");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, _) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        journal.append(&sample_document(&plan, 0)).expect("append");
        let path = journal.path().to_owned();
        drop(journal);
        // Rename the file under another plan's hash: the per-record
        // plan_hash still refuses the smuggle.
        let other_hash = "0".repeat(32);
        let other_path = journal_path(&dir, &other_hash);
        std::fs::rename(&path, &other_path).expect("rename");
        let replay = replay_all(&other_path, &other_hash);
        assert_eq!(replay.records, 0, "wrong plan, nothing restored");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_begin_truncates_an_existing_journal() {
        let dir = temp_dir("fresh-truncates");
        let plan = sample_plan();
        let hash = plan.content_hash();
        let (mut journal, _) = DrainJournal::begin(&dir, &hash, false).expect("begin");
        journal.append(&sample_document(&plan, 0)).expect("append");
        drop(journal);
        let (_journal, replay) = DrainJournal::begin(&dir, &hash, false).expect("fresh");
        assert!(replay.documents.is_empty());
        assert_eq!(
            std::fs::metadata(journal_path(&dir, &hash))
                .expect("meta")
                .len(),
            0,
            "a non-resume drain owns an empty file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
