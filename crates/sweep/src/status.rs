//! Client side of the fleet-status probe: connect to a running
//! `fabric-power serve`, send [`Request::Status`] without ever performing a
//! `Hello` handshake, and read back [`FleetStatus`] snapshots.
//!
//! This is what `fabric-power status --connect <addr>` runs, and what the
//! integration tests drive over real TCP.  A probe consumes no worker id and
//! leaves the lease table untouched.  One connection can ask repeatedly
//! ([`StatusProbe::fetch`]) — that is how `--watch` observes the terminal
//! `done` snapshot: the server stops listening the moment the plan
//! completes, but established connections keep answering through the drain
//! grace period.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{self, FleetStatus, Request, Response};

/// How long a probe waits for the server's answer before giving up.
const PROBE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a probe tries to *establish* its connection.  A dead or
/// unroutable address must fail fast with a clear error — historically the
/// probe used [`TcpStream::connect`], which can block for minutes on a
/// black-holed route.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// A held-open status connection to a serving fleet.
#[derive(Debug)]
pub struct StatusProbe {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl StatusProbe {
    /// Connects to `addr` without handshaking, bounded by a connect
    /// timeout — probing a dead address fails within seconds, never hangs.
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection errors; a connection that
    /// cannot be established within the timeout surfaces as
    /// [`std::io::ErrorKind::TimedOut`].
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        // connect_timeout takes a resolved SocketAddr, so resolve first;
        // try every address the name maps to, like TcpStream::connect does.
        let mut last_error = None;
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, CONNECT_TIMEOUT) {
                Ok(connected) => {
                    stream = Some(connected);
                    break;
                }
                Err(error) => last_error = Some(error),
            }
        }
        let stream = match stream {
            Some(stream) => stream,
            None => {
                return Err(last_error.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("`{addr}` resolved to no addresses"),
                    )
                }))
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(PROBE_TIMEOUT))?;
        stream.set_write_timeout(Some(PROBE_TIMEOUT))?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Asks for one status snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a non-`Status` answer (including a protocol
    /// `Error`) surfaces as [`std::io::ErrorKind::InvalidData`], and a
    /// server that closes without answering as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn fetch(&mut self) -> std::io::Result<FleetStatus> {
        protocol::write_message(&mut (&self.writer), &Request::Status)?;
        match protocol::read_message::<Response>(&mut self.reader)? {
            Some(Response::Status(status)) => Ok(status),
            Some(Response::Error { message }) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("server refused the status probe: {message}"),
            )),
            Some(other) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected answer to a status probe: {other:?}"),
            )),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering the status probe",
            )),
        }
    }
}

/// Connects to `addr`, asks for a single status snapshot and returns it.
///
/// # Errors
///
/// See [`StatusProbe::connect`] and [`StatusProbe::fetch`].
pub fn fetch_status(addr: &str) -> std::io::Result<FleetStatus> {
    StatusProbe::connect(addr)?.fetch()
}

/// Renders a snapshot as the multi-line human summary the `status`
/// subcommand prints (the `--json` form is just the serialized
/// [`FleetStatus`]).
#[must_use]
pub fn render_status(status: &FleetStatus) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "plan `{}` (hash {}) — protocol v{}\n",
        status.scenario, status.plan_hash, status.protocol
    ));
    out.push_str(&format!(
        "shards: {} total, {} done, {} leased, {} pending\n",
        status.shards_total, status.shards_completed, status.shards_leased, status.shards_pending
    ));
    let percent = if status.cells_total == 0 {
        100.0
    } else {
        status.cells_completed as f64 * 100.0 / status.cells_total as f64
    };
    out.push_str(&format!(
        "cells:  {} / {} ({percent:.1}%)\n",
        status.cells_completed, status.cells_total
    ));
    out.push_str(&format!(
        "fleet:  {} worker(s) connected, {} requeue(s), up {:.1}s{}\n",
        status.workers.len(),
        status.requeues,
        status.uptime_ms as f64 / 1000.0,
        if status.done { ", DONE" } else { "" }
    ));
    for worker in &status.workers {
        match worker.shard {
            Some(shard) => out.push_str(&format!(
                "  worker {}: shard {} ({} / {} cells), {} shard(s) done\n",
                worker.worker,
                shard,
                worker.cells_done,
                worker.cells_total,
                worker.shards_completed
            )),
            None => out.push_str(&format!(
                "  worker {}: idle, {} shard(s) done\n",
                worker.worker, worker.shards_completed
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WorkerStatus;
    use std::net::TcpListener;

    fn sample() -> FleetStatus {
        FleetStatus {
            scenario: "status-test".into(),
            plan_hash: "ee".repeat(16),
            protocol: protocol::PROTOCOL_VERSION,
            shards_total: 3,
            shards_completed: 1,
            shards_leased: 1,
            shards_pending: 1,
            cells_total: 30,
            cells_completed: 14,
            requeues: 0,
            workers: vec![WorkerStatus {
                worker: 1,
                shard: Some(2),
                cells_done: 4,
                cells_total: 10,
                shards_completed: 1,
            }],
            uptime_ms: 2500,
            done: false,
        }
    }

    #[test]
    fn probe_round_trips_against_a_minimal_server() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let request: Request = protocol::read_message(&mut reader)
                .expect("read")
                .expect("open");
            assert_eq!(request, Request::Status);
            let mut writer = stream;
            protocol::write_message(&mut writer, &Response::Status(sample())).expect("write");
        });
        let status = fetch_status(&addr).expect("probe");
        assert_eq!(status, sample());
        server.join().expect("server thread");
    }

    #[test]
    fn one_connection_answers_repeated_probes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            for done in [false, true] {
                let request: Request = protocol::read_message(&mut reader)
                    .expect("read")
                    .expect("open");
                assert_eq!(request, Request::Status);
                let mut status = sample();
                status.done = done;
                protocol::write_message(&mut writer, &Response::Status(status)).expect("write");
            }
        });
        let mut probe = StatusProbe::connect(&addr).expect("connect");
        assert!(!probe.fetch().expect("first probe").done);
        assert!(probe.fetch().expect("second probe").done, "same connection");
        server.join().expect("server thread");
    }

    #[test]
    fn a_server_answering_error_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let _: Option<Request> = protocol::read_message(&mut reader).expect("read");
            let mut writer = stream;
            let refusal = Response::Error {
                message: "no".into(),
            };
            protocol::write_message(&mut writer, &refusal).expect("write");
        });
        let err = fetch_status(&addr).expect_err("refused");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        server.join().expect("server thread");
    }

    #[test]
    fn rendering_covers_busy_and_idle_workers() {
        let mut status = sample();
        status.workers.push(WorkerStatus {
            worker: 2,
            shard: None,
            cells_done: 0,
            cells_total: 0,
            shards_completed: 0,
        });
        let text = render_status(&status);
        assert!(text.contains("shards: 3 total, 1 done, 1 leased, 1 pending"));
        assert!(text.contains("cells:  14 / 30 (46.7%)"));
        assert!(text.contains("worker 1: shard 2 (4 / 10 cells), 1 shard(s) done"));
        assert!(text.contains("worker 2: idle, 0 shard(s) done"));
        assert!(!text.contains("DONE"));
        status.done = true;
        assert!(render_status(&status).contains("DONE"));
    }
}
