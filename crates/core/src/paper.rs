//! The paper's published numbers and qualitative claims, collected in one
//! place so experiments and tests can compare against them.

use serde::{Deserialize, Serialize};

use fabric_power_tech::constants;

/// The qualitative observations of the paper's §6 that a faithful
/// reproduction must exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperClaims {
    /// Claim 1: interconnect contention makes Banyan power grow sharply with
    /// load while staying the lowest at low load.
    pub banyan_buffer_penalty: bool,
    /// Claim 2: the fully-connected fabric has the lowest simulated power and
    /// its gap to Batcher-Banyan narrows as the port count grows.
    pub fully_connected_cheapest: bool,
    /// Claim 3: crossbar, fully-connected and Batcher-Banyan power grow
    /// roughly linearly with the traffic throughput.
    pub linear_growth_except_banyan: bool,
}

impl PaperClaims {
    /// All claims asserted, as published.
    #[must_use]
    pub fn published() -> Self {
        Self {
            banyan_buffer_penalty: true,
            fully_connected_cheapest: true,
            linear_growth_except_banyan: true,
        }
    }
}

/// The published fully-connected vs. Batcher-Banyan power gaps at 50 % load.
#[must_use]
pub fn published_fc_vs_batcher_gap(ports: usize) -> Option<f64> {
    match ports {
        4 => Some(constants::PAPER_FC_VS_BATCHER_GAP_4X4),
        32 => Some(constants::PAPER_FC_VS_BATCHER_GAP_32X32),
        _ => None,
    }
}

/// Offered load below which the 32×32 Banyan is the cheapest fabric,
/// as published.
#[must_use]
pub fn published_banyan_crossover_32x32() -> f64 {
    constants::PAPER_BANYAN_32X32_CROSSOVER
}

/// The theoretical input-buffered saturation throughput quoted in §6.
#[must_use]
pub fn published_saturation_throughput() -> f64 {
    constants::INPUT_BUFFER_SATURATION_THROUGHPUT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_values_are_consistent() {
        assert!(PaperClaims::published().banyan_buffer_penalty);
        assert_eq!(published_fc_vs_batcher_gap(4), Some(0.37));
        assert_eq!(published_fc_vs_batcher_gap(32), Some(0.20));
        assert_eq!(published_fc_vs_batcher_gap(8), None);
        assert!(published_banyan_crossover_32x32() < published_saturation_throughput());
    }
}
