//! # fabric-power-core
//!
//! The bit-energy power-consumption analysis framework for network-router
//! switch fabrics — a Rust reproduction of *"Analysis of Power Consumption on
//! Switch Fabrics in Network Routers"* (Ye, Benini, De Micheli, DAC 2002).
//!
//! This crate ties the substrate crates together into the workflow the paper
//! describes:
//!
//! 1. **Characterize** the node switches at the gate level
//!    (`fabric-power-netlist`, Table 1) or load the paper's published LUTs;
//! 2. **Model** the internal buffers (`fabric-power-memory`, Table 2) and the
//!    interconnect wires (`fabric-power-tech` + `fabric-power-thompson`,
//!    `E_T_bit ≈ 87 fJ`);
//! 3. **Assemble** the per-fabric [`prelude::FabricEnergyModel`]
//!    (`fabric-power-fabric`) and evaluate either the closed-form worst-case
//!    equations (Eq. 3–6) or
//! 4. **Simulate** dynamic traffic bit-by-bit on the router platform
//!    (`fabric-power-router`) and sweep load and fabric size to regenerate
//!    Figure 9 and Figure 10 ([`experiment`]).
//!
//! # Quick start
//!
//! ```
//! use fabric_power_core::experiment::{ExperimentConfig, ThroughputSweep};
//! use fabric_power_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A reduced version of the paper's Figure 9 sweep.
//! let sweep = ThroughputSweep::run(&ExperimentConfig::quick())?;
//! let banyan_curve = sweep.curve(Architecture::Banyan, 8);
//! assert!(banyan_curve.last().unwrap().power > banyan_curve[0].power);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod paper;
pub mod report;

pub use experiment::{
    ExperimentConfig, ExperimentError, ModelProvider, ModelSource, ModelSpec, PortSweep,
    SweepPoint, ThroughputSweep,
};
pub use fabric_power_sweep::{
    Scenario, ScenarioRegistry, SeedStrategy, ShardStrategy, SweepCell, SweepDocument, SweepEngine,
    SweepPlan,
};

/// Convenient re-exports of the most frequently used types from the whole
/// workspace, so downstream users can `use fabric_power_core::prelude::*`.
pub mod prelude {
    pub use fabric_power_fabric::analytic;
    pub use fabric_power_fabric::{Architecture, FabricEnergyModel, FabricTopology};
    pub use fabric_power_memory::{BufferConfig, MemoryModel, Table2};
    pub use fabric_power_netlist::{
        CellLibrary, CharacterizationConfig, InputVector, SwitchClass, SwitchEnergyLut, Table1,
    };
    pub use fabric_power_router::{
        RouterSimulator, SimulationConfig, SimulationReport, TrafficPattern,
    };
    pub use fabric_power_tech::{Energy, Power, Technology, WireModel};

    pub use crate::experiment::{
        ExperimentConfig, ModelProvider, ModelSource, ModelSpec, PortSweep, SweepPoint,
        ThroughputSweep,
    };
    pub use crate::paper::PaperClaims;
    pub use fabric_power_sweep::{
        merge_documents, Scenario, ScenarioRegistry, SeedStrategy, Shard, ShardDocument,
        ShardStrategy, SweepDocument, SweepEngine, SweepPlan,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_full_pipeline() {
        // Analytic path.
        let model = FabricEnergyModel::paper(4).expect("model");
        assert!(analytic::banyan_bit_energy(&model, 0) < analytic::crossbar_bit_energy(&model));
        // Simulation path.
        let report = fabric_power_router::simulate(SimulationConfig::quick(
            Architecture::FullyConnected,
            4,
            0.2,
        ))
        .expect("simulation");
        assert!(report.measured_throughput() > 0.0);
    }
}
