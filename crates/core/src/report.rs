//! Plain-text rendering of the reproduced tables and figures.
//!
//! The experiment harness binaries print their results through these helpers
//! so every table/figure has one canonical textual form (and a JSON form via
//! `serde`), mirroring the rows/series the paper reports.

use std::fmt::Write as _;

use fabric_power_fabric::{AnalyticRow, Architecture};
use fabric_power_memory::Table2;
use fabric_power_netlist::Table1;

use crate::experiment::{PortSweep, ThroughputSweep};

/// Renders Table 1 (node-switch bit energy per input vector) side by side
/// with the paper's published values.
#[must_use]
pub fn format_table1(ours: &Table1, paper: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — node-switch bit energy (fJ per bit slot), characterized vs. paper"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>14} {:>12}",
        "switch / input vector", "ours (fJ)", "paper (fJ)", "ratio"
    );
    let mut row = |label: &str, ours_fj: f64, paper_fj: f64| {
        let ratio = if paper_fj > 0.0 {
            ours_fj / paper_fj
        } else {
            f64::NAN
        };
        let _ = writeln!(
            out,
            "{label:<28} {ours_fj:>10.0} {paper_fj:>14.0} {ratio:>12.2}"
        );
    };
    row(
        "crosspoint [1]",
        ours.crosspoint.single_active().as_femtojoules(),
        paper.crosspoint.single_active().as_femtojoules(),
    );
    row(
        "banyan 2x2 [0,1]",
        ours.banyan_binary.single_active().as_femtojoules(),
        paper.banyan_binary.single_active().as_femtojoules(),
    );
    row(
        "banyan 2x2 [1,1]",
        ours.banyan_binary
            .energy_for_active_count(2)
            .as_femtojoules(),
        paper
            .banyan_binary
            .energy_for_active_count(2)
            .as_femtojoules(),
    );
    row(
        "batcher 2x2 [0,1]",
        ours.batcher_sorting.single_active().as_femtojoules(),
        paper.batcher_sorting.single_active().as_femtojoules(),
    );
    row(
        "batcher 2x2 [1,1]",
        ours.batcher_sorting
            .energy_for_active_count(2)
            .as_femtojoules(),
        paper
            .batcher_sorting
            .energy_for_active_count(2)
            .as_femtojoules(),
    );
    for (ours_mux, paper_mux) in ours.muxes.iter().zip(&paper.muxes) {
        let inputs = ours_mux.ports();
        row(
            &format!("{inputs}-input MUX"),
            ours_mux.energy_for_active_count(inputs).as_femtojoules(),
            paper_mux.single_active().as_femtojoules(),
        );
    }
    out
}

/// Renders Table 2 (Banyan shared-buffer bit energy) computed vs. paper.
#[must_use]
pub fn format_table2(computed: &Table2, paper: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — Banyan shared-buffer bit energy, computed vs. paper"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>14} {:>14} {:>8}",
        "N", "switches", "SRAM (Kbit)", "ours (pJ)", "paper (pJ)", "ratio"
    );
    for (ours, theirs) in computed.rows.iter().zip(&paper.rows) {
        let ratio = ours.bit_energy / theirs.bit_energy;
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>12} {:>14.0} {:>14.0} {:>8.2}",
            ours.ports,
            ours.switches,
            ours.shared_sram_bits / 1024,
            ours.bit_energy.as_picojoules(),
            theirs.bit_energy.as_picojoules(),
            ratio
        );
    }
    out
}

/// Renders one Figure 9 panel (one fabric size): power vs. offered load for
/// every architecture.
#[must_use]
pub fn format_figure9_panel(sweep: &ThroughputSweep, ports: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9 panel — {ports}x{ports}, power (mW) vs. offered load"
    );
    let loads: Vec<f64> = {
        let mut loads: Vec<f64> = sweep
            .points
            .iter()
            .filter(|p| p.ports == ports)
            .map(|p| p.offered_load)
            .collect();
        loads.sort_by(f64::total_cmp);
        loads.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        loads
    };
    let _ = write!(out, "{:<18}", "architecture");
    for load in &loads {
        let _ = write!(out, "{:>9.0}%", load * 100.0);
    }
    let _ = writeln!(out);
    for architecture in Architecture::ALL {
        let _ = write!(out, "{:<18}", architecture.to_string());
        for &load in &loads {
            match sweep.power(architecture, ports, load) {
                Some(power) => {
                    let _ = write!(out, "{:>10.2}", power.as_milliwatts());
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Figure 10: power vs. number of ports at one load, plus the
/// fully-connected vs. Batcher-Banyan gap the paper quotes.
#[must_use]
pub fn format_figure10(sweep: &PortSweep, port_counts: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10 — power (mW) vs. number of ports at {:.0}% offered load",
        sweep.offered_load * 100.0
    );
    let _ = write!(out, "{:<18}", "architecture");
    for ports in port_counts {
        let _ = write!(out, "{:>9}x{}", ports, ports);
    }
    let _ = writeln!(out);
    for architecture in Architecture::ALL {
        let _ = write!(out, "{:<18}", architecture.to_string());
        for &ports in port_counts {
            match sweep.power(architecture, ports) {
                Some(power) => {
                    let _ = write!(out, "{:>10.2}", power.as_milliwatts());
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<18}", "FC vs Batcher gap");
    for &ports in port_counts {
        match sweep.fully_connected_vs_batcher_gap(ports) {
            Some(gap) => {
                let _ = write!(out, "{:>9.0}%", gap * 100.0);
            }
            None => {
                let _ = write!(out, "{:>10}", "-");
            }
        }
    }
    let _ = writeln!(out);
    out
}

/// Renders the analytic worst-case bit-energy comparison (Eq. 3–6).
#[must_use]
pub fn format_analytic_table(rows: &[AnalyticRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Worst-case bit energy per architecture (Eq. 3-6), in pJ/bit"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>16} {:>18} {:>22} {:>16}",
        "N", "crossbar", "fully connected", "banyan (q=0)", "banyan (all q=1)", "batcher-banyan"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>12.2} {:>16.2} {:>18.2} {:>22.2} {:>16.2}",
            row.ports,
            row.crossbar.as_picojoules(),
            row.fully_connected.as_picojoules(),
            row.banyan_uncontended.as_picojoules(),
            row.banyan_fully_contended.as_picojoules(),
            row.batcher_banyan.as_picojoules()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, PortSweep, ThroughputSweep};
    use fabric_power_fabric::analytic::analytic_table;

    #[test]
    fn table_renderers_include_headline_values() {
        let paper = Table1::paper();
        let table1 = format_table1(&paper, &paper);
        assert!(table1.contains("1080"));
        assert!(table1.contains("32-input MUX"));

        let table2 = format_table2(&Table2::paper(), &Table2::paper());
        assert!(table2.contains("222"));
        assert!(table2.contains("320"));
    }

    #[test]
    fn figure_renderers_cover_all_architectures() {
        let config = ExperimentConfig::quick();
        let sweep = ThroughputSweep::run(&config).unwrap();
        let panel = format_figure9_panel(&sweep, 8);
        for architecture in Architecture::ALL {
            assert!(panel.contains(&architecture.to_string()));
        }

        let ports = PortSweep::run(&config, 0.5).unwrap();
        let figure10 = format_figure10(&ports, &config.port_counts);
        assert!(figure10.contains("FC vs Batcher gap"));
        assert!(figure10.contains('%'));
    }

    #[test]
    fn analytic_table_renders_every_size() {
        let rows = analytic_table(&[4, 8, 16, 32]).unwrap();
        let text = format_analytic_table(&rows);
        assert!(text.contains("32"));
        assert!(text.contains("batcher-banyan"));
    }
}
