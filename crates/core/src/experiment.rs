//! Experiment configuration and the parameter sweeps behind the paper's
//! Figure 9 (power vs. traffic throughput) and Figure 10 (power vs. number
//! of ports).
//!
//! The implementation moved to the [`fabric_power_sweep`] crate when sweep
//! orchestration became its own subsystem: `ThroughputSweep::run` and
//! `PortSweep::run` now expand the grid into cells and evaluate them on the
//! parallel [`fabric_power_sweep::SweepEngine`] (one shared energy model per
//! fabric size, deterministic per-cell seeds, results in canonical grid
//! order).  Energy models are acquired through the model-provider layer
//! ([`ModelProvider`]): pass an engine built with
//! `SweepEngine::new().with_provider(...)` to `run_with` to share one
//! provider — and optionally a content-addressed on-disk model cache —
//! across many experiments.  This module re-exports the public types so
//! every pre-existing `fabric_power_core::experiment::...` path keeps
//! working, with identical results point for point.
//!
//! Execution goes through the plan → execute → merge pipeline: `SweepEngine::
//! run` expands the grid into a single-shard [`SweepPlan`] internally, and the
//! same plan split into N [`Shard`]s (`fabric-power plan --shards N`) runs as
//! N independent worker processes whose partial documents
//! [`merge_documents`] recombines byte-identically.

pub use fabric_power_sweep::{
    merge_documents, ExperimentConfig, ExperimentError, MergeError, ModelKind, ModelProvider,
    ModelSource, ModelSpec, PlanError, PortSweep, ProviderStats, SeedStrategy, Shard,
    ShardDocument, ShardStrategy, SweepCell, SweepEngine, SweepPlan, SweepPoint, ThroughputSweep,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_power_fabric::energy_model::EnergyModelError;
    use fabric_power_fabric::Architecture;

    #[test]
    fn quick_throughput_sweep_produces_all_points() {
        let config = ExperimentConfig::quick();
        let sweep = ThroughputSweep::run(&config).unwrap();
        assert_eq!(
            sweep.points.len(),
            config.port_counts.len() * config.architectures.len() * config.offered_loads.len()
        );
        let curve = sweep.curve(Architecture::Banyan, 8);
        assert_eq!(curve.len(), 3);
        assert!(curve
            .windows(2)
            .all(|w| w[0].offered_load < w[1].offered_load));
        assert!(sweep.power(Architecture::Crossbar, 8, 0.3).is_some());
        assert!(sweep.power(Architecture::Crossbar, 64, 0.3).is_none());
    }

    #[test]
    fn power_increases_with_load_for_every_architecture() {
        let config = ExperimentConfig::quick();
        let sweep = ThroughputSweep::run(&config).unwrap();
        for &architecture in &config.architectures {
            let curve = sweep.curve(architecture, 8);
            assert!(
                curve.last().unwrap().power > curve.first().unwrap().power,
                "{architecture}"
            );
        }
    }

    #[test]
    fn port_sweep_gap_is_computable() {
        let config = ExperimentConfig::quick();
        let sweep = PortSweep::run(&config, 0.5).unwrap();
        let gap = sweep.fully_connected_vs_batcher_gap(8).unwrap();
        assert!(gap > 0.0 && gap < 1.0, "gap {gap}");
        assert!(sweep.power(Architecture::Banyan, 8).is_some());
    }

    #[test]
    fn cheapest_architecture_at_low_load_is_banyan_or_fully_connected() {
        let config = ExperimentConfig::quick();
        let sweep = ThroughputSweep::run(&config).unwrap();
        let cheapest = sweep.cheapest(8, 0.1).unwrap();
        assert!(
            matches!(
                cheapest,
                Architecture::Banyan | Architecture::FullyConnected
            ),
            "cheapest at low load was {cheapest}"
        );
    }

    #[test]
    fn experiment_errors_display() {
        let err = ExperimentError::from(EnergyModelError::InvalidPortCount { ports: 7 });
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn sweeps_share_models_through_an_explicit_provider() {
        use std::sync::Arc;

        let provider = Arc::new(ModelProvider::in_memory());
        let engine = SweepEngine::new()
            .with_threads(1)
            .with_provider(Arc::clone(&provider));
        let config = ExperimentConfig::quick();
        let throughput = ThroughputSweep::run_with(&config, &engine).unwrap();
        let port = PortSweep::run_with(&config, 0.5, &engine).unwrap();
        assert!(!throughput.points.is_empty());
        assert!(!port.points.is_empty());
        // Both sweeps cover the same two fabric sizes: two builds total, the
        // rest served from the shared memo.
        let stats = provider.stats();
        assert_eq!(stats.builds, 2);
        assert!(stats.memory_hits >= 2);
    }
}
